//! # osml — facade crate for the OSML reproduction
//!
//! Re-exports the whole workspace under one roof so examples and downstream
//! users can depend on a single crate:
//!
//! * [`platform`] — simulated server substrate (cores, CAT, MBA, counters),
//! * [`workloads`] — analytic latency-critical service models with
//!   resource-cliff behaviour, and the co-location simulator,
//! * [`ml`] — from-scratch MLP / Adam / DQN machinery,
//! * [`models`] — the paper's Model-A / Model-B / Model-B' / Model-C,
//! * [`scheduler`] — the OSML central controller (Algorithms 1–4),
//! * [`baselines`] — PARTIES, unmanaged allocation, and the Oracle,
//! * [`dataset`] — training-corpus generation per the paper's methodology,
//! * [`bench`] — the experiment harness (scenarios, grids, timelines).
//!
//! See the repository `README.md` for a guided tour and `DESIGN.md` for the
//! paper-to-module map.

pub use osml_baselines as baselines;
pub use osml_bench as bench;
pub use osml_core as scheduler;
pub use osml_dataset as dataset;
pub use osml_ml as ml;
pub use osml_models as models;
pub use osml_platform as platform;
pub use osml_workloads as workloads;

//! Explore the Resource Cliff (paper §III-A): print a latency heatmap over
//! the (cores, LLC ways) plane for one service, with the cliff frontier and
//! the Optimal Allocation Area marked.
//!
//! ```sh
//! cargo run --release --example resource_cliff [service] [load_pct]
//! # e.g.
//! cargo run --release --example resource_cliff moses 70
//! ```

use osml::platform::Topology;
use osml::workloads::oaa::{AllocPoint, LatencyGrid};
use osml::workloads::Service;

fn main() {
    let mut args = std::env::args().skip(1);
    let service = args
        .next()
        .map(|s| Service::from_name(&s).unwrap_or_else(|| panic!("unknown service '{s}'")))
        .unwrap_or(Service::Moses);
    let pct: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(70.0);
    let rps = service.params().nominal_max_rps() * pct / 100.0;

    let topo = Topology::xeon_e5_2697_v4();
    let grid = LatencyGrid::sweep(&topo, service, service.params().default_threads, rps);
    let qos = service.params().qos_ms;
    println!(
        "{service} @ {rps:.0} RPS ({pct:.0}% of max), QoS target {qos} ms, {} threads",
        service.params().default_threads
    );
    println!("cells: p95 in ms ('-' >= 100x QoS); '|' marks the cliff frontier; 'O' the OAA\n");

    let frontier = grid.rcliff_frontier();
    let oaa = grid.oaa();
    print!("cores\\ways");
    for w in 1..=grid.max_ways {
        print!("{w:>7}");
    }
    println!();
    for cores in (1..=grid.max_cores).rev().step_by(2) {
        print!("{cores:>10}");
        for ways in 1..=grid.max_ways {
            let p = AllocPoint::new(cores, ways);
            let v = grid.p95(p);
            let marker = if oaa == Some(p) {
                "O".to_owned()
            } else if frontier[cores - 1] == Some(ways) {
                format!("|{v:.0}")
            } else if v >= 100.0 * qos {
                "-".to_owned()
            } else {
                format!("{v:.0}")
            };
            print!("{marker:>7}");
        }
        println!();
    }
    println!();
    match (grid.rcliff(), grid.oaa()) {
        (Some(cliff), Some(oaa)) => {
            println!(
                "RCliff: <{} cores, {} ways>  (one step below explodes latency)",
                cliff.cores, cliff.ways
            );
            println!(
                "OAA:    <{} cores, {} ways>  (the allocation OSML targets)",
                oaa.cores, oaa.ways
            );
            println!("cliff magnitude: {:.0}x across one deprivation step", grid.cliff_magnitude());
            if let Some(bw) = grid.oaa_bandwidth_gbps() {
                println!("OAA bandwidth requirement: {bw:.1} GB/s");
            }
        }
        _ => println!("this load is infeasible even with the whole machine"),
    }
}

//! Co-locate a set of services under all four policies — Unmanaged, PARTIES,
//! OSML, and the Oracle — and compare steady-state QoS, allocations and
//! scheduling overhead (a single cell of the paper's Figs. 10–12).
//!
//! ```sh
//! cargo run --release --example colocate_services
//! # or pick your own mix (service:load_pct, comma-separated):
//! cargo run --release --example colocate_services moses:50,img-dnn:40,xapian:30
//! ```

use osml::baselines::{Oracle, Parties, Unmanaged};
use osml::bench::run_colocation;
use osml::bench::suite::{trained_suite, SuiteConfig};
use osml::platform::Scheduler;
use osml::workloads::{LaunchSpec, Service};

fn parse_mix(arg: Option<String>) -> Vec<LaunchSpec> {
    let default = "moses:40,img-dnn:40,xapian:20";
    let text = arg.unwrap_or_else(|| default.to_owned());
    text.split(',')
        .map(|part| {
            let (name, pct) = part.split_once(':').expect("format: service:pct");
            let service = Service::from_name(name.trim())
                .unwrap_or_else(|| panic!("unknown service '{name}'"));
            let pct: f64 = pct.trim().parse().expect("load must be a number");
            LaunchSpec::at_percent_load(service, pct)
        })
        .collect()
}

fn report<Sched: Scheduler>(name: &str, mut sched: Sched, specs: &[LaunchSpec], settle: usize) {
    let out = run_colocation(&mut sched, specs, settle, 0xC0C0);
    println!(
        "{name:<10} success={} actions={:>3}",
        if out.success() { "yes" } else { "NO " },
        out.actions
    );
    for a in &out.apps {
        println!(
            "    {:<10} p95 {:>8.2} ms / {:>6.1} ms  [{} cores, {} ways]  {}",
            a.service.to_string(),
            a.p95_ms,
            a.qos_ms,
            a.cores,
            a.ways,
            if a.qos_met { "ok" } else { "VIOLATED" }
        );
    }
}

fn main() {
    let specs = parse_mix(std::env::args().nth(1));
    println!("co-locating:");
    for s in &specs {
        println!("  {} @ {:.0} RPS", s.service, s.offered_rps);
    }
    println!();

    report("unmanaged", Unmanaged::new(), &specs, 30);
    report("parties", Parties::new(), &specs, 120);
    println!("(training OSML's models...)");
    report("osml", trained_suite(SuiteConfig::Standard), &specs, 60);

    print!("oracle     ");
    match Oracle::new().best_partition(&specs) {
        Some(plan) => {
            println!("feasible with static partition:");
            for (spec, (c, w)) in specs.iter().zip(&plan.shares) {
                println!("    {:<10} [{} cores, {} ways]", spec.service.to_string(), c, w);
            }
        }
        None => println!("infeasible: no static partition meets every QoS"),
    }
}

//! Quickstart: train the OSML model suite, co-locate two latency-critical
//! services on the simulated testbed, and watch the controller keep both
//! within QoS.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use osml::bench::scenario::bootstrap_allocation;
use osml::bench::suite::{trained_suite, SuiteConfig};
use osml::platform::{Scheduler, Substrate};
use osml::workloads::{LaunchSpec, Service, SimServer};

fn main() {
    // 1. Train Model-A/B/B'/C from simulator sweeps (seconds; deterministic).
    println!("training the OSML model suite...");
    let mut osml = trained_suite(SuiteConfig::Standard);

    // 2. Boot a simulated 36-core / 20-way Xeon and launch two services.
    let mut server = SimServer::deterministic();
    for (service, pct) in [(Service::Moses, 40.0), (Service::Xapian, 40.0)] {
        let spec = LaunchSpec::at_percent_load(service, pct);
        let alloc = bootstrap_allocation(&mut server, spec.threads);
        let id = server.launch(spec, alloc).expect("bootstrap allocation is valid");
        server.advance(1.0);
        let placement = osml.on_arrival(&mut server, id);
        let prediction = osml.prediction(id).expect("profiled on arrival");
        println!(
            "{service} @ {pct:.0}% load: {placement:?}; Model-A says OAA = <{} cores, {} ways>, RCliff = <{}, {}>",
            prediction.oaa.cores, prediction.oaa.ways,
            prediction.rcliff.cores, prediction.rcliff.ways,
        );
    }

    // 3. Let the 1 Hz monitoring loop run and report the steady state.
    for _ in 0..30 {
        server.advance(1.0);
        osml.tick(&mut server);
    }
    println!("\nafter 30 s of monitoring ({} scheduling actions):", osml.action_count());
    for id in server.apps() {
        let lat = server.latency(id).expect("placed");
        let alloc = server.allocation(id).expect("placed");
        println!(
            "  {:<8} p95 {:>6.2} ms / target {:>5.1} ms  [{} cores, {} ways]  QoS {}",
            server.service_of(id).expect("placed").to_string(),
            lat.p95_ms,
            lat.qos_target_ms,
            alloc.cores.count(),
            alloc.ways.count(),
            if lat.violates_qos() { "VIOLATED" } else { "met" },
        );
    }
}

//! End-to-end model training (the paper's §IV pipeline): run the sweep
//! methodology against the simulator, train Model-A/B/B'/C, and report
//! corpus sizes and accuracy metrics.
//!
//! ```sh
//! cargo run --release --example train_models            # laptop-scale sweep
//! cargo run --release --example train_models -- paper   # the paper's full grid (minutes)
//! ```

use osml::dataset::{
    model_a_corpus, model_b_corpus, model_b_prime_corpus, model_c_transitions, SweepConfig,
    TrainedModels, TrainingConfig,
};

fn main() {
    let full = std::env::args().nth(1).as_deref() == Some("paper");
    let sweep = if full { SweepConfig::paper() } else { SweepConfig::default() };
    println!(
        "sweep: {} services, core step {}, way step {}, {} thread counts, {} load points",
        sweep.services.len(),
        sweep.core_step,
        sweep.way_step,
        sweep.thread_counts.len(),
        sweep.load_points().len(),
    );

    let t0 = std::time::Instant::now();
    let a = model_a_corpus(&sweep);
    println!("model-a corpus: {:>8} samples ({:?})", a.len(), t0.elapsed());
    let t = std::time::Instant::now();
    let b = model_b_corpus(&sweep);
    println!("model-b corpus: {:>8} samples ({:?})", b.len(), t.elapsed());
    let t = std::time::Instant::now();
    let bp = model_b_prime_corpus(&sweep);
    println!("model-b' corpus: {:>7} samples ({:?})", bp.len(), t.elapsed());
    let t = std::time::Instant::now();
    let c = model_c_transitions(&sweep);
    println!("model-c tuples: {:>8} transitions ({:?})", c.len(), t.elapsed());

    println!("\ntraining the full suite...");
    let t = std::time::Instant::now();
    let trained = TrainedModels::train(&TrainingConfig { sweep, ..TrainingConfig::default() });
    println!("trained in {:?}", t.elapsed());
    println!("model-a validation: {:?}", trained.report_a.validation_metrics);
    println!("model-b validation: {:?}", trained.report_b.validation_metrics);
    println!("model-b' validation: {:?}", trained.report_b_prime.validation_metrics);
    println!("model-c experience pool: {} tuples", trained.model_c.pool_len());
    println!(
        "\nnetwork sizes: model-a {} params, policy net {} params",
        trained.model_a.mlp().parameter_count(),
        trained.model_c.policy().parameter_count(),
    );
}

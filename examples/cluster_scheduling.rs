//! Cluster-level scheduling: the upper tier the paper defers to. Several
//! OSML-managed nodes accept a stream of services; a node that cannot keep
//! a service within QoS reports it, and the upper scheduler migrates it to
//! another node (Algorithm 4, line 9).
//!
//! ```sh
//! cargo run --release --example cluster_scheduling
//! ```

use osml::bench::suite::{trained_suite, SuiteConfig};
use osml::scheduler::{Cluster, ClusterPlacement, OsmlConfig};
use osml::workloads::{LaunchSpec, Service};

fn main() {
    println!("training the OSML model suite (shared by every node)...");
    let template = trained_suite(SuiteConfig::Standard);
    let mut cluster = Cluster::new(3, template, OsmlConfig::default(), 0xC105);

    // A stream of arrivals that would overload any single node.
    let arrivals = [
        (Service::Moses, 50.0),
        (Service::ImgDnn, 60.0),
        (Service::Specjbb, 50.0),
        (Service::Xapian, 40.0),
        (Service::Memcached, 40.0),
        (Service::MongoDb, 40.0),
        (Service::Masstree, 30.0),
        (Service::Login, 20.0),
    ];
    let mut ids = Vec::new();
    for (service, pct) in arrivals {
        match cluster.submit(LaunchSpec::at_percent_load(service, pct)) {
            ClusterPlacement::Placed(h) => {
                println!("{service} @ {pct:.0}% -> node {}", h.node);
                ids.push((service, h.id));
            }
            ClusterPlacement::ClusterFull => {
                println!("{service} @ {pct:.0}% -> REJECTED (cluster full)");
            }
        }
        cluster.run(10.0);
    }

    cluster.run(60.0);
    println!(
        "\nafter settling: {} total scheduling actions, {} migrations",
        cluster.total_actions(),
        cluster.migrations()
    );
    for node in 0..cluster.len() {
        let on: Vec<String> = cluster.services_on(node).iter().map(|s| s.to_string()).collect();
        println!("  node {node}: {}", if on.is_empty() { "idle".into() } else { on.join(", ") });
    }
    let mut ok = 0;
    for (service, id) in &ids {
        if let Some(r) = cluster.latency_over_target(*id) {
            println!(
                "  {service:<10} p95/target = {r:.2}x {}",
                if r <= 1.0 { "" } else { " VIOLATED" }
            );
            ok += (r <= 1.0) as usize;
        }
    }
    println!("{ok}/{} placed services within QoS", ids.len());
}

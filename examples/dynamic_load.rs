//! The paper's Fig. 14 scenario as a runnable demo: six services arrive over
//! five minutes (including the never-trained-on txt-index), loads step, and
//! OSML re-stabilizes after every disturbance while PARTIES churns.
//!
//! ```sh
//! cargo run --release --example dynamic_load
//! ```

use osml::baselines::Parties;
use osml::bench::suite::{trained_suite, SuiteConfig};
use osml::bench::timeline::{run_timeline, TimelineSummary};
use osml::workloads::loadgen::ArrivalScript;

fn main() {
    let script = ArrivalScript::fig14();
    println!("arrival script:");
    for e in &script.events {
        println!(
            "  t={:>3.0}s  {} ({} threads, {:.0} RPS at arrival)",
            e.arrive_s,
            e.service,
            e.threads,
            e.load.rps_at(e.arrive_s)
        );
    }

    println!("\nrunning PARTIES...");
    let mut parties = Parties::new();
    let parties_records = run_timeline(&mut parties, &script, 42);

    println!("training and running OSML...");
    let mut osml = trained_suite(SuiteConfig::Standard);
    let osml_records = run_timeline(&mut osml, &script, 42);

    println!(
        "\n{:<8} {:>8} {:>12} {:>10} {:>10} {:>10}",
        "policy", "actions", "peak lat/tgt", "qos frac", "migrations", "last viol"
    );
    for (name, records) in [("parties", &parties_records), ("osml", &osml_records)] {
        let s = TimelineSummary::from_records(name, records);
        println!(
            "{:<8} {:>8} {:>11.1}x {:>9.1}% {:>10} {:>9}s",
            s.policy,
            s.total_actions,
            s.peak_violation,
            s.qos_fraction * 100.0,
            s.migrations,
            s.last_violation_s.map(|t| format!("{t:.0}")).unwrap_or("-".into()),
        );
    }

    println!("\nOSML timeline (every 30 s):");
    for r in osml_records.iter().step_by(30) {
        let svc: Vec<String> = r
            .services
            .iter()
            .map(|s| format!("{}={:.1}x", s.service, s.latency_over_target))
            .collect();
        println!("  t={:>3.0} actions={:>3}  {}", r.time_s, r.actions, svc.join("  "));
    }
}

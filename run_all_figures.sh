#!/bin/sh
# Regenerates every table and figure of the paper's evaluation.
# Outputs land in results/*.json; human-readable tables go to stdout.
set -e
for bin in table1_max_load table3_features fig1_rcliff_heatmap fig2_rcliff_vs_rps \
           fig3_oaa_threads fig4_heuristic_trace fig10_colocation3 fig11_colocation4 \
           fig12_colocation_oracle fig13_resource_usage fig14_dynamic_load \
           fig15_emu_overhead fig16_case_study fig17_fault_tolerance \
           fig18_telemetry fig19_crash_recovery fig20_overload replay_divergence \
           fig22_cluster_failover fig23_control_plane model_accuracy ablations \
           parallel_speedup; do
  echo "==================== $bin ===================="
  cargo run -p osml-bench --release --bin "$bin"
done

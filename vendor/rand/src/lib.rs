//! Offline vendored stand-in for the subset of the `rand` 0.8 API used by
//! this workspace.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the handful of external crates it depends on. This crate provides a
//! deterministic [`rngs::StdRng`] (xoshiro256** seeded via SplitMix64) and
//! the [`Rng`], [`SeedableRng`] and [`seq::SliceRandom`] traits with exactly
//! the methods the OSML reproduction calls: `gen_range`, `gen_bool`,
//! `shuffle` and `choose`.
//!
//! The generator is *not* stream-compatible with upstream `rand`; everything
//! in this workspace only relies on determinism-per-seed, which this crate
//! guarantees (the sequence for a given seed is fixed forever).

#![forbid(unsafe_code)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word from the generator.
    fn next_u64(&mut self) -> u64;

    /// Next `f64` uniform in `[0, 1)` (53 random bits).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from `seed`. Equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample in `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range called with empty range");
        let v = lo + rng.next_f64() * (hi - lo);
        // Guard against rounding up to the excluded endpoint.
        if v >= hi {
            lo
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_half_open(rng, lo as f64, hi as f64) as f32
    }
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

/// Convenience methods layered on any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open `lo..hi`).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} out of range");
        self.next_f64() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// state-initialized with SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl StdRng {
        /// The raw xoshiro256** state, for checkpointing. Restoring via
        /// [`StdRng::from_state`] resumes the stream exactly where it left
        /// off.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by [`StdRng::state`].
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    fn index<R: RngCore + ?Sized>(rng: &mut R, n: usize) -> usize {
        (rng.next_u64() % n as u64) as usize
    }

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = index(rng, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[index(rng, self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(-2.0..1.5);
            assert!((-2.0..1.5).contains(&f));
            let g: f32 = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&g));
            let i: i32 = rng.gen_range(-25..25);
            assert!((-25..25).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*v.choose(&mut rng).unwrap() - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}

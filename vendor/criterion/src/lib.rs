//! Offline vendored stand-in for the subset of the `criterion` API this
//! workspace's benches use: [`Criterion`], benchmark groups, `iter` /
//! `iter_batched`, and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Instead of criterion's statistical machinery, each benchmark is run with
//! an adaptively chosen iteration count (targeting ~50 ms of wall-clock per
//! measurement after a short warm-up) and the mean ns/iter is printed. That
//! is enough to compare kernels before/after a change; it makes no
//! confidence claims.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        println!("group: {}", name.into());
        BenchmarkGroup { _criterion: self }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl std::fmt::Display, f: F) {
        run_benchmark(&name.to_string(), f);
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_benchmark(&format!("  {name}"), f);
        self
    }

    /// Ends the group (no-op; consumes nothing so groups can be reused).
    pub fn finish(self) {}
}

/// Batch sizing hint for [`Bencher::iter_batched`] (accepted, unused).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Measures closures handed to it by a benchmark function.
#[derive(Debug, Default)]
pub struct Bencher {
    result: Option<Measurement>,
}

#[derive(Debug, Clone, Copy)]
struct Measurement {
    ns_per_iter: f64,
    iters: u64,
}

const TARGET: Duration = Duration::from_millis(50);
const WARMUP: Duration = Duration::from_millis(10);

impl Bencher {
    /// Measures `f`, called in a tight loop.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up while estimating a per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let est = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let iters = ((TARGET.as_secs_f64() / est.max(1e-9)) as u64).clamp(1, 1_000_000_000);

        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed();
        self.result =
            Some(Measurement { ns_per_iter: elapsed.as_nanos() as f64 / iters as f64, iters });
    }

    /// Measures `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up estimate with a handful of runs.
        let mut est = 0.0f64;
        for _ in 0..3 {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            est = est.max(start.elapsed().as_secs_f64());
        }
        let iters = ((TARGET.as_secs_f64() / est.max(1e-9)) as u64).clamp(1, 100_000);

        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.result =
            Some(Measurement { ns_per_iter: total.as_nanos() as f64 / iters as f64, iters });
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    match bencher.result {
        Some(m) => {
            let (value, unit) = humanize(m.ns_per_iter);
            println!("{name}: {value:.2} {unit}/iter ({} iters)", m.iters);
        }
        None => println!("{name}: no measurement recorded"),
    }
}

fn humanize(ns: f64) -> (f64, &'static str) {
    if ns < 1e3 {
        (ns, "ns")
    } else if ns < 1e6 {
        (ns / 1e3, "µs")
    } else if ns < 1e9 {
        (ns / 1e6, "ms")
    } else {
        (ns / 1e9, "s")
    }
}

/// Declares a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_a_measurement() {
        let mut b = Bencher::default();
        b.iter(|| std::hint::black_box(1 + 1));
        let m = b.result.expect("measurement");
        assert!(m.ns_per_iter > 0.0);
        assert!(m.iters >= 1);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher::default();
        b.iter_batched(|| vec![0u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert!(b.result.is_some());
    }

    #[test]
    fn humanize_picks_units() {
        assert_eq!(humanize(10.0).1, "ns");
        assert_eq!(humanize(10_000.0).1, "µs");
        assert_eq!(humanize(10_000_000.0).1, "ms");
        assert_eq!(humanize(1e10).1, "s");
    }
}

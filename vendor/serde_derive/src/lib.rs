//! Offline vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]` for
//! the vendored serde stand-in.
//!
//! Implemented with the standard `proc_macro` API only (no `syn`/`quote`,
//! which are equally unavailable offline). The parser handles the shapes
//! this workspace derives:
//!
//! * named-field structs,
//! * tuple structs (newtype structs serialize as their inner value),
//! * enums with unit, struct and newtype variants (externally tagged, like
//!   upstream serde).
//!
//! Generics and `#[serde(...)]` attributes are unsupported and rejected
//! with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Shape {
    /// Named-field struct: field names in declaration order.
    Struct(Vec<String>),
    /// Tuple struct: number of fields.
    TupleStruct(usize),
    /// Unit struct.
    UnitStruct,
    /// Enum: `(variant name, variant shape)`.
    Enum(Vec<(String, VariantShape)>),
}

enum VariantShape {
    Unit,
    Newtype,
    Struct(Vec<String>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let (name, shape) = match parse(input) {
        Ok(parsed) => parsed,
        Err(msg) => {
            return format!("compile_error!({msg:?});").parse().expect("error tokens");
        }
    };
    let body = match mode {
        Mode::Serialize => gen_serialize(&name, &shape),
        Mode::Deserialize => gen_deserialize(&name, &shape),
    };
    body.parse().unwrap_or_else(|e| panic!("serde_derive generated invalid Rust: {e}\n{body}"))
}

/// Parses the deriving item into its name and shape.
fn parse(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" || id.to_string() == "enum" => {
            let k = id.to_string();
            i += 1;
            k
        }
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => {
            i += 1;
            id.to_string()
        }
        other => return Err(format!("expected type name, found {other:?}")),
    };
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("vendored serde_derive does not support generics (type `{name}`)"));
    }

    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace && kind == "struct" => {
            Ok((name, Shape::Struct(parse_named_fields(g.stream())?)))
        }
        Some(TokenTree::Group(g))
            if g.delimiter() == Delimiter::Parenthesis && kind == "struct" =>
        {
            Ok((name, Shape::TupleStruct(count_tuple_fields(g.stream()))))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' && kind == "struct" => {
            Ok((name, Shape::UnitStruct))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace && kind == "enum" => {
            Ok((name, Shape::Enum(parse_variants(g.stream())?)))
        }
        other => Err(format!("unsupported item body for `{name}`: {other:?}")),
    }
}

/// Advances past outer attributes (`#[...]`) and a visibility modifier
/// (`pub`, `pub(crate)`, ...).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Splits a token stream on top-level commas, tracking `<...>` depth so
/// generic arguments inside field types do not split fields.
fn split_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(tt);
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    for group in split_commas(stream) {
        let mut i = 0;
        skip_attrs_and_vis(&group, &mut i);
        match group.get(i) {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => continue, // trailing comma
            other => return Err(format!("expected field name, found {other:?}")),
        }
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_commas(stream).len()
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, VariantShape)>, String> {
    let mut variants = Vec::new();
    for group in split_commas(stream) {
        let mut i = 0;
        skip_attrs_and_vis(&group, &mut i);
        let name = match group.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => continue, // trailing comma
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let shape = match group.get(i) {
            None => VariantShape::Unit,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                VariantShape::Struct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                if count_tuple_fields(g.stream()) != 1 {
                    return Err(format!(
                        "vendored serde_derive supports only newtype tuple variants (`{name}`)"
                    ));
                }
                VariantShape::Newtype
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!("explicit discriminants unsupported (`{name}`)"));
            }
            other => return Err(format!("unsupported variant body for `{name}`: {other:?}")),
        };
        variants.push((name, shape));
    }
    Ok(variants)
}

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Struct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push((::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{pushes}::serde::Value::Object(fields)"
            )
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|(v, vs)| match vs {
                    VariantShape::Unit => format!(
                        "Self::{v} => ::serde::Value::Str(::std::string::String::from({v:?})),\n"
                    ),
                    VariantShape::Newtype => format!(
                        "Self::{v}(inner) => ::serde::Value::Object(vec![(\
                         ::std::string::String::from({v:?}), \
                         ::serde::Serialize::to_value(inner))]),\n"
                    ),
                    VariantShape::Struct(fields) => {
                        let binds = fields.join(", ");
                        let pushes: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "fields.push((::std::string::String::from({f:?}), \
                                     ::serde::Serialize::to_value({f})));\n"
                                )
                            })
                            .collect();
                        format!(
                            "Self::{v} {{ {binds} }} => {{\n\
                             let mut fields: ::std::vec::Vec<(::std::string::String, \
                             ::serde::Value)> = ::std::vec::Vec::new();\n{pushes}\
                             ::serde::Value::Object(vec![(::std::string::String::from({v:?}), \
                             ::serde::Value::Object(fields))])\n}},\n"
                        )
                    }
                })
                .collect();
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Struct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::obj_field(v, {f:?})?)?,\n"
                    )
                })
                .collect();
            format!("::std::result::Result::Ok({name} {{\n{inits}}})")
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\"))?;\n\
                 if items.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::DeError::expected(\
                 \"{n}-element array\"));\n}}\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, vs)| matches!(vs, VariantShape::Unit))
                .map(|(v, _)| format!("{v:?} => return ::std::result::Result::Ok(Self::{v}),\n"))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|(v, vs)| match vs {
                    VariantShape::Unit => None,
                    VariantShape::Newtype => Some(format!(
                        "{v:?} => ::std::result::Result::Ok(Self::{v}(\
                         ::serde::Deserialize::from_value(payload)?)),\n"
                    )),
                    VariantShape::Struct(fields) => {
                        let inits: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(\
                                     ::serde::obj_field(payload, {f:?})?)?,\n"
                                )
                            })
                            .collect();
                        Some(format!(
                            "{v:?} => ::std::result::Result::Ok(Self::{v} {{\n{inits}}}),\n"
                        ))
                    }
                })
                .collect();
            format!(
                "if let ::std::option::Option::Some(tag) = v.as_str() {{\n\
                 match tag {{\n{unit_arms}\
                 _ => return ::std::result::Result::Err(::serde::DeError::custom(\
                 format!(\"unknown variant `{{tag}}` of {name}\"))),\n}}\n}}\n\
                 let (tag, payload) = ::serde::enum_tag(v)?;\n\
                 match tag {{\n{tagged_arms}\
                 _ => ::std::result::Result::Err(::serde::DeError::custom(\
                 format!(\"unknown variant `{{tag}}` of {name}\"))),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         {body}\n}}\n}}\n"
    )
}

//! Offline vendored stand-in for the subset of `serde_json` this workspace
//! uses: [`to_string`], [`to_string_pretty`], [`from_str`] and [`Error`],
//! rendering/parsing the vendored serde [`Value`] tree as standard JSON.
//!
//! Numbers keep full precision: integers are emitted verbatim (up to
//! `i128`), floats through Rust's shortest round-trip formatting. `NaN` and
//! infinities serialize as `null`, matching upstream `serde_json`.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt::Write as _;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to an indented JSON string (two spaces per level).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserializes a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: s.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(T::from_value(&value)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                // Keep a trailing ".0" so integral floats stay floats on
                // re-parse, as upstream serde_json does.
                if f.fract() == 0.0 && f.abs() < 1e16 {
                    let _ = write!(out, "{f:.1}");
                } else {
                    let _ = write!(out, "{f}");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            if !fields.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid keyword at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid utf-8 in number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid integer `{text}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(Error::new(format!("invalid escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Bulk-consume the run of plain characters up to the
                    // next quote or escape, validating UTF-8 once for the
                    // whole run. (Validating from `pos` to the end of the
                    // document per character, as this once did, made
                    // parsing quadratic — seconds on megabyte documents.)
                    // Scanning bytes is safe: `"` and `\` are ASCII and
                    // never appear inside a multi-byte UTF-8 sequence.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(Error::new(format!("expected `,` or `]`, found {other:?}"))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => return Err(Error::new(format!("expected `,` or `}}`, found {other:?}"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-1.5f64).unwrap(), "-1.5");
        assert_eq!(from_str::<f64>("-1.5").unwrap(), -1.5);
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
    }

    #[test]
    fn f32_values_round_trip_exactly() {
        for v in [0.1f32, 1.0 / 3.0, f32::MIN_POSITIVE, 1e30, -2.5e-7] {
            let s = to_string(&v).unwrap();
            assert_eq!(from_str::<f32>(&s).unwrap(), v, "via {s}");
        }
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let original = "line\none \"two\" \\ tab\t ünïcødé \u{1}".to_string();
        let s = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&s).unwrap(), original);
    }

    #[test]
    fn bulk_string_runs_parse_around_escapes_and_multibyte() {
        // The fast path consumes plain runs in bulk; escapes and multi-byte
        // characters must still be stitched together correctly at the
        // boundaries, including a multi-byte char directly before a quote.
        let original = format!("{}\\\"ünïcødé{}\"中", "a".repeat(4096), "b".repeat(4096));
        let s = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&s).unwrap(), original);
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<(u32, f64)> = vec![(1, 0.5), (2, 1.5)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,0.5],[2,1.5]]");
        assert_eq!(from_str::<Vec<(u32, f64)>>(&s).unwrap(), v);
    }

    #[test]
    fn pretty_output_is_indented_and_parseable() {
        let v: Vec<Vec<u8>> = vec![vec![1, 2], vec![]];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u8>>>(&s).unwrap(), v);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("12 34").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"abc").is_err());
        assert!(from_str::<bool>("tru").is_err());
    }

    #[test]
    fn whitespace_is_tolerated() {
        assert_eq!(from_str::<Vec<u32>>(" [ 1 , 2 ]\n").unwrap(), vec![1, 2]);
    }
}

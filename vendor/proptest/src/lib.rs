//! Offline vendored stand-in for the subset of `proptest` this workspace
//! uses: the [`proptest!`] macro over range strategies with `prop_map`,
//! `prop_assume!`, `prop_assert!` and `prop_assert_eq!`.
//!
//! No shrinking is performed — a failing case panics with the sampled
//! inputs in the message so it can be reproduced by hand. Case generation
//! is deterministic: the RNG is seeded from the test name, so a failure
//! reproduces on every run.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Marker returned by `prop_assume!` rejections; the runner skips the case.
#[derive(Debug)]
pub struct TestCaseSkip;

/// Deterministic per-test RNG handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds the RNG from a test-name hash.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter created by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.start..self.end)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// A strategy that always yields clones of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::{Strategy, TestRng};

    /// Strategy for `Vec`s with element values from `element` and a length
    /// drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything tests normally import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Defines property tests: each `fn` runs `config.cases` times with inputs
/// sampled from its strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: the config is captured at depth 0
/// so it can be repeated once per test function.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])+
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config = $cfg;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for _case in 0..config.cases {
                    $(
                        let $arg = $crate::Strategy::sample(&($strat), &mut rng);
                    )+
                    #[allow(clippy::redundant_closure_call)]
                    let result = (|| -> ::std::result::Result<(), $crate::TestCaseSkip> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    // Rejected cases (prop_assume!) are simply skipped.
                    drop(result);
                }
            }
        )*
    };
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseSkip);
        }
    };
}

/// Asserts `cond`, panicking with the formatted message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(a in 0usize..10, b in -5i32..5, f in 0.25f64..0.75) {
            prop_assert!(a < 10);
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.25..0.75).contains(&f), "f = {}", f);
        }

        #[test]
        fn assume_skips_cases(a in 0usize..10, b in 0usize..10) {
            prop_assume!(a + b <= 12);
            prop_assert!(a + b <= 12);
        }

        #[test]
        fn trailing_comma_accepted(
            x in 0u64..(1 << 36),
        ) {
            prop_assert_eq!(x >> 36, 0);
        }
    }

    #[test]
    fn collection_vec_respects_length_and_element_bounds() {
        let strat = crate::collection::vec(0u8..10, 2..5);
        let mut rng = crate::TestRng::from_name("vecs");
        for _ in 0..50 {
            let v = crate::Strategy::sample(&strat, &mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn prop_map_transforms() {
        let strat = (0usize..3).prop_map(|i| ["a", "b", "c"][i]);
        let mut rng = crate::TestRng::from_name("map");
        for _ in 0..20 {
            let v = strat.sample(&mut rng);
            assert!(["a", "b", "c"].contains(&v));
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("same");
        let mut b = crate::TestRng::from_name("same");
        let s = 0u64..1000;
        for _ in 0..10 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }
}

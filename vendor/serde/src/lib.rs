//! Offline vendored stand-in for the subset of `serde` this workspace uses.
//!
//! The build container cannot reach crates.io, so the workspace vendors its
//! external dependencies. Real serde is a visitor-based zero-copy framework;
//! this stand-in keeps the same *names* (`Serialize`, `Deserialize`, the
//! derive macros) but uses a much simpler tree-based data model: values
//! serialize into a [`Value`] tree, and `serde_json` renders/parses that
//! tree. The derive macros in `serde_derive` generate impls of these traits
//! for named structs, tuple structs, and enums with unit/struct/newtype
//! variants — the shapes this workspace derives.
//!
//! Supported field types: integers, floats, `bool`, `char`, `String`,
//! `Option<T>`, `Vec<T>`, fixed-size arrays, tuples up to arity 4, and any
//! nested derived type.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A serialized value tree (the stand-in's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer (wide enough for exact `u64`/`i64` round trips).
    Int(i128),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered key/value map (field order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The field list, if this is an `Object`.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The element list, if this is an `Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a field by name in an `Object`.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

/// Error produced when a [`Value`] tree does not match the requested type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Builds an error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        DeError { message: message.into() }
    }

    /// Builds a "expected X" mismatch error.
    pub fn expected(what: &str) -> Self {
        DeError { message: format!("expected {what}") }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can serialize themselves into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self`.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from `v`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Looks up a required object field (helper used by derived impls).
pub fn obj_field<'a>(v: &'a Value, name: &str) -> Result<&'a Value, DeError> {
    v.get(name).ok_or_else(|| DeError::custom(format!("missing field `{name}`")))
}

/// Splits an externally-tagged enum value `{ "Variant": payload }` into the
/// tag and payload (helper used by derived impls).
pub fn enum_tag(v: &Value) -> Result<(&str, &Value), DeError> {
    match v.as_object() {
        Some([(tag, payload)]) => Ok((tag, payload)),
        _ => Err(DeError::expected("single-key enum object")),
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::custom(format!("integer {i} out of range"))),
                    _ => Err(DeError::expected(stringify!($t))),
                }
            }
        }
    )*};
}

impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    _ => Err(DeError::expected(stringify!($t))),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool")),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::expected("char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::expected("single-character string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str().map(str::to_owned).ok_or_else(|| DeError::expected("string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array().ok_or_else(|| DeError::expected("array"))?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|items| DeError::custom(format!("expected {N} elements, got {}", items.len())))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::expected("tuple array"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected tuple of {expected}, got {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::expected("object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1.0f64, 2.0f64), (3.0, 4.0)];
        let round: Vec<(f64, f64)> = Vec::from_value(&v.to_value()).unwrap();
        assert_eq!(round, v);
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&o.to_value()).unwrap(), None);
        let arr = [1u8, 2, 3];
        assert_eq!(<[u8; 3]>::from_value(&arr.to_value()).unwrap(), arr);
    }

    #[test]
    fn mismatches_report_errors() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(bool::from_value(&Value::Int(1)).is_err());
        assert!(<[u8; 2]>::from_value(&vec![1u8].to_value()).is_err());
    }

    #[test]
    fn btreemap_round_trips_as_object() {
        let mut m = std::collections::BTreeMap::new();
        m.insert("a".to_string(), 1u64);
        m.insert("b".to_string(), 2u64);
        let v = m.to_value();
        assert_eq!(v.get("a"), Some(&Value::Int(1)));
        let round: std::collections::BTreeMap<String, u64> = Deserialize::from_value(&v).unwrap();
        assert_eq!(round, m);
    }

    #[test]
    fn object_lookup() {
        let v = Value::Object(vec![("a".into(), Value::Int(1))]);
        assert_eq!(obj_field(&v, "a").unwrap(), &Value::Int(1));
        assert!(obj_field(&v, "b").is_err());
    }
}

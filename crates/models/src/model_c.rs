use crate::features;
use osml_ml::dqn::{Dqn, DqnCheckpoint, DqnConfig, Transition};
use osml_ml::{Matrix, Mlp};
use osml_platform::CounterSample;
use serde::{Deserialize, Serialize};

/// Each action component (Δcores and Δways) ranges over `[-3, 3]` (§IV-C:
/// `Action_Function: {<m, n> | m ∈ [-3,3], n ∈ [-3,3]}`).
pub const ACTION_RANGE: i32 = 3;

/// Number of discrete actions: 7 × 7 = 49.
pub const ACTIONS: usize = ((2 * ACTION_RANGE + 1) * (2 * ACTION_RANGE + 1)) as usize;

/// One scheduling action: allocate (+) or deprive (−) cores and LLC ways.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Action {
    /// Core delta `m`; positive allocates more cores.
    pub dcores: i32,
    /// Way delta `n`; positive allocates more ways.
    pub dways: i32,
}

impl Action {
    /// The do-nothing action.
    pub fn noop() -> Self {
        Action { dcores: 0, dways: 0 }
    }

    /// Decodes an action index (0..[`ACTIONS`]).
    ///
    /// # Panics
    ///
    /// Panics if `index >= ACTIONS`.
    pub fn from_index(index: usize) -> Self {
        assert!(index < ACTIONS, "action index {index} out of range");
        let side = (2 * ACTION_RANGE + 1) as usize;
        Action {
            dcores: (index / side) as i32 - ACTION_RANGE,
            dways: (index % side) as i32 - ACTION_RANGE,
        }
    }

    /// Encodes to an action index.
    ///
    /// # Panics
    ///
    /// Panics if either delta is outside `[-ACTION_RANGE, ACTION_RANGE]`.
    pub fn index(&self) -> usize {
        assert!(self.dcores.abs() <= ACTION_RANGE && self.dways.abs() <= ACTION_RANGE);
        let side = 2 * ACTION_RANGE + 1;
        ((self.dcores + ACTION_RANGE) * side + (self.dways + ACTION_RANGE)) as usize
    }

    /// Total resources this action commits (positive deltas only) — the
    /// `ΔCoreNum + ΔCacheWay` cost term of the reward function.
    pub fn resource_cost(&self) -> f64 {
        f64::from(self.dcores + self.dways)
    }
}

/// Inputs to the paper's Model-C reward function.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardInput {
    /// Latency before the action, ms.
    pub latency_before_ms: f64,
    /// Latency after the action, ms.
    pub latency_after_ms: f64,
    /// The action taken.
    pub action: Action,
}

/// The paper's reward function (§IV-C), verbatim:
///
/// ```text
/// lat↓:  R = +log(lat_prev − lat_cur) − (ΔCores + ΔWays)
/// lat↑:  R = −log(lat_cur − lat_prev) − (ΔCores + ΔWays)
/// lat=:  R = −(ΔCores + ΔWays)
/// ```
///
/// "This function gives higher rewards and expectations to the Action that
/// can lead to less resource usage and lower latency." The log argument is
/// in milliseconds; differences below 1 ms are clamped to 1 ms so the log
/// stays non-negative and finite.
pub fn reward(input: &RewardInput) -> f64 {
    let cost = input.action.resource_cost();
    let diff = input.latency_before_ms - input.latency_after_ms;
    if diff > 0.0 {
        diff.max(1.0).ln() - cost
    } else if diff < 0.0 {
        -((-diff).max(1.0).ln()) - cost
    } else {
        -cost
    }
}

/// **Model-C: handling the changes on the fly** (§IV-C).
///
/// An enhanced DQN whose policy/target networks are 3-hidden-layer MLPs of
/// 30 neurons. The state is a normalized counter sample plus latency; the 49
/// actions adjust cores/ways by up to ±3 each. Exploration is ε-greedy with
/// ε = 5 %.
#[derive(Debug, Clone)]
pub struct ModelC {
    dqn: Dqn,
    /// Bumped whenever the policy network's weights change (a completed
    /// training step, a policy load, a checkpoint restore). Batched-inference
    /// callers cache Q-rows keyed on this: a mid-tick weight update
    /// invalidates every cached row, forcing the scalar path so cached and
    /// scalar decisions stay bit-identical.
    revision: u64,
}

impl ModelC {
    /// Creates an untrained Model-C.
    pub fn new(seed: u64) -> Self {
        ModelC {
            dqn: Dqn::new(DqnConfig::paper(features::MODEL_C_STATE, ACTIONS, seed)),
            revision: 0,
        }
    }

    /// Creates a Model-C with custom DQN settings (state/action sizes are
    /// fixed by the schema).
    ///
    /// # Panics
    ///
    /// Panics if `config` disagrees with the Model-C state width or action
    /// count.
    pub fn with_config(config: DqnConfig) -> Self {
        assert_eq!(config.state_dim, features::MODEL_C_STATE, "state width is fixed");
        assert_eq!(config.num_actions, ACTIONS, "action count is fixed");
        ModelC { dqn: Dqn::new(config), revision: 0 }
    }

    /// Current policy-weight revision. Changes exactly when a Q-value
    /// computed from the policy network could change: after an effective
    /// [`ModelC::train_step`], a [`ModelC::load_policy`], or a restore.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// The DQN settings in effect (ε, γ, replay sizing).
    pub fn config(&self) -> &DqnConfig {
        self.dqn.config()
    }

    /// ε-greedy action selection from a counter sample.
    pub fn select_action(&mut self, sample: &CounterSample) -> Action {
        Action::from_index(self.dqn.select_action(&features::model_c_state(sample)))
    }

    /// Greedy (exploitation-only) action.
    pub fn best_action(&self, sample: &CounterSample) -> Action {
        Action::from_index(self.dqn.best_action(&features::model_c_state(sample)))
    }

    /// The highest-Q action among those satisfying `pred`, or `None` if no
    /// action qualifies. The OSML controller uses this to restrict Model-C
    /// to growth actions under a QoS violation (Algorithm 2) and to
    /// reclamation actions when resources are surplus (Algorithm 3).
    pub fn best_action_where(
        &self,
        sample: &CounterSample,
        pred: impl FnMut(Action) -> bool,
    ) -> Option<Action> {
        best_action_from_q(&self.q_values(sample), pred)
    }

    /// Q-values for all 49 actions.
    pub fn q_values(&self, sample: &CounterSample) -> Vec<f32> {
        self.dqn.q_values(&features::model_c_state(sample))
    }

    /// Batched Q-value forward pass through the policy network: row `i` of
    /// the result holds the 49 Q-values for row `i` of `inputs` (one
    /// [`features::MODEL_C_STATE`]-wide state per row, written with
    /// [`features::write_model_c_state`]). Row `i` is bit-identical to
    /// [`ModelC::q_values`] on the same state — the fused kernel computes
    /// every output row independently — so decoding a cached row with
    /// [`best_action_from_q`] equals the scalar [`ModelC::best_action_where`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is not [`features::MODEL_C_STATE`] columns wide.
    pub fn q_values_batch_into<'s>(
        &self,
        inputs: &Matrix,
        scratch_a: &'s mut Matrix,
        scratch_b: &'s mut Matrix,
    ) -> &'s Matrix {
        self.dqn.policy().forward_batch_into(inputs, scratch_a, scratch_b)
    }

    /// Records an observed `<Status, Action, Reward, Status'>` tuple in the
    /// experience pool. The reward is computed with the paper's function.
    pub fn observe(
        &mut self,
        before: &CounterSample,
        action: Action,
        after: &CounterSample,
    ) -> f64 {
        let r = reward(&RewardInput {
            latency_before_ms: before.response_latency_ms,
            latency_after_ms: after.response_latency_ms,
            action,
        });
        self.dqn.observe(Transition {
            state: features::model_c_state(before),
            action: action.index(),
            reward: r as f32,
            next_state: features::model_c_state(after),
        });
        r
    }

    /// One online-training step (samples 200 tuples by default); `None`
    /// until the pool holds a full batch.
    pub fn train_step(&mut self) -> Option<f32> {
        let loss = self.dqn.train_step();
        if loss.is_some() {
            // Weights moved: cached Q-rows are stale.
            self.revision = self.revision.wrapping_add(1);
        }
        loss
    }

    /// Number of pooled experience tuples.
    pub fn pool_len(&self) -> usize {
        self.dqn.pool_len()
    }

    /// Copies the policy network into the target network.
    pub fn sync_target(&mut self) {
        self.dqn.sync_target()
    }

    /// Read access to the policy network (for persistence).
    pub fn policy(&self) -> &Mlp {
        self.dqn.policy()
    }

    /// Loads a trained policy network (replacing both networks).
    pub fn load_policy(&mut self, policy: Mlp) {
        self.revision = self.revision.wrapping_add(1);
        self.dqn.load_policy(policy)
    }

    /// Captures the complete agent state (both networks, experience pool,
    /// optimizer moments, RNG position) for durable persistence.
    pub fn checkpoint(&self) -> DqnCheckpoint {
        self.dqn.checkpoint()
    }

    /// Rebuilds a Model-C from a checkpoint captured by
    /// [`ModelC::checkpoint`]. The restored model resumes exploration and
    /// online training exactly where the checkpointed one stopped.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint disagrees with the Model-C state width or
    /// action count (a checkpoint from a different schema).
    pub fn restore(ck: DqnCheckpoint) -> Self {
        assert_eq!(ck.config.state_dim, features::MODEL_C_STATE, "state width is fixed");
        assert_eq!(ck.config.num_actions, ACTIONS, "action count is fixed");
        ModelC { dqn: Dqn::restore(ck), revision: 0 }
    }
}

/// Filtered argmax over a 49-wide Q-row: the highest-Q action among those
/// satisfying `pred`, or `None` if no action qualifies. This is *the* decode
/// — [`ModelC::best_action_where`] and the batched-inference cache both go
/// through it, so batched and scalar action selection cannot drift.
pub fn best_action_from_q(q: &[f32], mut pred: impl FnMut(Action) -> bool) -> Option<Action> {
    (0..ACTIONS)
        .map(Action::from_index)
        .filter(|&a| pred(a))
        .max_by(|a, b| q[a.index()].total_cmp(&q[b.index()]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(latency_ms: f64) -> CounterSample {
        CounterSample {
            ipc: 1.0,
            llc_misses_per_sec: 1e7,
            mbl_gbps: 2.0,
            cpu_usage: 5.0,
            memory_util_gb: 2.0,
            virt_memory_gb: 3.2,
            res_memory_gb: 2.0,
            llc_occupancy_mb: 10.0,
            allocated_cores: 6,
            allocated_ways: 8,
            frequency_ghz: 2.3,
            response_latency_ms: latency_ms,
        }
    }

    #[test]
    fn action_index_round_trips() {
        for i in 0..ACTIONS {
            let a = Action::from_index(i);
            assert_eq!(a.index(), i);
            assert!(a.dcores.abs() <= 3 && a.dways.abs() <= 3);
        }
        assert_eq!(Action::noop().index(), ACTIONS / 2);
    }

    #[test]
    fn action_space_is_49() {
        assert_eq!(ACTIONS, 49);
    }

    #[test]
    fn reward_prefers_latency_drop_with_few_resources() {
        // Big latency drop, no new resources: strongly positive.
        let gain_free = reward(&RewardInput {
            latency_before_ms: 1000.0,
            latency_after_ms: 10.0,
            action: Action { dcores: 0, dways: 0 },
        });
        assert!(gain_free > 6.0);
        // Same drop bought with 6 resources: less attractive.
        let gain_costly = reward(&RewardInput {
            latency_before_ms: 1000.0,
            latency_after_ms: 10.0,
            action: Action { dcores: 3, dways: 3 },
        });
        assert!(gain_costly < gain_free);
        // Latency regression is punished.
        let regress = reward(&RewardInput {
            latency_before_ms: 10.0,
            latency_after_ms: 1000.0,
            action: Action { dcores: 0, dways: 0 },
        });
        assert!(regress < 0.0);
        // Releasing resources at equal latency is rewarded.
        let reclaim = reward(&RewardInput {
            latency_before_ms: 10.0,
            latency_after_ms: 10.0,
            action: Action { dcores: -2, dways: -1 },
        });
        assert!((reclaim - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reward_handles_sub_millisecond_diffs() {
        let r = reward(&RewardInput {
            latency_before_ms: 10.0,
            latency_after_ms: 9.9999,
            action: Action::noop(),
        });
        assert!(r.is_finite());
        assert!(r >= 0.0, "a tiny improvement must not be negative: {r}");
    }

    #[test]
    fn observe_computes_paper_reward() {
        let mut c = ModelC::new(3);
        let r = c.observe(&sample(100.0), Action { dcores: 1, dways: 0 }, &sample(10.0));
        assert!((r - (90.0f64.ln() - 1.0)).abs() < 1e-9);
        assert_eq!(c.pool_len(), 1);
    }

    #[test]
    fn model_c_learns_to_stop_wasting_resources() {
        // Synthetic environment: latency is flat at 5 ms regardless of
        // action. The reward then reduces to -(dcores + dways), so the
        // greedy action must converge to strictly negative deltas (reclaim).
        // ε = 0.3 is a training-phase exploration boost for this synthetic
        // environment only (600 steps are too few for ε = 0.05 to cover the
        // action space). Deployed Model-C keeps the paper's ε = 0.05, pinned
        // by `paper_config_pins_the_deployment_epsilon` below.
        let mut c = ModelC::with_config(DqnConfig {
            batch_size: 64,
            epsilon: 0.3,
            ..DqnConfig::paper(features::MODEL_C_STATE, ACTIONS, 11)
        });
        let s = sample(5.0);
        for _ in 0..600 {
            let a = c.select_action(&s);
            c.observe(&s, a, &s);
            c.train_step();
        }
        let best = c.best_action(&s);
        assert!(
            best.dcores + best.dways < 0,
            "model-c should reclaim resources at stable latency, chose {best:?}"
        );
    }

    #[test]
    fn paper_config_pins_the_deployment_epsilon() {
        // §IV-C: deployed Model-C explores with ε = 0.05. Tests may boost ε
        // to speed up synthetic training runs, but the production default
        // must stay at the paper's value.
        let cfg = DqnConfig::paper(features::MODEL_C_STATE, ACTIONS, 1);
        assert_eq!(cfg.epsilon, 0.05);
        assert_eq!(ModelC::new(1).config().epsilon, 0.05);
    }

    #[test]
    fn best_action_is_deterministic() {
        let c = ModelC::new(5);
        let s = sample(12.0);
        assert_eq!(c.best_action(&s), c.best_action(&s));
    }

    #[test]
    #[should_panic(expected = "state width is fixed")]
    fn with_config_checks_dimensions() {
        let _ = ModelC::with_config(DqnConfig::paper(3, ACTIONS, 0));
    }

    /// Pinned: a batched Q-row decoded with `best_action_from_q` equals the
    /// scalar `best_action_where` on the same sample — bit-identical Q-values
    /// and the same filtered argmax — at batch sizes 1, 2 and 7.
    #[test]
    fn batched_q_rows_match_scalar_at_sizes_1_2_7() {
        let mut c = ModelC::new(42);
        // Train a little so the weights are not at their init values.
        let s0 = sample(50.0);
        for i in 0..300 {
            let a = c.select_action(&s0);
            c.observe(&sample(50.0 + i as f64), a, &sample(40.0 + i as f64));
            c.train_step();
        }
        let filters: [fn(Action) -> bool; 3] = [
            |a| a.dcores >= 0 && a.dways >= 0 && a != Action::noop(),
            |a| a.dcores <= 0 && a.dways <= 0 && a != Action::noop(),
            |_| true,
        ];
        for batch in [1usize, 2, 7] {
            let samples: Vec<CounterSample> =
                (0..batch).map(|i| sample(3.0 + 17.0 * i as f64)).collect();
            let mut inputs = Matrix::zeros(batch, features::MODEL_C_STATE);
            for (r, s) in samples.iter().enumerate() {
                features::write_model_c_state(s, inputs.row_mut(r));
            }
            let mut s1 = Matrix::zeros(0, 0);
            let mut s2 = Matrix::zeros(0, 0);
            let q = c.q_values_batch_into(&inputs, &mut s1, &mut s2);
            for (r, s) in samples.iter().enumerate() {
                assert_eq!(q.row(r), c.q_values(s).as_slice(), "batch={batch} row={r}");
                for f in filters {
                    assert_eq!(
                        best_action_from_q(q.row(r), f),
                        c.best_action_where(s, f),
                        "batch={batch} row={r}"
                    );
                }
            }
        }
    }

    #[test]
    fn revision_tracks_weight_changes() {
        let mut c = ModelC::new(9);
        let r0 = c.revision();
        c.observe(&sample(10.0), Action::noop(), &sample(10.0));
        assert_eq!(c.revision(), r0, "observing does not move weights");
        assert!(c.train_step().is_none(), "pool below batch size: no training");
        assert_eq!(c.revision(), r0, "an ineffective train step keeps the revision");
        let mut trained = ModelC::with_config(DqnConfig {
            batch_size: 4,
            ..DqnConfig::paper(features::MODEL_C_STATE, ACTIONS, 9)
        });
        for _ in 0..4 {
            trained.observe(&sample(10.0), Action::noop(), &sample(10.0));
        }
        let before = trained.revision();
        assert!(trained.train_step().is_some());
        assert_eq!(trained.revision(), before + 1);
    }
}

//! The shared feature schema: Table 3 of the paper, with fixed normalization.
//!
//! All three models consume the same counter sample; Model-B appends the QoS
//! slowdown budget and Model-C appends the response latency. Normalization
//! uses **fixed physical scales** (machine geometry and sane counter ranges)
//! rather than corpus statistics, so a model trained on one corpus can score
//! samples from any run without dragging normalization state around.

use osml_platform::CounterSample;

/// Number of base features (Table 3 rows used by Model-A).
pub const BASE_FEATURES: usize = 11;

/// Fixed normalization scales for the 11 base features, in
/// [`CounterSample::model_a_features`] order. Chosen so normalized values
/// land roughly in [0, 2] on the paper's testbed.
pub const FEATURE_SCALES: [f64; BASE_FEATURES] = [
    2.0,   // IPC
    2.0e8, // LLC misses per second
    50.0,  // MBL, GB/s
    36.0,  // CPU usage (cores busy)
    16.0,  // memory util, GB
    25.0,  // virtual memory, GB
    16.0,  // resident memory, GB
    45.0,  // LLC occupancy, MB
    36.0,  // allocated cores
    20.0,  // allocated ways
    3.0,   // frequency, GHz
];

/// Scale applied to latencies before entering a feature vector. Latencies
/// span five orders of magnitude (1 ms .. 100 s), so they enter as
/// `log10(1 + ms) / LATENCY_LOG_SCALE`.
pub const LATENCY_LOG_SCALE: f64 = 5.0;

/// Normalizes the 11 base features of a sample.
///
/// Non-finite counters (a torn PMU read that slipped past upstream
/// validation) are mapped to 0.0 — a single NaN entering a feature vector
/// would otherwise poison every downstream matmul and, with online
/// learning, every weight it touches.
pub fn base_features(sample: &CounterSample) -> Vec<f32> {
    let mut v = vec![0.0; BASE_FEATURES];
    write_base_features(sample, &mut v);
    v
}

/// Writes the 11 normalized base features into `out` without allocating —
/// the batched-inference gather fills one matrix row per service with this.
/// Exactly the arithmetic of [`base_features`].
///
/// # Panics
///
/// Panics if `out.len() != BASE_FEATURES`.
pub fn write_base_features(sample: &CounterSample, out: &mut [f32]) {
    assert_eq!(out.len(), BASE_FEATURES, "feature row width mismatch");
    for ((o, &v), &s) in out.iter_mut().zip(sample.model_a_features().iter()).zip(&FEATURE_SCALES) {
        let n = (v / s) as f32;
        *o = if n.is_finite() { n } else { 0.0 };
    }
}

/// Model-A input: the 11 normalized base features.
pub fn model_a_input(sample: &CounterSample) -> Vec<f32> {
    base_features(sample)
}

/// Model-B input: base features plus the acceptable QoS slowdown (e.g. 0.05
/// for "5 % slower is tolerable").
pub fn model_b_input(sample: &CounterSample, qos_slowdown: f64) -> Vec<f32> {
    let mut v = vec![0.0; MODEL_B_INPUTS];
    write_model_b_input(sample, qos_slowdown, &mut v);
    v
}

/// Non-allocating [`model_b_input`] writing into a matrix row.
///
/// # Panics
///
/// Panics if `out.len() != MODEL_B_INPUTS`.
pub fn write_model_b_input(sample: &CounterSample, qos_slowdown: f64, out: &mut [f32]) {
    assert_eq!(out.len(), MODEL_B_INPUTS, "feature row width mismatch");
    write_base_features(sample, &mut out[..BASE_FEATURES]);
    out[BASE_FEATURES] = qos_slowdown as f32;
}

/// Model-B' input: base features plus a proposed deprivation in cores and
/// ways.
pub fn model_b_prime_input(
    sample: &CounterSample,
    cores_taken: usize,
    ways_taken: usize,
) -> Vec<f32> {
    let mut v = vec![0.0; MODEL_B_PRIME_INPUTS];
    write_model_b_prime_input(sample, cores_taken, ways_taken, &mut v);
    v
}

/// Non-allocating [`model_b_prime_input`] writing into a matrix row.
///
/// # Panics
///
/// Panics if `out.len() != MODEL_B_PRIME_INPUTS`.
pub fn write_model_b_prime_input(
    sample: &CounterSample,
    cores_taken: usize,
    ways_taken: usize,
    out: &mut [f32],
) {
    assert_eq!(out.len(), MODEL_B_PRIME_INPUTS, "feature row width mismatch");
    write_base_features(sample, &mut out[..BASE_FEATURES]);
    out[BASE_FEATURES] = cores_taken as f32 / 36.0;
    out[BASE_FEATURES + 1] = ways_taken as f32 / 20.0;
}

/// Model-C state: base features plus the log-scaled response latency
/// (Table 3 lists `Resp. Latency` as a Model-C-only feature).
pub fn model_c_state(sample: &CounterSample) -> Vec<f32> {
    let mut v = base_features(sample);
    v.push(normalized_latency(sample.response_latency_ms));
    v
}

/// Writes the Model-C state into a caller-provided row (the batched gather
/// path); identical to [`model_c_state`] without the allocation.
///
/// # Panics
///
/// Panics if `out.len() != MODEL_C_STATE`.
pub fn write_model_c_state(sample: &CounterSample, out: &mut [f32]) {
    assert_eq!(out.len(), MODEL_C_STATE, "feature row width mismatch");
    write_base_features(sample, &mut out[..BASE_FEATURES]);
    out[BASE_FEATURES] = normalized_latency(sample.response_latency_ms);
}

/// Log-scaled latency feature. NaN and infinite inputs are defused (0.0 and
/// the scale ceiling respectively) rather than propagated.
pub fn normalized_latency(latency_ms: f64) -> f32 {
    if latency_ms.is_nan() {
        return 0.0;
    }
    let n = ((1.0 + latency_ms.max(0.0)).log10() / LATENCY_LOG_SCALE) as f32;
    n.min(2.0)
}

/// Width of a Model-B input vector.
pub const MODEL_B_INPUTS: usize = BASE_FEATURES + 1;

/// Width of a Model-B' input vector.
pub const MODEL_B_PRIME_INPUTS: usize = BASE_FEATURES + 2;

/// Width of a Model-C state vector.
pub const MODEL_C_STATE: usize = BASE_FEATURES + 1;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CounterSample {
        CounterSample {
            ipc: 1.0,
            llc_misses_per_sec: 1.0e8,
            mbl_gbps: 25.0,
            cpu_usage: 18.0,
            memory_util_gb: 8.0,
            virt_memory_gb: 12.5,
            res_memory_gb: 8.0,
            llc_occupancy_mb: 22.5,
            allocated_cores: 18,
            allocated_ways: 10,
            frequency_ghz: 2.3,
            response_latency_ms: 9.0,
        }
    }

    #[test]
    fn base_features_are_normalized_to_unit_scale() {
        let f = base_features(&sample());
        assert_eq!(f.len(), BASE_FEATURES);
        for (i, &v) in f.iter().enumerate() {
            assert!((0.0..=2.0).contains(&v), "feature {i} out of range: {v}");
        }
        assert!((f[0] - 0.5).abs() < 1e-6); // ipc 1.0 / 2.0
        assert!((f[9] - 0.5).abs() < 1e-6); // 10 ways / 20
    }

    #[test]
    fn widths_match_constants() {
        let s = sample();
        assert_eq!(model_a_input(&s).len(), BASE_FEATURES);
        assert_eq!(model_b_input(&s, 0.05).len(), MODEL_B_INPUTS);
        assert_eq!(model_b_prime_input(&s, 2, 3).len(), MODEL_B_PRIME_INPUTS);
        assert_eq!(model_c_state(&s).len(), MODEL_C_STATE);
    }

    #[test]
    fn latency_normalization_is_log_scaled_and_monotone() {
        assert!(normalized_latency(0.0).abs() < 1e-9);
        let a = normalized_latency(10.0);
        let b = normalized_latency(10_000.0);
        assert!(b > a);
        assert!(b <= 1.1, "100 s should stay near 1.0, got {b}");
        // Negative input is clamped, not NaN.
        assert!(normalized_latency(-5.0).is_finite());
    }

    #[test]
    fn model_b_slowdown_is_passed_through() {
        let v = model_b_input(&sample(), 0.15);
        assert!((v[BASE_FEATURES] - 0.15).abs() < 1e-6);
    }

    #[test]
    fn non_finite_counters_never_reach_a_feature_vector() {
        let poisoned = CounterSample {
            ipc: f64::NAN,
            mbl_gbps: f64::INFINITY,
            response_latency_ms: f64::NAN,
            ..sample()
        };
        for v in model_c_state(&poisoned) {
            assert!(v.is_finite(), "feature vectors must stay finite, got {v}");
        }
        for v in model_b_prime_input(&poisoned, 2, 3) {
            assert!(v.is_finite());
        }
        assert!(normalized_latency(f64::INFINITY).is_finite());
        assert!(normalized_latency(f64::NAN) == 0.0);
    }
}

use crate::features;
use osml_ml::loss::MaskedRelativeMse;
use osml_ml::{Matrix, Mlp, MlpConfig, TrainReport, Trainer, TrainerConfig};
use osml_platform::CounterSample;
use serde::{Deserialize, Serialize};

/// The three resource-trading policies Model-B outputs (§IV-B): each
/// corresponds to one reduction angle in the paper's Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeprivePolicy {
    /// `<cores, LLC ways>` — the oblique angle: shed both evenly.
    Balanced,
    /// `<cores dominated, LLC ways>` — trade mostly cores for ways.
    CoresDominated,
    /// `<cores, LLC ways dominated>` — trade mostly ways for cores.
    WaysDominated,
}

/// All policies in output-head order.
pub const POLICIES: [DeprivePolicy; 3] =
    [DeprivePolicy::Balanced, DeprivePolicy::CoresDominated, DeprivePolicy::WaysDominated];

/// One B-point: how many cores and ways can be deprived of a service under
/// one policy while keeping its QoS slowdown within the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BPoint {
    /// Policy this point belongs to.
    pub policy: DeprivePolicy,
    /// Cores that can be taken.
    pub cores: usize,
    /// LLC ways that can be taken.
    pub ways: usize,
}

impl BPoint {
    /// Total resources this point frees.
    pub fn total(&self) -> usize {
        self.cores + self.ways
    }
}

/// Model-B's full output: one B-point per policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BPoints {
    /// The balanced, cores-dominated and ways-dominated points.
    pub points: [BPoint; 3],
}

impl BPoints {
    /// Iterates the points.
    pub fn iter(&self) -> impl Iterator<Item = &BPoint> {
        self.points.iter()
    }

    /// The point freeing the most total resources.
    pub fn most_generous(&self) -> BPoint {
        *self.points.iter().max_by_key(|p| p.total()).expect("points is non-empty")
    }
}

/// Number of Model-B regression heads: (cores, ways) × 3 policies.
pub const OUTPUTS: usize = 6;

const CORE_SCALE: f32 = 36.0;
const WAY_SCALE: f32 = 20.0;

/// **Model-B: trading QoS for resources** (§IV-B).
///
/// Input: the 11 base features plus an acceptable QoS slowdown. Output:
/// three B-points. Trained with the paper's zero-masked relative loss
/// ([`MaskedRelativeMse`]) so "non-existent" trades — labelled 0 during data
/// collection — never pull the weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelB {
    mlp: Mlp,
    max_cores: usize,
    max_ways: usize,
}

impl ModelB {
    /// Creates an untrained Model-B.
    pub fn new(max_cores: usize, max_ways: usize, seed: u64) -> Self {
        ModelB {
            mlp: Mlp::new(&MlpConfig::paper_mlp(features::MODEL_B_INPUTS, OUTPUTS, seed)),
            max_cores,
            max_ways,
        }
    }

    /// Encodes a label row: the deprivable `(cores, ways)` per policy, in
    /// [`POLICIES`] order. `None` marks a non-existent trade (labelled 0 so
    /// the masked loss skips it).
    pub fn encode_label(points: [Option<(usize, usize)>; 3]) -> [f32; OUTPUTS] {
        let mut out = [0.0f32; OUTPUTS];
        for (i, p) in points.iter().enumerate() {
            if let Some((c, w)) = p {
                out[2 * i] = *c as f32 / CORE_SCALE;
                out[2 * i + 1] = *w as f32 / WAY_SCALE;
            }
        }
        out
    }

    /// Trains with the paper's masked loss.
    pub fn train(&mut self, x: &Matrix, y: &Matrix, config: TrainerConfig) -> TrainReport {
        Trainer::new(config).fit(&mut self.mlp, x, y, &MaskedRelativeMse::default())
    }

    /// Predicts the B-points for a service given its counters and the
    /// slowdown OSML is willing to impose on it.
    pub fn predict(&self, sample: &CounterSample, qos_slowdown: f64) -> BPoints {
        let out = self.mlp.forward(&features::model_b_input(sample, qos_slowdown));
        self.decode(&out)
    }

    /// Decodes one raw output row — shared by the scalar and batched paths
    /// so they are bit-identical by construction.
    fn decode(&self, out: &[f32]) -> BPoints {
        let clamp = |v: f32, scale: f32, max: usize| -> usize {
            ((v * scale).round() as i64).clamp(0, max as i64) as usize
        };
        let mk = |i: usize, policy: DeprivePolicy| BPoint {
            policy,
            cores: clamp(out[2 * i], CORE_SCALE, self.max_cores),
            ways: clamp(out[2 * i + 1], WAY_SCALE, self.max_ways),
        };
        BPoints {
            points: [
                mk(0, DeprivePolicy::Balanced),
                mk(1, DeprivePolicy::CoresDominated),
                mk(2, DeprivePolicy::WaysDominated),
            ],
        }
    }

    /// Batched [`ModelB::predict`]: one fused forward pass over `inputs`
    /// (one [`features::model_b_input`] row per candidate), decoding row `i`
    /// into `out[i]`. Bit-identical to calling `predict` per row at any
    /// batch size; the scratch matrices are reused across calls.
    pub fn predict_batch_into(
        &self,
        inputs: &Matrix,
        scratch_a: &mut Matrix,
        scratch_b: &mut Matrix,
        out: &mut Vec<BPoints>,
    ) {
        out.clear();
        if inputs.rows() == 0 {
            return;
        }
        let raw = self.mlp.forward_batch_into(inputs, scratch_a, scratch_b);
        out.extend((0..raw.rows()).map(|r| self.decode(raw.row(r))));
    }

    /// Read access to the underlying network (for persistence).
    pub fn mlp(&self) -> &Mlp {
        &self.mlp
    }
}

/// **Model-B′**: the shadow of Model-B (§IV-B) — given a service's counters
/// and a *proposed* deprivation `(cores, ways)`, predicts the QoS slowdown
/// it would suffer. Algorithm 4 uses it to price LLC sharing with
/// neighbours.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelBPrime {
    mlp: Mlp,
}

impl ModelBPrime {
    /// Creates an untrained Model-B′.
    pub fn new(seed: u64) -> Self {
        ModelBPrime {
            mlp: Mlp::new(&MlpConfig::paper_mlp(features::MODEL_B_PRIME_INPUTS, 1, seed)),
        }
    }

    /// Trains with the paper's masked loss (labels are slowdown fractions;
    /// impossible deprivations are labelled 0).
    pub fn train(&mut self, x: &Matrix, y: &Matrix, config: TrainerConfig) -> TrainReport {
        Trainer::new(config).fit(&mut self.mlp, x, y, &MaskedRelativeMse::default())
    }

    /// Predicted QoS slowdown (fraction, ≥ 0) if `(cores_taken, ways_taken)`
    /// are deprived from the sampled service.
    pub fn predict(&self, sample: &CounterSample, cores_taken: usize, ways_taken: usize) -> f64 {
        let out = self.mlp.forward(&features::model_b_prime_input(sample, cores_taken, ways_taken));
        f64::from(out[0]).max(0.0)
    }

    /// Batched [`ModelBPrime::predict`]: one fused forward pass over
    /// `inputs` (one [`features::model_b_prime_input`] row per priced
    /// proposal), writing the slowdown for row `i` into `out[i]`.
    /// Bit-identical to calling `predict` per row at any batch size.
    pub fn predict_batch_into(
        &self,
        inputs: &Matrix,
        scratch_a: &mut Matrix,
        scratch_b: &mut Matrix,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        if inputs.rows() == 0 {
            return;
        }
        let raw = self.mlp.forward_batch_into(inputs, scratch_a, scratch_b);
        out.extend((0..raw.rows()).map(|r| f64::from(raw.row(r)[0]).max(0.0)));
    }

    /// Read access to the underlying network (for persistence).
    pub fn mlp(&self) -> &Mlp {
        &self.mlp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(cores: usize, ways: usize) -> CounterSample {
        CounterSample {
            ipc: 1.2,
            llc_misses_per_sec: 4.0e7,
            mbl_gbps: 6.0,
            cpu_usage: cores as f64 * 0.6,
            memory_util_gb: 3.0,
            virt_memory_gb: 4.8,
            res_memory_gb: 3.0,
            llc_occupancy_mb: ways as f64 * 2.25,
            allocated_cores: cores,
            allocated_ways: ways,
            frequency_ghz: 2.3,
            response_latency_ms: 5.0,
        }
    }

    #[test]
    fn label_encoding_zeroes_nonexistent_cases() {
        let y = ModelB::encode_label([Some((2, 2)), None, Some((0, 4))]);
        assert!(y[0] > 0.0 && y[1] > 0.0);
        assert_eq!(y[2], 0.0);
        assert_eq!(y[3], 0.0);
        assert_eq!(y[4], 0.0);
        assert!(y[5] > 0.0);
    }

    #[test]
    fn untrained_predictions_are_in_range() {
        let model = ModelB::new(36, 20, 1);
        let points = model.predict(&sample(10, 10), 0.05);
        for p in points.iter() {
            assert!(p.cores <= 36);
            assert!(p.ways <= 20);
        }
        assert_eq!(points.points[0].policy, DeprivePolicy::Balanced);
        assert_eq!(points.points[1].policy, DeprivePolicy::CoresDominated);
        assert_eq!(points.points[2].policy, DeprivePolicy::WaysDominated);
    }

    #[test]
    fn model_b_learns_slowdown_proportional_trades() {
        // Synthetic rule: with slowdown budget s, a service on (c, w) can
        // give up floor(c * s * 5) cores / floor(w * s * 5) ways.
        let mut model = ModelB::new(36, 20, 5);
        let n = 800;
        let mut x = Matrix::zeros(n, features::MODEL_B_INPUTS);
        let mut y = Matrix::zeros(n, OUTPUTS);
        for i in 0..n {
            let c = 6 + i % 12;
            let w = 4 + i % 10;
            let s = 0.05 * ((i % 4) as f64 + 1.0); // 5..20%
            let give_c = ((c as f64) * s * 5.0).floor() as usize;
            let give_w = ((w as f64) * s * 5.0).floor() as usize;
            x.row_mut(i).copy_from_slice(&features::model_b_input(&sample(c, w), s));
            y.row_mut(i).copy_from_slice(&ModelB::encode_label([
                Some((give_c, give_w)),
                Some((give_c + 1, give_w.saturating_sub(1))),
                Some((give_c.saturating_sub(1), give_w + 1)),
            ]));
        }
        let report = model.train(
            &x,
            &y,
            TrainerConfig { epochs: 150, batch_size: 64, ..TrainerConfig::default() },
        );
        assert!(report.train_metrics.rmse < 0.05, "rmse {}", report.train_metrics.rmse);
        // Bigger budget must free at least as many resources.
        let small = model.predict(&sample(12, 10), 0.05);
        let large = model.predict(&sample(12, 10), 0.20);
        assert!(
            large.most_generous().total() >= small.most_generous().total(),
            "{large:?} vs {small:?}"
        );
    }

    #[test]
    fn model_b_prime_learns_a_slowdown_surface() {
        // Synthetic rule: slowdown = 2% per core + 1% per way taken.
        let mut model = ModelBPrime::new(9);
        let n = 600;
        let mut x = Matrix::zeros(n, features::MODEL_B_PRIME_INPUTS);
        let mut y = Matrix::zeros(n, 1);
        for i in 0..n {
            let c = i % 6;
            let w = (i / 6) % 6;
            x.row_mut(i).copy_from_slice(&features::model_b_prime_input(&sample(12, 12), c, w));
            y.row_mut(i)[0] = 0.02 * c as f32 + 0.01 * w as f32;
        }
        let report = model.train(
            &x,
            &y,
            TrainerConfig { epochs: 200, batch_size: 64, ..TrainerConfig::default() },
        );
        assert!(report.train_metrics.rmse < 0.01, "rmse {}", report.train_metrics.rmse);
        let cheap = model.predict(&sample(12, 12), 0, 1);
        let costly = model.predict(&sample(12, 12), 4, 4);
        assert!(costly > cheap, "taking more must cost more: {cheap} vs {costly}");
    }

    #[test]
    fn batched_b_points_match_scalar_at_any_batch_size() {
        let model = ModelB::new(36, 20, 13);
        let mut scratch_a = Matrix::zeros(0, 0);
        let mut scratch_b = Matrix::zeros(0, 0);
        let mut out = Vec::new();
        for n in [1usize, 2, 5, 29] {
            let cases: Vec<(CounterSample, f64)> = (0..n)
                .map(|i| (sample(1 + i % 14, 1 + i % 11), 0.05 * (1 + i % 4) as f64))
                .collect();
            let mut inputs = Matrix::zeros(n, features::MODEL_B_INPUTS);
            for (r, (s, slow)) in cases.iter().enumerate() {
                inputs.row_mut(r).copy_from_slice(&features::model_b_input(s, *slow));
            }
            model.predict_batch_into(&inputs, &mut scratch_a, &mut scratch_b, &mut out);
            let scalar: Vec<BPoints> =
                cases.iter().map(|(s, slow)| model.predict(s, *slow)).collect();
            assert_eq!(out, scalar, "batch size {n}");
        }
    }

    #[test]
    fn batched_prices_match_scalar_at_any_batch_size() {
        let model = ModelBPrime::new(17);
        let mut scratch_a = Matrix::zeros(0, 0);
        let mut scratch_b = Matrix::zeros(0, 0);
        let mut out = Vec::new();
        for n in [1usize, 3, 8, 21] {
            let cases: Vec<(CounterSample, usize, usize)> =
                (0..n).map(|i| (sample(2 + i % 10, 2 + i % 8), i % 5, (i / 2) % 5)).collect();
            let mut inputs = Matrix::zeros(n, features::MODEL_B_PRIME_INPUTS);
            for (r, (s, c, w)) in cases.iter().enumerate() {
                inputs.row_mut(r).copy_from_slice(&features::model_b_prime_input(s, *c, *w));
            }
            model.predict_batch_into(&inputs, &mut scratch_a, &mut scratch_b, &mut out);
            let scalar: Vec<f64> = cases.iter().map(|(s, c, w)| model.predict(s, *c, *w)).collect();
            assert_eq!(out, scalar, "batch size {n}");
        }
    }

    #[test]
    fn most_generous_picks_max_total() {
        let points = BPoints {
            points: [
                BPoint { policy: DeprivePolicy::Balanced, cores: 1, ways: 1 },
                BPoint { policy: DeprivePolicy::CoresDominated, cores: 4, ways: 0 },
                BPoint { policy: DeprivePolicy::WaysDominated, cores: 0, ways: 3 },
            ],
        };
        assert_eq!(points.most_generous().cores, 4);
    }

    #[test]
    fn serde_round_trip() {
        let b = ModelB::new(36, 20, 2);
        let bp = ModelBPrime::new(2);
        let b2: ModelB = serde_json::from_str(&serde_json::to_string(&b).unwrap()).unwrap();
        let bp2: ModelBPrime = serde_json::from_str(&serde_json::to_string(&bp).unwrap()).unwrap();
        assert_eq!(b, b2);
        assert_eq!(bp, bp2);
    }
}

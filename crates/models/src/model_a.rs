use crate::features;
use osml_ml::loss::Mse;
use osml_ml::{Matrix, Mlp, MlpConfig, TrainReport, Trainer, TrainerConfig};
use osml_platform::CounterSample;
use osml_workloads::oaa::AllocPoint;
use serde::{Deserialize, Serialize};

/// Number of regression heads: OAA cores, OAA ways, OAA bandwidth, RCliff
/// cores, RCliff ways.
pub const OUTPUTS: usize = 5;

/// Normalization scales for the five output heads (cores, ways, GB/s, cores,
/// ways).
const OUTPUT_SCALES: [f32; OUTPUTS] = [36.0, 20.0, 50.0, 36.0, 20.0];

/// Model-A's prediction for one service (§IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OaaPrediction {
    /// The Optimal Allocation Area: the `<cores, ways>` OSML should grant.
    pub oaa: AllocPoint,
    /// Bandwidth the service needs at its OAA, in tenths of GB/s (stored as
    /// integer-scaled to keep the type hashable; see
    /// [`OaaPrediction::oaa_bandwidth_gbps`]).
    bw_decigbps: u32,
    /// The Resource Cliff: the minimal allocation below which latency
    /// explodes.
    pub rcliff: AllocPoint,
}

impl OaaPrediction {
    /// Builds a prediction (bandwidth in GB/s).
    pub fn new(oaa: AllocPoint, oaa_bandwidth_gbps: f64, rcliff: AllocPoint) -> Self {
        OaaPrediction {
            oaa,
            bw_decigbps: (oaa_bandwidth_gbps.max(0.0) * 10.0).round() as u32,
            rcliff,
        }
    }

    /// Bandwidth the service needs at its OAA, GB/s.
    pub fn oaa_bandwidth_gbps(&self) -> f64 {
        f64::from(self.bw_decigbps) / 10.0
    }
}

/// **Model-A: finding the OAA.**
///
/// A 3-hidden-layer MLP (40 neurons per layer, ReLU, MSE loss, Adam) that
/// maps one normalized [`CounterSample`] to the service's OAA
/// (`<cores, ways>`), OAA bandwidth, and RCliff (`<cores, ways>`).
///
/// The network regresses normalized resource counts; [`ModelA::predict`]
/// rounds and clamps them back to valid machine coordinates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelA {
    mlp: Mlp,
    max_cores: usize,
    max_ways: usize,
}

impl ModelA {
    /// Creates an untrained Model-A for a machine with the given geometry.
    pub fn new(max_cores: usize, max_ways: usize, seed: u64) -> Self {
        ModelA {
            mlp: Mlp::new(&MlpConfig::paper_mlp(features::BASE_FEATURES, OUTPUTS, seed)),
            max_cores,
            max_ways,
        }
    }

    /// Encodes a label row: `(oaa, oaa_bw, rcliff)` → normalized head values.
    pub fn encode_label(oaa: AllocPoint, oaa_bw_gbps: f64, rcliff: AllocPoint) -> [f32; OUTPUTS] {
        [
            oaa.cores as f32 / OUTPUT_SCALES[0],
            oaa.ways as f32 / OUTPUT_SCALES[1],
            oaa_bw_gbps as f32 / OUTPUT_SCALES[2],
            rcliff.cores as f32 / OUTPUT_SCALES[3],
            rcliff.ways as f32 / OUTPUT_SCALES[4],
        ]
    }

    /// Trains on a dataset of normalized inputs (`x`: one
    /// [`features::model_a_input`] per row) and encoded labels (`y`: one
    /// [`ModelA::encode_label`] per row) with the paper's MSE loss.
    pub fn train(&mut self, x: &Matrix, y: &Matrix, config: TrainerConfig) -> TrainReport {
        Trainer::new(config).fit(&mut self.mlp, x, y, &Mse)
    }

    /// Predicts OAA, OAA bandwidth, and RCliff from one counter sample.
    pub fn predict(&self, sample: &CounterSample) -> OaaPrediction {
        let out = self.mlp.forward(&features::model_a_input(sample));
        self.decode(&out)
    }

    /// Decodes one raw output row into machine coordinates — shared by the
    /// scalar and batched paths so they are bit-identical by construction.
    fn decode(&self, out: &[f32]) -> OaaPrediction {
        let clamp = |v: f32, scale: f32, max: usize| -> usize {
            ((v * scale).round() as i64).clamp(1, max as i64) as usize
        };
        let oaa = AllocPoint::new(
            clamp(out[0], OUTPUT_SCALES[0], self.max_cores),
            clamp(out[1], OUTPUT_SCALES[1], self.max_ways),
        );
        let rcliff = AllocPoint::new(
            clamp(out[3], OUTPUT_SCALES[3], self.max_cores),
            clamp(out[4], OUTPUT_SCALES[4], self.max_ways),
        );
        let bw = (out[2] * OUTPUT_SCALES[2]).max(0.0) as f64;
        OaaPrediction::new(oaa, bw, rcliff)
    }

    /// Batched [`ModelA::predict`]: one fused forward pass over `inputs`
    /// (one [`features::model_a_input`] row per service), decoding row `i`
    /// into `out[i]`. `scratch_a`/`scratch_b` are layer ping-pong buffers
    /// reused across calls; `out` is cleared and refilled. Bit-identical to
    /// calling `predict` per row at any batch size.
    pub fn predict_batch_into(
        &self,
        inputs: &Matrix,
        scratch_a: &mut Matrix,
        scratch_b: &mut Matrix,
        out: &mut Vec<OaaPrediction>,
    ) {
        out.clear();
        if inputs.rows() == 0 {
            return;
        }
        let raw = self.mlp.forward_batch_into(inputs, scratch_a, scratch_b);
        out.extend((0..raw.rows()).map(|r| self.decode(raw.row(r))));
    }

    /// Read access to the underlying network (for persistence).
    pub fn mlp(&self) -> &Mlp {
        &self.mlp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(cores: usize, ways: usize, misses: f64) -> CounterSample {
        CounterSample {
            ipc: 1.1,
            llc_misses_per_sec: misses,
            mbl_gbps: misses * 160.0 / 1e9,
            cpu_usage: cores as f64 * 0.8,
            memory_util_gb: 4.0,
            virt_memory_gb: 6.4,
            res_memory_gb: 4.0,
            llc_occupancy_mb: ways as f64 * 2.25,
            allocated_cores: cores,
            allocated_ways: ways,
            frequency_ghz: 2.3,
            response_latency_ms: 8.0,
        }
    }

    #[test]
    fn label_encoding_round_trips_through_predict_scales() {
        let label = ModelA::encode_label(AllocPoint::new(9, 11), 12.5, AllocPoint::new(7, 9));
        assert!((label[0] * 36.0 - 9.0).abs() < 1e-4);
        assert!((label[1] * 20.0 - 11.0).abs() < 1e-4);
        assert!((label[2] * 50.0 - 12.5).abs() < 1e-4);
        assert!((label[3] * 36.0 - 7.0).abs() < 1e-4);
        assert!((label[4] * 20.0 - 9.0).abs() < 1e-4);
    }

    #[test]
    fn untrained_predictions_are_valid_coordinates() {
        let model = ModelA::new(36, 20, 1);
        let p = model.predict(&sample(6, 10, 5.0e7));
        assert!((1..=36).contains(&p.oaa.cores));
        assert!((1..=20).contains(&p.oaa.ways));
        assert!((1..=36).contains(&p.rcliff.cores));
        assert!((1..=20).contains(&p.rcliff.ways));
        assert!(p.oaa_bandwidth_gbps() >= 0.0);
    }

    #[test]
    fn model_a_learns_a_synthetic_oaa_mapping() {
        // Synthetic ground truth: the busier the service (more misses), the
        // larger its OAA. The model must recover it from counters alone.
        let mut model = ModelA::new(36, 20, 7);
        let n = 600;
        let mut x = Matrix::zeros(n, features::BASE_FEATURES);
        let mut y = Matrix::zeros(n, OUTPUTS);
        for i in 0..n {
            let level = (i % 10) as f64; // 0..9 intensity levels
            let s = sample(4 + i % 8, 2 + i % 12, 1.0e7 * (1.0 + level));
            let oaa = AllocPoint::new(4 + level as usize * 2, 3 + level as usize);
            let cliff = AllocPoint::new(3 + level as usize * 2, 2 + level as usize);
            x.row_mut(i).copy_from_slice(&features::model_a_input(&s));
            y.row_mut(i).copy_from_slice(&ModelA::encode_label(oaa, 2.0 * level, cliff));
        }
        let report = model.train(
            &x,
            &y,
            TrainerConfig { epochs: 120, batch_size: 64, ..TrainerConfig::default() },
        );
        assert!(
            report.train_metrics.rmse < 0.05,
            "model-a failed to fit synthetic OAA: rmse {}",
            report.train_metrics.rmse
        );
        // Spot-check: intensity level 9 should predict a big OAA, level 0 a
        // small one.
        let hot = model.predict(&sample(5, 5, 1.0e8));
        let cold = model.predict(&sample(5, 5, 1.0e7));
        assert!(hot.oaa.cores > cold.oaa.cores, "{hot:?} vs {cold:?}");
    }

    #[test]
    fn batched_predictions_match_scalar_at_any_batch_size() {
        let model = ModelA::new(36, 20, 11);
        let mut scratch_a = Matrix::zeros(0, 0);
        let mut scratch_b = Matrix::zeros(0, 0);
        let mut out = Vec::new();
        for n in [1usize, 2, 7, 33] {
            let samples: Vec<CounterSample> =
                (0..n).map(|i| sample(1 + i % 12, 1 + i % 9, 1.0e7 * (1.0 + i as f64))).collect();
            let mut inputs = Matrix::zeros(n, features::BASE_FEATURES);
            for (r, s) in samples.iter().enumerate() {
                inputs.row_mut(r).copy_from_slice(&features::model_a_input(s));
            }
            model.predict_batch_into(&inputs, &mut scratch_a, &mut scratch_b, &mut out);
            let scalar: Vec<OaaPrediction> = samples.iter().map(|s| model.predict(s)).collect();
            assert_eq!(out, scalar, "batch size {n}");
        }
    }

    #[test]
    fn serde_round_trip() {
        let model = ModelA::new(36, 20, 3);
        let json = serde_json::to_string(&model).unwrap();
        let back: ModelA = serde_json::from_str(&json).unwrap();
        assert_eq!(back, model);
    }

    #[test]
    fn bandwidth_stores_at_deci_resolution() {
        let p = OaaPrediction::new(AllocPoint::new(1, 1), 12.34, AllocPoint::new(1, 1));
        assert!((p.oaa_bandwidth_gbps() - 12.3).abs() < 1e-9);
    }
}

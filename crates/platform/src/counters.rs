use serde::{Deserialize, Serialize};

/// One performance-counter observation of a running service, matching the
/// features of Table 3 in the paper.
///
/// On the paper's testbed these come from `pqos` (cache occupancy, local
/// memory bandwidth) and the PMU (IPC, LLC misses); in this reproduction the
/// analytic simulator synthesizes them from the same underlying quantities.
/// The field order mirrors Table 3; `response_latency_ms` is the extra
/// feature used by Model-C.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Instructions per clock, averaged over the service's cores.
    pub ipc: f64,
    /// LLC misses per second.
    pub llc_misses_per_sec: f64,
    /// Local memory bandwidth consumed (MBL), GB/s.
    pub mbl_gbps: f64,
    /// Sum of each allocated core's utilization (1.0 = one busy core).
    pub cpu_usage: f64,
    /// Memory footprint of the service, GB.
    pub memory_util_gb: f64,
    /// Virtual memory in use, GB.
    pub virt_memory_gb: f64,
    /// Resident memory in use, GB.
    pub res_memory_gb: f64,
    /// LLC footprint (occupancy) of the service, MB.
    pub llc_occupancy_mb: f64,
    /// Number of allocated logical cores.
    pub allocated_cores: usize,
    /// Number of allocated LLC ways.
    pub allocated_ways: usize,
    /// Core frequency at runtime, GHz.
    pub frequency_ghz: f64,
    /// Average response latency over the sampling window, ms (Model-C's
    /// extra input).
    pub response_latency_ms: f64,
}

impl CounterSample {
    /// Serializes the 11 Model-A features (Table 3, rows used by models A/B)
    /// into a fixed-order vector for ML input.
    pub fn model_a_features(&self) -> [f64; 11] {
        [
            self.ipc,
            self.llc_misses_per_sec,
            self.mbl_gbps,
            self.cpu_usage,
            self.memory_util_gb,
            self.virt_memory_gb,
            self.res_memory_gb,
            self.llc_occupancy_mb,
            self.allocated_cores as f64,
            self.allocated_ways as f64,
            self.frequency_ghz,
        ]
    }

    /// Whether every counter in the sample is finite and non-negative.
    ///
    /// Real `pqos`/PMU reads occasionally return garbage under contention
    /// (torn MSR reads, wrapped counters); the fault-injection layer models
    /// that as NaN/negative fields. Consumers must validate before feeding
    /// a sample to a model — a single NaN poisons every downstream matmul.
    pub fn is_valid(&self) -> bool {
        let finite_nonneg = |v: f64| v.is_finite() && v >= 0.0;
        finite_nonneg(self.ipc)
            && finite_nonneg(self.llc_misses_per_sec)
            && finite_nonneg(self.mbl_gbps)
            && finite_nonneg(self.cpu_usage)
            && finite_nonneg(self.memory_util_gb)
            && finite_nonneg(self.virt_memory_gb)
            && finite_nonneg(self.res_memory_gb)
            && finite_nonneg(self.llc_occupancy_mb)
            && finite_nonneg(self.frequency_ghz)
            && finite_nonneg(self.response_latency_ms)
    }

    /// Names of the features in [`CounterSample::model_a_features`] order.
    pub fn feature_names() -> [&'static str; 11] {
        [
            "IPC",
            "Cache Misses",
            "MBL",
            "CPU Usage",
            "Memory Util",
            "Virt. Memory",
            "Res. Memory",
            "LLC Occupied",
            "Allocated Core",
            "Allocated Cache",
            "Core Frequency",
        ]
    }
}

/// QoS-facing latency statistics for one service over a sampling window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Mean response latency, ms.
    pub mean_ms: f64,
    /// 95th-percentile tail latency, ms — the paper's QoS metric.
    pub p95_ms: f64,
    /// Achieved throughput, requests per second.
    pub achieved_rps: f64,
    /// Offered load, requests per second.
    pub offered_rps: f64,
    /// The service's QoS target on `p95_ms`, ms.
    pub qos_target_ms: f64,
}

impl LatencyStats {
    /// Whether the service currently violates its QoS target.
    pub fn violates_qos(&self) -> bool {
        self.p95_ms > self.qos_target_ms
    }

    /// QoS slack as a fraction of the target: positive when under the
    /// target, negative when violating. A slack of 0.3 means the service runs
    /// at 70 % of its allowed tail latency.
    pub fn qos_slack(&self) -> f64 {
        1.0 - self.p95_ms / self.qos_target_ms
    }

    /// QoS slowdown relative to the target, as used by Model-B labels:
    /// `p95 / target − 1`, clamped at 0 from below. A value of 0.05 means the
    /// service is 5 % over its tail-latency budget.
    pub fn qos_slowdown(&self) -> f64 {
        (self.p95_ms / self.qos_target_ms - 1.0).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CounterSample {
        CounterSample {
            ipc: 1.2,
            llc_misses_per_sec: 3.0e6,
            mbl_gbps: 4.5,
            cpu_usage: 5.5,
            memory_util_gb: 2.0,
            virt_memory_gb: 3.0,
            res_memory_gb: 1.8,
            llc_occupancy_mb: 12.0,
            allocated_cores: 6,
            allocated_ways: 10,
            frequency_ghz: 2.3,
            response_latency_ms: 8.0,
        }
    }

    #[test]
    fn feature_vector_is_in_table3_order() {
        let f = sample().model_a_features();
        assert_eq!(f.len(), 11);
        assert!((f[0] - 1.2).abs() < 1e-12); // IPC first
        assert!((f[8] - 6.0).abs() < 1e-12); // allocated cores
        assert!((f[9] - 10.0).abs() < 1e-12); // allocated ways
        assert!((f[10] - 2.3).abs() < 1e-12); // frequency last
        assert_eq!(CounterSample::feature_names().len(), 11);
    }

    #[test]
    fn qos_predicates() {
        let ok = LatencyStats {
            mean_ms: 3.0,
            p95_ms: 7.0,
            achieved_rps: 2200.0,
            offered_rps: 2200.0,
            qos_target_ms: 10.0,
        };
        assert!(!ok.violates_qos());
        assert!((ok.qos_slack() - 0.3).abs() < 1e-12);
        assert!((ok.qos_slowdown()).abs() < 1e-12);

        let bad = LatencyStats { p95_ms: 15.0, ..ok };
        assert!(bad.violates_qos());
        assert!((bad.qos_slowdown() - 0.5).abs() < 1e-12);
        assert!(bad.qos_slack() < 0.0);
    }

    #[test]
    fn validity_rejects_nan_and_negative_counters() {
        assert!(sample().is_valid());
        let nan = CounterSample { ipc: f64::NAN, ..sample() };
        assert!(!nan.is_valid());
        let inf = CounterSample { mbl_gbps: f64::INFINITY, ..sample() };
        assert!(!inf.is_valid());
        let neg = CounterSample { response_latency_ms: -1.0, ..sample() };
        assert!(!neg.is_valid());
        let neg_freq = CounterSample { frequency_ghz: -2.3, ..sample() };
        assert!(!neg_freq.is_valid());
    }

    #[test]
    fn counter_sample_round_trips_through_serde() {
        let s = sample();
        let json = serde_json::to_string(&s).unwrap();
        let back: CounterSample = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}

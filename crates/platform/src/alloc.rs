use crate::{MbaThrottle, PlatformError, Topology, WayMask};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A set of logical cores, as passed to `taskset`.
///
/// Backed by a 64-bit bitmap, so machines of up to 64 hardware threads are
/// supported (the paper's testbed has 36).
///
/// # Example
///
/// ```
/// use osml_platform::CoreSet;
///
/// let mut s = CoreSet::first_n(4);
/// s.insert(10);
/// assert_eq!(s.count(), 5);
/// assert!(s.contains(10));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 10]);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CoreSet(u64);

impl CoreSet {
    /// The empty core set.
    pub fn new() -> Self {
        CoreSet(0)
    }

    /// A set containing logical cores `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn first_n(n: usize) -> Self {
        assert!(n <= 64, "CoreSet supports at most 64 cores");
        if n == 64 {
            CoreSet(u64::MAX)
        } else {
            CoreSet((1u64 << n) - 1)
        }
    }

    /// A set containing every logical core of `topo`.
    pub fn all(topo: &Topology) -> Self {
        CoreSet::first_n(topo.logical_cores())
    }

    /// Builds a set from an iterator of core indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is ≥ 64.
    pub fn from_cores<I: IntoIterator<Item = usize>>(cores: I) -> Self {
        let mut s = CoreSet::new();
        for c in cores {
            s.insert(c);
        }
        s
    }

    /// Raw bitmap.
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Number of cores in the set.
    pub fn count(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether `core` is in the set.
    pub fn contains(self, core: usize) -> bool {
        core < 64 && self.0 & (1u64 << core) != 0
    }

    /// Adds `core` to the set.
    ///
    /// # Panics
    ///
    /// Panics if `core ≥ 64`.
    pub fn insert(&mut self, core: usize) {
        assert!(core < 64, "core {core} exceeds CoreSet capacity");
        self.0 |= 1u64 << core;
    }

    /// Removes `core` from the set.
    pub fn remove(&mut self, core: usize) {
        if core < 64 {
            self.0 &= !(1u64 << core);
        }
    }

    /// Set union.
    pub fn union(self, other: CoreSet) -> CoreSet {
        CoreSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersection(self, other: CoreSet) -> CoreSet {
        CoreSet(self.0 & other.0)
    }

    /// Cores in `self` but not in `other`.
    pub fn difference(self, other: CoreSet) -> CoreSet {
        CoreSet(self.0 & !other.0)
    }

    /// Whether any core is shared with `other`.
    pub fn overlaps(self, other: CoreSet) -> bool {
        self.0 & other.0 != 0
    }

    /// Iterates over core indices in ascending order.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        (0..64).filter(move |&c| self.contains(c))
    }

    /// Checks every core is within `topo` and the set is non-empty.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::EmptyCoreSet`] for an empty set and
    /// [`PlatformError::CoreOutOfRange`] for a core beyond the machine.
    pub fn validate(self, topo: &Topology) -> Result<(), PlatformError> {
        if self.is_empty() {
            return Err(PlatformError::EmptyCoreSet);
        }
        let total = topo.logical_cores();
        match self.iter().find(|&c| c >= total) {
            Some(core) => Err(PlatformError::CoreOutOfRange { core, total }),
            None => Ok(()),
        }
    }

    /// Effective compute capacity of this core set on `topo`, in units of
    /// "full physical cores".
    ///
    /// A physical core with one allocated hardware thread contributes 1.0;
    /// with both HT siblings allocated it contributes [`HT_PAIR_YIELD`]
    /// (1.3), reflecting the ~30 % throughput gain SMT typically provides.
    /// This is the quantity the workload models use for capacity.
    pub fn effective_cores(self, topo: &Topology) -> f64 {
        let phys = topo.physical_cores();
        let mut per_phys = vec![0u8; phys];
        for c in self.iter().take_while(|&c| c < topo.logical_cores()) {
            per_phys[topo.physical_of(c)] += 1;
        }
        per_phys
            .iter()
            .map(|&n| match n {
                0 => 0.0,
                1 => 1.0,
                _ => HT_PAIR_YIELD,
            })
            .sum()
    }

    /// Picks `n` cores from this set, preferring to fill distinct physical
    /// cores before doubling up on HT siblings (how a NUMA-aware operator
    /// would pin a latency-critical service). Returns `None` if the set has
    /// fewer than `n` cores.
    pub fn pick_spread(self, topo: &Topology, n: usize) -> Option<CoreSet> {
        if self.count() < n {
            return None;
        }
        let phys = topo.physical_cores();
        let mut taken = CoreSet::new();
        let mut used_phys = vec![false; phys];
        // First pass: one thread per physical core.
        for c in self.iter() {
            if taken.count() == n {
                break;
            }
            let p = topo.physical_of(c);
            if !used_phys[p] {
                used_phys[p] = true;
                taken.insert(c);
            }
        }
        // Second pass: fill HT siblings.
        for c in self.iter() {
            if taken.count() == n {
                break;
            }
            if !taken.contains(c) {
                taken.insert(c);
            }
        }
        Some(taken)
    }
}

/// Combined throughput of two hardware threads sharing one physical core,
/// relative to a single thread running alone on it.
pub const HT_PAIR_YIELD: f64 = 1.3;

impl FromIterator<usize> for CoreSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        CoreSet::from_cores(iter)
    }
}

impl Extend<usize> for CoreSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for c in iter {
            self.insert(c);
        }
    }
}

impl fmt::Display for CoreSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cores{{")?;
        let mut first = true;
        for c in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

/// One service's full resource vector: `<cores, LLC ways, bandwidth>`.
///
/// This is the unit OSML's central controller manipulates (Algorithms 1–4 of
/// the paper) and the unit the [`crate::Substrate`] trait accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Allocation {
    /// Logical cores the service's threads are pinned to.
    pub cores: CoreSet,
    /// LLC ways in the service's CAT class of service.
    pub ways: WayMask,
    /// MBA bandwidth cap.
    pub mba: MbaThrottle,
}

impl Allocation {
    /// Builds an allocation from its three components.
    pub fn new(cores: CoreSet, ways: WayMask, mba: MbaThrottle) -> Self {
        Allocation { cores, ways, mba }
    }

    /// The whole machine: every core, every way, unthrottled. This is what a
    /// service gets when it runs alone (the paper's solo baseline).
    pub fn whole_machine(topo: &Topology) -> Self {
        Allocation {
            cores: CoreSet::all(topo),
            ways: WayMask::all(topo),
            mba: MbaThrottle::unthrottled(),
        }
    }

    /// Validates all components against `topo`.
    ///
    /// # Errors
    ///
    /// Propagates the first component error (see [`CoreSet::validate`] and
    /// [`WayMask::validate`]).
    pub fn validate(&self, topo: &Topology) -> Result<(), PlatformError> {
        self.cores.validate(topo)?;
        self.ways.validate(topo)?;
        Ok(())
    }

    /// LLC capacity of the allocation on `topo`, in MB.
    pub fn cache_mb(&self, topo: &Topology) -> f64 {
        self.ways.capacity_mb(topo)
    }

    /// Bandwidth cap of the allocation on `topo`, in GB/s.
    pub fn bandwidth_cap_gbps(&self, topo: &Topology) -> f64 {
        self.mba.fraction() * topo.memory_bw_gbps()
    }
}

impl fmt::Display for Allocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{} cores, {} ways, {}>", self.cores.count(), self.ways.count(), self.mba)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::xeon_e5_2697_v4()
    }

    #[test]
    fn set_operations() {
        let a = CoreSet::from_cores([0, 1, 2, 3]);
        let b = CoreSet::from_cores([2, 3, 4, 5]);
        assert_eq!(a.union(b).count(), 6);
        assert_eq!(a.intersection(b).count(), 2);
        assert_eq!(a.difference(b), CoreSet::from_cores([0, 1]));
        assert!(a.overlaps(b));
        assert!(!a.overlaps(CoreSet::from_cores([10])));
    }

    #[test]
    fn first_n_64_is_full() {
        assert_eq!(CoreSet::first_n(64).count(), 64);
        assert_eq!(CoreSet::first_n(0).count(), 0);
    }

    #[test]
    fn validate_rejects_empty_and_out_of_range() {
        let t = topo();
        assert_eq!(CoreSet::new().validate(&t), Err(PlatformError::EmptyCoreSet));
        let s = CoreSet::from_cores([36]);
        assert!(matches!(s.validate(&t), Err(PlatformError::CoreOutOfRange { core: 36, .. })));
        assert!(CoreSet::first_n(36).validate(&t).is_ok());
    }

    #[test]
    fn effective_cores_counts_ht_pairs_once() {
        let t = topo();
        // Cores 0..6 are on six distinct physical cores.
        assert!((CoreSet::first_n(6).effective_cores(&t) - 6.0).abs() < 1e-12);
        // Core 0 and its sibling 18 share a physical core.
        let pair = CoreSet::from_cores([0, 18]);
        assert!((pair.effective_cores(&t) - HT_PAIR_YIELD).abs() < 1e-12);
        // All 36 logical cores => 18 * 1.3.
        let all = CoreSet::all(&t);
        assert!((all.effective_cores(&t) - 18.0 * HT_PAIR_YIELD).abs() < 1e-9);
    }

    #[test]
    fn pick_spread_prefers_distinct_physical_cores() {
        let t = topo();
        let picked = CoreSet::all(&t).pick_spread(&t, 6).unwrap();
        assert_eq!(picked.count(), 6);
        let phys: std::collections::HashSet<_> = picked.iter().map(|c| t.physical_of(c)).collect();
        assert_eq!(phys.len(), 6, "six cores should land on six physical cores");
    }

    #[test]
    fn pick_spread_doubles_up_only_when_forced() {
        let t = topo();
        let picked = CoreSet::all(&t).pick_spread(&t, 20).unwrap();
        assert_eq!(picked.count(), 20);
        // 18 physical cores, so exactly 2 must be HT doubles.
        assert!((picked.effective_cores(&t) - (16.0 + 2.0 * HT_PAIR_YIELD)).abs() < 1e-9);
    }

    #[test]
    fn pick_spread_returns_none_when_short() {
        let t = topo();
        assert!(CoreSet::first_n(3).pick_spread(&t, 4).is_none());
    }

    #[test]
    fn whole_machine_is_valid() {
        let t = topo();
        let a = Allocation::whole_machine(&t);
        assert!(a.validate(&t).is_ok());
        assert_eq!(a.cores.count(), 36);
        assert_eq!(a.ways.count(), 20);
        assert!((a.cache_mb(&t) - 45.0).abs() < 1e-12);
        assert!((a.bandwidth_cap_gbps(&t) - 76.8).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        let a =
            Allocation::new(CoreSet::first_n(2), WayMask::first_n(3), MbaThrottle::unthrottled());
        assert_eq!(a.to_string(), "<2 cores, 3 ways, mba 100%>");
        assert_eq!(CoreSet::from_cores([1, 5]).to_string(), "cores{1,5}");
    }

    #[test]
    fn from_iterator_and_extend() {
        let s: CoreSet = [3usize, 1, 2].into_iter().collect();
        assert_eq!(s.count(), 3);
        let mut s2 = CoreSet::new();
        s2.extend([7usize, 8]);
        assert!(s2.contains(7) && s2.contains(8));
    }
}

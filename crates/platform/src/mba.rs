use crate::PlatformError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An Intel MBA (Memory Bandwidth Allocation) throttle level.
///
/// MBA exposes per-class bandwidth caps in coarse steps; like the hardware we
/// accept levels from 10 % to 100 % in steps of 10. OSML programs one level
/// per co-located service, derived from the service's OAA bandwidth via the
/// paper's `BW_j / Σ BW_i` proportional rule (§V-B).
///
/// # Example
///
/// ```
/// use osml_platform::MbaThrottle;
///
/// let t = MbaThrottle::percent(50)?;
/// assert_eq!(t.as_percent(), 50);
/// assert!((t.fraction() - 0.5).abs() < 1e-12);
/// assert!(MbaThrottle::percent(55).is_err()); // not a multiple of 10
/// # Ok::<(), osml_platform::PlatformError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MbaThrottle(u8);

impl MbaThrottle {
    /// Builds a throttle from a percentage.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidThrottle`] unless `percent` is one of
    /// 10, 20, …, 100 — the levels real MBA hardware accepts.
    pub fn percent(percent: u8) -> Result<Self, PlatformError> {
        if percent == 0 || percent > 100 || !percent.is_multiple_of(10) {
            return Err(PlatformError::InvalidThrottle { percent });
        }
        Ok(MbaThrottle(percent))
    }

    /// No throttling (100 %).
    pub fn unthrottled() -> Self {
        MbaThrottle(100)
    }

    /// Picks the smallest hardware level that still grants `fraction` of the
    /// machine bandwidth (rounding *up* so the cap never starves the service
    /// below its requested share).
    ///
    /// Inputs are clamped to `[0.1, 1.0]`.
    pub fn covering_fraction(fraction: f64) -> Self {
        let pct = (fraction * 100.0).ceil().clamp(10.0, 100.0);
        let rounded = ((pct / 10.0).ceil() * 10.0) as u8;
        MbaThrottle(rounded.min(100))
    }

    /// Throttle level as a percentage in 10..=100.
    pub fn as_percent(self) -> u8 {
        self.0
    }

    /// Throttle level as a fraction in `(0, 1]`.
    pub fn fraction(self) -> f64 {
        f64::from(self.0) / 100.0
    }
}

impl Default for MbaThrottle {
    fn default() -> Self {
        MbaThrottle::unthrottled()
    }
}

impl fmt::Display for MbaThrottle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mba {}%", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_only_hardware_levels() {
        for p in (10..=100).step_by(10) {
            assert!(MbaThrottle::percent(p as u8).is_ok());
        }
        for p in [0u8, 5, 15, 101, 110, 255] {
            assert!(MbaThrottle::percent(p).is_err(), "{p}");
        }
    }

    #[test]
    fn covering_fraction_rounds_up() {
        assert_eq!(MbaThrottle::covering_fraction(0.31).as_percent(), 40);
        assert_eq!(MbaThrottle::covering_fraction(0.30).as_percent(), 30);
        assert_eq!(MbaThrottle::covering_fraction(0.01).as_percent(), 10);
        assert_eq!(MbaThrottle::covering_fraction(1.0).as_percent(), 100);
        assert_eq!(MbaThrottle::covering_fraction(2.0).as_percent(), 100);
    }

    #[test]
    fn default_is_unthrottled() {
        assert_eq!(MbaThrottle::default(), MbaThrottle::unthrottled());
        assert!((MbaThrottle::default().fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ordering_follows_percentage() {
        assert!(MbaThrottle::percent(20).unwrap() < MbaThrottle::percent(90).unwrap());
    }
}

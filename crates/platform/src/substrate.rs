use crate::{Allocation, CoreSet, CounterSample, LatencyStats, PlatformError, Topology, WayMask};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a running service instance on one server.
///
/// Ids are allocated by the substrate when a service is placed and stay
/// stable until the service is removed (or migrated away).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AppId(pub u64);

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app#{}", self.0)
    }
}

/// The machine interface every scheduler in this repository drives.
///
/// On the paper's testbed this role is played by Linux + `taskset` + Intel
/// CAT/MBA + `pqos`/PMU; here it is implemented by the analytic co-location
/// simulator in `osml-workloads` (`SimServer`). Keeping schedulers generic
/// over `Substrate` means OSML, PARTIES and the unmanaged baseline all
/// exercise identical control paths.
///
/// Time is explicit: nothing changes until [`Substrate::advance`] is called,
/// which runs the machine forward and refreshes counters and latency
/// statistics. Samples are averages over the most recent `advance` window,
/// matching the paper's 1-second `pqos` sampling.
pub trait Substrate {
    /// The machine's hardware geometry.
    fn topology(&self) -> &Topology;

    /// Changes a placed service's resource allocation (cores / ways / MBA).
    ///
    /// # Errors
    ///
    /// Fails if `id` is unknown or the allocation is invalid for this
    /// machine.
    fn reallocate(&mut self, id: AppId, alloc: Allocation) -> Result<(), PlatformError>;

    /// Removes a service from the machine (completion or migration).
    ///
    /// # Errors
    ///
    /// Fails if `id` is unknown.
    fn remove(&mut self, id: AppId) -> Result<(), PlatformError>;

    /// Runs the machine forward by `seconds` of simulated time.
    fn advance(&mut self, seconds: f64);

    /// Current simulated time in seconds since the server booted.
    fn now(&self) -> f64;

    /// Services currently placed, in placement order.
    fn apps(&self) -> Vec<AppId>;

    /// Allocation currently programmed for `id`, if placed.
    fn allocation(&self, id: AppId) -> Option<Allocation>;

    /// Latest counter sample for `id` (averaged over the last `advance`
    /// window), if placed.
    fn sample(&self, id: AppId) -> Option<CounterSample>;

    /// Side-effect-free read of the latest counter sample for `id`.
    ///
    /// Semantically identical to [`Substrate::sample`] on well-behaved
    /// substrates, but guaranteed not to advance any observable state the
    /// substrate keys off read counts (fault-injection decision streams,
    /// staleness history). Speculative readers — batched inference
    /// pre-passes that may re-read the same window the authoritative probe
    /// reads — must use this so their extra reads leave the per-call fault
    /// stream identical to a scalar engine's.
    fn peek_sample(&self, id: AppId) -> Option<CounterSample> {
        self.sample(id)
    }

    /// Latest latency statistics for `id`, if placed.
    fn latency(&self, id: AppId) -> Option<LatencyStats>;

    /// Cores not allocated to any service.
    fn idle_cores(&self) -> CoreSet {
        let mut used = CoreSet::new();
        for id in self.apps() {
            if let Some(a) = self.allocation(id) {
                used = used.union(a.cores);
            }
        }
        CoreSet::all(self.topology()).difference(used)
    }

    /// Ways not allocated to any service, as a count. (The idle ways need not
    /// be contiguous once services hold arbitrary masks, so only the count is
    /// meaningful here; mask layout is the allocator's business.)
    fn idle_way_count(&self) -> usize {
        let total = self.topology().llc_ways();
        let mut used = 0u32;
        for id in self.apps() {
            if let Some(a) = self.allocation(id) {
                used |= a.ways.bits();
            }
        }
        total - (used.count_ones() as usize).min(total)
    }

    /// Union of way masks currently held by services other than `except`.
    fn occupied_ways(&self, except: Option<AppId>) -> u32 {
        let mut used = 0u32;
        for id in self.apps() {
            if Some(id) == except {
                continue;
            }
            if let Some(a) = self.allocation(id) {
                used |= a.ways.bits();
            }
        }
        used
    }

    /// Finds a contiguous run of `count` ways that does not overlap any
    /// other service's mask (ignoring `except`'s own mask). Returns `None`
    /// if no such run exists.
    fn find_free_ways(&self, count: usize, except: Option<AppId>) -> Option<WayMask> {
        let total = self.topology().llc_ways();
        if count == 0 || count > total {
            return None;
        }
        let used = self.occupied_ways(except);
        (0..=total.saturating_sub(count)).find_map(|first| {
            let mask = WayMask::contiguous(first, count).ok()?;
            (mask.bits() & used == 0).then_some(mask)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MbaThrottle;
    use std::collections::BTreeMap;

    /// Minimal in-memory substrate used to exercise the trait's provided
    /// methods without pulling in the workload simulator.
    struct Ledger {
        topo: Topology,
        apps: BTreeMap<AppId, Allocation>,
        clock: f64,
    }

    impl Ledger {
        fn new() -> Self {
            Ledger { topo: Topology::xeon_e5_2697_v4(), apps: BTreeMap::new(), clock: 0.0 }
        }
        fn place(&mut self, id: u64, alloc: Allocation) {
            self.apps.insert(AppId(id), alloc);
        }
    }

    impl Substrate for Ledger {
        fn topology(&self) -> &Topology {
            &self.topo
        }
        fn reallocate(&mut self, id: AppId, alloc: Allocation) -> Result<(), PlatformError> {
            alloc.validate(&self.topo)?;
            match self.apps.get_mut(&id) {
                Some(a) => {
                    *a = alloc;
                    Ok(())
                }
                None => Err(PlatformError::UnknownApp { id: id.0 }),
            }
        }
        fn remove(&mut self, id: AppId) -> Result<(), PlatformError> {
            self.apps.remove(&id).map(|_| ()).ok_or(PlatformError::UnknownApp { id: id.0 })
        }
        fn advance(&mut self, seconds: f64) {
            self.clock += seconds;
        }
        fn now(&self) -> f64 {
            self.clock
        }
        fn apps(&self) -> Vec<AppId> {
            self.apps.keys().copied().collect()
        }
        fn allocation(&self, id: AppId) -> Option<Allocation> {
            self.apps.get(&id).copied()
        }
        fn sample(&self, _id: AppId) -> Option<CounterSample> {
            None
        }
        fn latency(&self, _id: AppId) -> Option<LatencyStats> {
            None
        }
    }

    fn alloc(cores: std::ops::Range<usize>, first_way: usize, ways: usize) -> Allocation {
        Allocation::new(
            CoreSet::from_cores(cores),
            WayMask::contiguous(first_way, ways).unwrap(),
            MbaThrottle::unthrottled(),
        )
    }

    #[test]
    fn idle_accounting() {
        let mut s = Ledger::new();
        assert_eq!(s.idle_cores().count(), 36);
        assert_eq!(s.idle_way_count(), 20);
        s.place(1, alloc(0..6, 0, 10));
        s.place(2, alloc(6..14, 10, 4));
        assert_eq!(s.idle_cores().count(), 36 - 14);
        assert_eq!(s.idle_way_count(), 6);
    }

    #[test]
    fn overlapping_masks_count_once() {
        let mut s = Ledger::new();
        s.place(1, alloc(0..2, 0, 10));
        s.place(2, alloc(2..4, 5, 10)); // ways 5..15 overlap 0..10
        assert_eq!(s.idle_way_count(), 5);
    }

    #[test]
    fn find_free_ways_skips_occupied_runs() {
        let mut s = Ledger::new();
        s.place(1, alloc(0..2, 0, 8)); // ways 0..8
        s.place(2, alloc(2..4, 12, 4)); // ways 12..16
                                        // Free runs: 8..12 (4 ways) and 16..20 (4 ways).
        let m = s.find_free_ways(4, None).unwrap();
        assert_eq!((m.first(), m.count()), (8, 4));
        assert!(s.find_free_ways(5, None).is_none());
        // Ignoring app 2's mask opens 8..16.
        let m = s.find_free_ways(8, Some(AppId(2))).unwrap();
        assert_eq!((m.first(), m.count()), (8, 8));
    }

    #[test]
    fn find_free_ways_zero_is_none() {
        let s = Ledger::new();
        assert!(s.find_free_ways(0, None).is_none());
        assert!(s.find_free_ways(20, None).is_some());
        assert!(s.find_free_ways(21, None).is_none());
    }

    #[test]
    fn reallocate_unknown_app_fails() {
        let mut s = Ledger::new();
        let err = s.reallocate(AppId(9), alloc(0..1, 0, 1)).unwrap_err();
        assert_eq!(err, PlatformError::UnknownApp { id: 9 });
    }

    #[test]
    fn app_id_display() {
        assert_eq!(AppId(3).to_string(), "app#3");
    }
}

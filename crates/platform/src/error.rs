use std::error::Error;
use std::fmt;

/// Errors raised by the platform layer when a scheduler requests an invalid
/// resource manipulation.
///
/// These mirror the failure modes of the real control interfaces: `taskset`
/// rejects empty/out-of-range CPU lists, Intel CAT rejects non-contiguous or
/// empty way masks, and the OSML runtime refuses to double-place a service.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlatformError {
    /// A core index exceeded the number of logical cores on the machine.
    CoreOutOfRange {
        /// The offending logical core index.
        core: usize,
        /// Number of logical cores on the machine.
        total: usize,
    },
    /// An allocation contained no cores; a service cannot run on zero cores.
    EmptyCoreSet,
    /// A way index exceeded the number of LLC ways.
    WayOutOfRange {
        /// The offending way index.
        way: usize,
        /// Number of LLC ways on the machine.
        total: usize,
    },
    /// Intel CAT requires class-of-service masks to be contiguous and
    /// non-empty; the requested mask was not.
    InvalidWayMask {
        /// The raw mask bits that were rejected.
        bits: u32,
    },
    /// The application id is not registered on this server.
    UnknownApp {
        /// The offending application id.
        id: u64,
    },
    /// The application id is already registered on this server.
    DuplicateApp {
        /// The offending application id.
        id: u64,
    },
    /// An MBA throttle level outside 10..=100 (%) was requested.
    InvalidThrottle {
        /// The rejected percentage.
        percent: u8,
    },
    /// A control-interface write failed at actuation time.
    ///
    /// On real hardware this is an MSR write returning `EBUSY`/`EINTR`
    /// under contention (CAT/MBA class-of-service programming) or
    /// `sched_setaffinity` racing a dying task. `transient` distinguishes
    /// glitches worth retrying from hard faults (e.g. the resctrl interface
    /// disappearing); the fault-injection layer only ever produces
    /// transient ones.
    ActuationFailed {
        /// Whether a retry can reasonably be expected to succeed.
        transient: bool,
    },
}

/// Coarse classification of a [`PlatformError`], driving the controller's
/// recovery strategy: transient faults are retried, invalid requests are
/// bugs in the caller's arithmetic (never retried), and unknown-target
/// errors mean the service raced a departure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorClass {
    /// Worth retrying with backoff (contention on the control interface).
    Transient,
    /// The request itself was malformed; retrying the same call cannot help.
    InvalidRequest,
    /// The target service is not (or no longer) registered.
    UnknownTarget,
}

impl From<&PlatformError> for ErrorClass {
    fn from(err: &PlatformError) -> ErrorClass {
        match err {
            PlatformError::ActuationFailed { transient: true } => ErrorClass::Transient,
            PlatformError::UnknownApp { .. } | PlatformError::DuplicateApp { .. } => {
                ErrorClass::UnknownTarget
            }
            // Everything else — and any future variant — is a malformed
            // request: the conservative class (never retried).
            _ => ErrorClass::InvalidRequest,
        }
    }
}

impl PlatformError {
    /// This error's recovery class.
    pub fn class(&self) -> ErrorClass {
        ErrorClass::from(self)
    }

    /// Whether a retry with backoff can reasonably be expected to succeed.
    /// The controller's retry budget applies only to these errors.
    pub fn is_transient(&self) -> bool {
        self.class() == ErrorClass::Transient
    }
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::CoreOutOfRange { core, total } => {
                write!(f, "logical core {core} out of range (machine has {total})")
            }
            PlatformError::EmptyCoreSet => write!(f, "allocation contains no cores"),
            PlatformError::WayOutOfRange { way, total } => {
                write!(f, "LLC way {way} out of range (cache has {total} ways)")
            }
            PlatformError::InvalidWayMask { bits } => {
                write!(f, "way mask {bits:#b} is not a contiguous non-empty mask")
            }
            PlatformError::UnknownApp { id } => write!(f, "application {id} is not registered"),
            PlatformError::DuplicateApp { id } => {
                write!(f, "application {id} is already registered")
            }
            PlatformError::InvalidThrottle { percent } => {
                write!(f, "MBA throttle {percent}% is not in 10..=100")
            }
            PlatformError::ActuationFailed { transient: true } => {
                write!(f, "control-interface write failed transiently (retry may succeed)")
            }
            PlatformError::ActuationFailed { transient: false } => {
                write!(f, "control-interface write failed permanently")
            }
        }
    }
}

impl Error for PlatformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = PlatformError::CoreOutOfRange { core: 40, total: 36 };
        let s = e.to_string();
        assert!(s.contains("40"));
        assert!(s.contains("36"));
        assert!(s.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: Error + Send + Sync + 'static>(_e: E) {}
        takes_error(PlatformError::EmptyCoreSet);
    }

    #[test]
    fn all_variants_have_nonempty_display() {
        let variants = [
            PlatformError::CoreOutOfRange { core: 1, total: 2 },
            PlatformError::EmptyCoreSet,
            PlatformError::WayOutOfRange { way: 3, total: 4 },
            PlatformError::InvalidWayMask { bits: 0b101 },
            PlatformError::UnknownApp { id: 7 },
            PlatformError::DuplicateApp { id: 7 },
            PlatformError::InvalidThrottle { percent: 5 },
            PlatformError::ActuationFailed { transient: true },
            PlatformError::ActuationFailed { transient: false },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty(), "{v:?}");
        }
    }

    #[test]
    fn only_transient_actuation_failures_are_retryable() {
        assert!(PlatformError::ActuationFailed { transient: true }.is_transient());
        assert!(!PlatformError::ActuationFailed { transient: false }.is_transient());
        let permanent = [
            PlatformError::CoreOutOfRange { core: 1, total: 2 },
            PlatformError::EmptyCoreSet,
            PlatformError::WayOutOfRange { way: 3, total: 4 },
            PlatformError::InvalidWayMask { bits: 0b101 },
            PlatformError::UnknownApp { id: 7 },
            PlatformError::DuplicateApp { id: 7 },
            PlatformError::InvalidThrottle { percent: 5 },
        ];
        for e in permanent {
            assert!(!e.is_transient(), "{e:?} must not be retried");
        }
    }

    #[test]
    fn error_classes_partition_the_variants() {
        assert_eq!(
            PlatformError::ActuationFailed { transient: true }.class(),
            ErrorClass::Transient
        );
        assert_eq!(PlatformError::UnknownApp { id: 1 }.class(), ErrorClass::UnknownTarget);
        assert_eq!(PlatformError::DuplicateApp { id: 1 }.class(), ErrorClass::UnknownTarget);
        assert_eq!(PlatformError::EmptyCoreSet.class(), ErrorClass::InvalidRequest);
        assert_eq!(
            PlatformError::ActuationFailed { transient: false }.class(),
            ErrorClass::InvalidRequest
        );
        // The From impl and the method agree.
        let e = PlatformError::InvalidThrottle { percent: 5 };
        assert_eq!(ErrorClass::from(&e), e.class());
    }
}

//! Fault-injectable control plane between a cluster scheduler and its
//! nodes.
//!
//! PR 9's cluster drove its nodes through direct method calls — a perfect,
//! instantaneous, omniscient channel no real fleet has. This module puts a
//! typed message layer in between: [`NodeCommand`] / [`NodeReply`]
//! envelopes with per-node sequence numbers travel over a
//! [`ControlChannel`], which is either
//!
//! * a [`PerfectChannel`] — synchronous, reliable, in-order, and able to
//!   *prove* a dead peer at delivery time (a reliable transport
//!   distinguishes "connection refused" from silence, the way TCP RST
//!   does). This is the default and is bit-identical to the direct calls
//!   it replaces; or
//! * a seeded [`LossyChannel`] — every message independently drawn
//!   against a [`ChannelPlan`]'s drop / duplicate / delay probabilities
//!   through the same SplitMix64 decision hash the fault substrate uses,
//!   plus scripted [`PartitionWindow`]s that silently black-hole all
//!   traffic to and from a node. A lossy transport can never prove a peer
//!   dead — silence is ambiguous — so the cluster above falls back to
//!   heartbeat-timeout *suspicion*.
//!
//! Reordering arises from the delay draws: each copy of a message draws
//! its own delay, so a duplicated or retried message can overtake an
//! earlier one. Delivery within one instant is deterministic (stable
//! order by due time, then send order), so a fixed seed replays
//! bit-identically regardless of `OSML_JOBS`.
//!
//! The channel is transport only: it moves opaque payloads and reports
//! what it did to them ([`SendReport`]). Protocol concerns — retries,
//! dedup ([`SeqWindow`]), epoch fencing, suspicion — live with the
//! endpoints in `osml_core::cluster`.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use serde::{Deserialize, Serialize};

use crate::alloc::Allocation;
use crate::faults::decision;
use crate::substrate::AppId;

/// Decision-hash salts for the per-message fault draws. Disjoint from the
/// substrate fault salts (1–5) and the node-fault salts (101–102).
const SALT_DROP: u64 = 201;
const SALT_DUP: u64 = 202;
const SALT_DELAY: u64 = 203;
const SALT_DELAY_LEN: u64 = 204;
const SALT_DUP_DELAY: u64 = 205;

/// A scripted window `[start_s, end_s)` during which `node` is cut off
/// from the cluster entirely: every command to it and every reply from it
/// is silently dropped, in both directions, with no per-message fault
/// draw. The node itself keeps running — partitions sever the control
/// plane, not the machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionWindow {
    /// Node index the window isolates.
    pub node: usize,
    /// Window start, inclusive, in cluster-clock seconds.
    pub start_s: f64,
    /// Window end, exclusive.
    pub end_s: f64,
}

/// Stochastic per-message fault profile plus scripted partitions for a
/// [`LossyChannel`]. [`ChannelPlan::none`] selects the
/// [`PerfectChannel`] instead.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelPlan {
    /// Seed for the per-message decision draws.
    pub seed: u64,
    /// Probability a message is silently dropped.
    pub drop_prob: f64,
    /// Probability a surviving message is delivered twice (the duplicate
    /// draws its own delay, so copies can reorder).
    pub duplicate_prob: f64,
    /// Probability a surviving message is delayed by 1..=`max_delay_s`
    /// whole seconds instead of arriving within the step it was sent.
    pub delay_prob: f64,
    /// Upper bound on the drawn delay, in seconds.
    pub max_delay_s: f64,
    /// Scripted total-isolation windows.
    pub partitions: Vec<PartitionWindow>,
}

impl ChannelPlan {
    /// The no-fault plan: selects the perfect, reliable channel.
    pub fn none() -> Self {
        ChannelPlan {
            seed: 0,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            delay_prob: 0.0,
            max_delay_s: 0.0,
            partitions: Vec::new(),
        }
    }

    /// A lossy profile keyed to a single loss rate: messages drop at
    /// `loss`, duplicate at `loss / 2`, and delay at `loss` for up to 3 s
    /// — the shape the fig23 sweep uses.
    pub fn lossy(seed: u64, loss: f64) -> Self {
        ChannelPlan {
            seed,
            drop_prob: loss,
            duplicate_prob: loss / 2.0,
            delay_prob: loss,
            max_delay_s: 3.0,
            partitions: Vec::new(),
        }
    }

    /// True when this plan injects nothing: no stochastic faults and no
    /// partitions, so the perfect channel serves it exactly.
    pub fn is_none(&self) -> bool {
        self.drop_prob == 0.0
            && self.duplicate_prob == 0.0
            && self.delay_prob == 0.0
            && self.partitions.is_empty()
    }

    /// Whether `node` is inside a scripted partition window at `now_s`.
    pub fn partitioned(&self, node: usize, now_s: f64) -> bool {
        self.partitions.iter().any(|w| w.node == node && now_s >= w.start_s && now_s < w.end_s)
    }
}

/// A command the cluster sends to one node agent. Generic over the launch
/// payload `S` (the workload `LaunchSpec` lives above this crate).
#[derive(Debug, Clone, PartialEq)]
pub enum NodeCommand<S> {
    /// Place a service replica at `epoch`. The node refuses (fences) any
    /// epoch not strictly newer than the highest it has seen for `id`.
    Launch {
        /// Cluster-wide service id.
        id: u64,
        /// Placement epoch of this attempt; each attempt gets a fresh one.
        epoch: u64,
        /// Launch payload.
        spec: S,
        /// Whether the install goes through the retry/rollback path.
        resilient: bool,
    },
    /// Tear down the replica of `id` at exactly `epoch`. Epoch-exact so a
    /// delayed teardown of an old replica can never kill a newer one.
    Teardown {
        /// Cluster-wide service id.
        id: u64,
        /// Epoch of the replica to remove.
        epoch: u64,
    },
    /// Heartbeat probe; answered with [`NodeReply::Pong`].
    Ping,
}

/// A reply a node agent sends back to the cluster.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeReply {
    /// Launch succeeded: the replica of `id` at `epoch` runs as `app`.
    Launched {
        /// Cluster-wide service id.
        id: u64,
        /// Epoch the replica carries.
        epoch: u64,
        /// Node-local process handle.
        app: AppId,
        /// Allocation after admission.
        post: Allocation,
        /// Per-attempt actuation-retry telemetry `(attempts, backoff_ms)`.
        retried: Vec<(u32, f64)>,
        /// Whether the resilient install exhausted its budget at least
        /// once before ultimately succeeding (always false on success).
        gave_up: bool,
    },
    /// Launch failed (admission rejected it, or the resilient install
    /// exhausted its budget and rolled back).
    LaunchFailed {
        /// Cluster-wide service id.
        id: u64,
        /// Epoch of the failed attempt.
        epoch: u64,
        /// Per-attempt actuation-retry telemetry `(attempts, backoff_ms)`.
        retried: Vec<(u32, f64)>,
        /// Whether the install path gave up after exhausting its budget.
        gave_up: bool,
    },
    /// Command refused: `epoch` is not newer than the fence for `id`.
    Fenced {
        /// Cluster-wide service id.
        id: u64,
        /// The stale epoch that was refused.
        epoch: u64,
    },
    /// Teardown acknowledged (idempotent: also sent when no matching
    /// replica existed). `removed` says whether a process actually died.
    TornDown {
        /// Cluster-wide service id.
        id: u64,
        /// Epoch the teardown targeted.
        epoch: u64,
        /// Whether a replica was actually removed.
        removed: bool,
    },
    /// Heartbeat answer carrying the node's self-reported state.
    Pong {
        /// Replying node.
        node: usize,
        /// Cluster-clock instant the snapshot was taken (the ping's
        /// delivery time). A delayed pong keeps its original stamp, so
        /// receivers can discard snapshots superseded by fresher ones.
        at_s: f64,
        /// Self-measured capacity factor (degraded nodes report < 1).
        capacity: f64,
        /// Resident replicas as `(id, app, epoch)`, in arrival order —
        /// the discovery list heal-time reconciliation runs on.
        residents: Vec<(u64, AppId, u64)>,
    },
    /// Transport-level verdict from a *reliable* channel: the peer is
    /// provably dead (connection refused). A lossy channel never sends
    /// this — silence there is ambiguous.
    Unreachable {
        /// The dead node.
        node: usize,
    },
}

/// What the transport did to one `send` — the caller logs world facts
/// (message dropped / duplicated) from this, keeping the channel free of
/// any logging dependency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SendReport {
    /// Message was silently dropped by a stochastic draw.
    pub dropped: bool,
    /// Message was dropped because the link is inside a partition window
    /// (reported separately so callers can avoid per-message log spam —
    /// the window itself is already a logged fact).
    pub partitioned: bool,
    /// An extra copy was queued.
    pub duplicated: bool,
    /// The original copy was delayed past its send instant.
    pub delayed: bool,
}

/// Cumulative transport counters (all zero for a perfect channel).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelStats {
    /// Messages accepted for transmission.
    pub sent: u64,
    /// Stochastic drops.
    pub dropped: u64,
    /// Partition-window drops (send- or delivery-time).
    pub partitioned: u64,
    /// Extra copies queued.
    pub duplicated: u64,
    /// Messages delayed past their send instant.
    pub delayed: u64,
}

/// One in-flight message on a cluster↔node link.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope<M> {
    /// The node whose link this message traverses (destination for
    /// commands, origin for replies).
    pub link: usize,
    /// Per-node sequence number; retries of one logical message reuse it
    /// so the receiver's [`SeqWindow`] can dedup.
    pub seq: u64,
    /// Payload.
    pub msg: M,
}

/// A one-directional message transport between the cluster and its nodes.
/// Implementations must be deterministic: same construction, same call
/// sequence, same deliveries.
pub trait ControlChannel<M> {
    /// Queues `msg` on `link` at `now_s`; reports what happened to it.
    fn send(&mut self, link: usize, seq: u64, now_s: f64, msg: M) -> SendReport;
    /// Drains every message due on `link` at `now_s`, in deterministic
    /// order (due time, then send order).
    fn deliver(&mut self, link: usize, now_s: f64) -> Vec<Envelope<M>>;
    /// Whether this transport proves a dead peer at delivery time
    /// (connection refused) instead of timing out.
    fn detects_dead_peer(&self) -> bool;
    /// Cumulative fault counters.
    fn stats(&self) -> ChannelStats;
}

/// The default transport: reliable, in-order, delivered within the same
/// instant. Bit-identical to the direct method calls it replaced, and —
/// like any reliable connection-oriented transport — able to report a
/// dead peer synchronously.
#[derive(Debug, Default)]
pub struct PerfectChannel<M> {
    queues: BTreeMap<usize, VecDeque<(u64, M)>>,
    stats: ChannelStats,
}

impl<M> PerfectChannel<M> {
    /// An empty perfect channel.
    pub fn new() -> Self {
        PerfectChannel { queues: BTreeMap::new(), stats: ChannelStats::default() }
    }
}

impl<M> ControlChannel<M> for PerfectChannel<M> {
    fn send(&mut self, link: usize, seq: u64, _now_s: f64, msg: M) -> SendReport {
        self.stats.sent += 1;
        self.queues.entry(link).or_default().push_back((seq, msg));
        SendReport::default()
    }

    fn deliver(&mut self, link: usize, _now_s: f64) -> Vec<Envelope<M>> {
        match self.queues.get_mut(&link) {
            Some(q) => q.drain(..).map(|(seq, msg)| Envelope { link, seq, msg }).collect(),
            None => Vec::new(),
        }
    }

    fn detects_dead_peer(&self) -> bool {
        true
    }

    fn stats(&self) -> ChannelStats {
        self.stats
    }
}

/// One queued lossy-channel message.
#[derive(Debug, Clone)]
struct Queued<M> {
    due_s: f64,
    order: u64,
    link: usize,
    seq: u64,
    msg: M,
}

/// A seeded unreliable transport. Every message draws drop / duplicate /
/// delay decisions from the SplitMix64 hash keyed by `(plan.seed,
/// message index, salt)`, so the fault trace depends only on the plan and
/// the send sequence — never on wall time or thread scheduling.
#[derive(Debug)]
pub struct LossyChannel<M> {
    plan: ChannelPlan,
    /// Monotone message index: the decision-hash counter.
    index: u64,
    queue: Vec<Queued<M>>,
    stats: ChannelStats,
}

impl<M: Clone> LossyChannel<M> {
    /// A lossy channel drawing against `plan`.
    pub fn new(plan: ChannelPlan) -> Self {
        LossyChannel { plan, index: 0, queue: Vec::new(), stats: ChannelStats::default() }
    }

    fn enqueue(&mut self, due_s: f64, link: usize, seq: u64, msg: M) {
        let order = self.index;
        self.queue.push(Queued { due_s, order, link, seq, msg });
    }
}

impl<M: Clone> ControlChannel<M> for LossyChannel<M> {
    fn send(&mut self, link: usize, seq: u64, now_s: f64, msg: M) -> SendReport {
        self.stats.sent += 1;
        let i = self.index;
        self.index += 1;
        let mut report = SendReport::default();
        if self.plan.partitioned(link, now_s) {
            self.stats.partitioned += 1;
            report.partitioned = true;
            return report;
        }
        if decision(self.plan.seed, i, SALT_DROP) < self.plan.drop_prob {
            self.stats.dropped += 1;
            report.dropped = true;
            return report;
        }
        let delay = if decision(self.plan.seed, i, SALT_DELAY) < self.plan.delay_prob {
            let span = self.plan.max_delay_s.max(1.0);
            1.0 + (decision(self.plan.seed, i, SALT_DELAY_LEN) * span).floor().min(span - 1.0)
        } else {
            0.0
        };
        if delay > 0.0 {
            self.stats.delayed += 1;
            report.delayed = true;
        }
        if decision(self.plan.seed, i, SALT_DUP) < self.plan.duplicate_prob {
            self.stats.duplicated += 1;
            report.duplicated = true;
            // The duplicate draws its own delay so copies can reorder.
            let span = self.plan.max_delay_s.max(1.0);
            let dup_delay = (decision(self.plan.seed, i, SALT_DUP_DELAY) * span).floor();
            self.enqueue(now_s + dup_delay, link, seq, msg.clone());
        }
        self.enqueue(now_s + delay, link, seq, msg);
        report
    }

    fn deliver(&mut self, link: usize, now_s: f64) -> Vec<Envelope<M>> {
        let mut due: Vec<Queued<M>> = Vec::new();
        let mut rest: Vec<Queued<M>> = Vec::with_capacity(self.queue.len());
        for q in self.queue.drain(..) {
            if q.link == link && q.due_s <= now_s {
                due.push(q);
            } else {
                rest.push(q);
            }
        }
        self.queue = rest;
        due.sort_by(|a, b| {
            a.due_s.partial_cmp(&b.due_s).expect("due times are finite").then(a.order.cmp(&b.order))
        });
        let mut out = Vec::with_capacity(due.len());
        for q in due {
            // Messages in flight when a window opens are swallowed too.
            if self.plan.partitioned(link, now_s) {
                self.stats.partitioned += 1;
                continue;
            }
            out.push(Envelope { link: q.link, seq: q.seq, msg: q.msg });
        }
        out
    }

    fn detects_dead_peer(&self) -> bool {
        false
    }

    fn stats(&self) -> ChannelStats {
        self.stats
    }
}

/// Either transport behind one concrete type, so the cluster can hold it
/// without boxing. Construct from a [`ChannelPlan`] via
/// [`Channel::from_plan`].
#[derive(Debug)]
pub enum Channel<M> {
    /// Reliable default.
    Perfect(PerfectChannel<M>),
    /// Seeded lossy transport.
    Lossy(LossyChannel<M>),
}

impl<M: Clone> Channel<M> {
    /// Perfect when the plan injects nothing, lossy otherwise. `salt` is
    /// folded into the lossy seed so the command and reply directions
    /// draw independent fault streams from one plan.
    pub fn from_plan(plan: &ChannelPlan, salt: u64) -> Self {
        if plan.is_none() {
            Channel::Perfect(PerfectChannel::new())
        } else {
            let mut plan = plan.clone();
            plan.seed ^= salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            Channel::Lossy(LossyChannel::new(plan))
        }
    }
}

impl<M: Clone> ControlChannel<M> for Channel<M> {
    fn send(&mut self, link: usize, seq: u64, now_s: f64, msg: M) -> SendReport {
        match self {
            Channel::Perfect(c) => c.send(link, seq, now_s, msg),
            Channel::Lossy(c) => c.send(link, seq, now_s, msg),
        }
    }

    fn deliver(&mut self, link: usize, now_s: f64) -> Vec<Envelope<M>> {
        match self {
            Channel::Perfect(c) => c.deliver(link, now_s),
            Channel::Lossy(c) => c.deliver(link, now_s),
        }
    }

    fn detects_dead_peer(&self) -> bool {
        match self {
            Channel::Perfect(c) => ControlChannel::<M>::detects_dead_peer(c),
            Channel::Lossy(c) => ControlChannel::<M>::detects_dead_peer(c),
        }
    }

    fn stats(&self) -> ChannelStats {
        match self {
            Channel::Perfect(c) => ControlChannel::<M>::stats(c),
            Channel::Lossy(c) => ControlChannel::<M>::stats(c),
        }
    }
}

/// Receiver-side duplicate suppression over per-node sequence numbers.
/// Retries of one logical message reuse their seq, so "seen before" means
/// "duplicate delivery" — the receiver re-acks from its reply cache
/// instead of executing twice. The window is pruned from the bottom once
/// it grows past `PRUNE_AT`, far beyond any delay the channel can inject.
#[derive(Debug, Default)]
pub struct SeqWindow {
    seen: BTreeSet<u64>,
}

impl SeqWindow {
    const PRUNE_AT: usize = 8192;

    /// An empty window.
    pub fn new() -> Self {
        SeqWindow::default()
    }

    /// Records `seq`; returns `true` the first time it is seen and
    /// `false` for every duplicate.
    pub fn fresh(&mut self, seq: u64) -> bool {
        let fresh = self.seen.insert(seq);
        if self.seen.len() > Self::PRUNE_AT {
            let cut = *self.seen.iter().nth(Self::PRUNE_AT / 2).expect("window is non-empty");
            self.seen = self.seen.split_off(&cut);
        }
        fresh
    }

    /// Drops all state — a crashed node loses its dedup memory.
    pub fn clear(&mut self) {
        self.seen.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ping_plan(loss: f64) -> ChannelPlan {
        ChannelPlan::lossy(7, loss)
    }

    #[test]
    fn perfect_channel_delivers_everything_in_order_same_instant() {
        let mut ch: PerfectChannel<u32> = PerfectChannel::new();
        for (seq, msg) in [(0u64, 10u32), (1, 11), (2, 12)] {
            assert_eq!(ch.send(3, seq, 5.0, msg), SendReport::default());
        }
        let got = ch.deliver(3, 5.0);
        assert_eq!(
            got.iter().map(|e| (e.seq, e.msg)).collect::<Vec<_>>(),
            vec![(0, 10), (1, 11), (2, 12)]
        );
        assert!(ch.deliver(3, 5.0).is_empty(), "drained");
        assert!(ch.deliver(9, 5.0).is_empty(), "other links untouched");
        assert_eq!(ch.stats().sent, 3);
        assert_eq!(ch.stats().dropped, 0);
    }

    #[test]
    fn lossy_channel_is_deterministic_for_a_fixed_seed() {
        let runs: Vec<(ChannelStats, Vec<(u64, u32)>)> = (0..2)
            .map(|_| {
                let mut ch: LossyChannel<u32> = LossyChannel::new(ping_plan(0.3));
                let mut got = Vec::new();
                for step in 0..50u64 {
                    let now = step as f64;
                    ch.send(0, step, now, step as u32);
                    got.extend(ch.deliver(0, now).into_iter().map(|e| (e.seq, e.msg)));
                }
                // Flush stragglers.
                got.extend(ch.deliver(0, 1000.0).into_iter().map(|e| (e.seq, e.msg)));
                (ch.stats(), got)
            })
            .collect();
        assert_eq!(runs[0], runs[1], "same seed, same trace");
        let (stats, got) = &runs[0];
        assert!(stats.dropped > 0, "30% loss over 50 sends must drop something");
        assert_eq!(
            got.len() as u64 + stats.dropped,
            stats.sent + stats.duplicated,
            "every non-dropped copy is delivered exactly once"
        );
    }

    #[test]
    fn partition_window_black_holes_both_fresh_and_in_flight_messages() {
        let mut plan = ping_plan(0.0);
        plan.delay_prob = 0.0;
        plan.partitions = vec![PartitionWindow { node: 1, start_s: 10.0, end_s: 20.0 }];
        let mut ch: LossyChannel<u32> = LossyChannel::new(plan);
        assert!(!ch.send(1, 0, 5.0, 1).partitioned, "before the window: accepted");
        assert_eq!(ch.deliver(1, 5.0).len(), 1);
        assert!(ch.send(1, 1, 10.0, 2).partitioned, "inside the window: swallowed");
        assert!(ch.deliver(1, 10.0).is_empty());
        assert!(!ch.send(0, 2, 10.0, 3).partitioned, "other nodes unaffected");
        assert_eq!(ch.deliver(0, 10.0).len(), 1);
        assert!(!ch.send(1, 3, 20.0, 4).partitioned, "window is half-open: end is out");
        assert_eq!(ch.deliver(1, 20.0).len(), 1);
        assert_eq!(ch.stats().partitioned, 1);
    }

    #[test]
    fn duplicates_reorder_and_seq_window_suppresses_them() {
        let mut plan = ping_plan(0.0);
        plan.drop_prob = 0.0;
        plan.duplicate_prob = 1.0;
        plan.delay_prob = 0.0;
        let mut ch: LossyChannel<u32> = LossyChannel::new(plan);
        for seq in 0..20u64 {
            let r = ch.send(0, seq, 0.0, seq as u32);
            assert!(r.duplicated);
        }
        let got = ch.deliver(0, 100.0);
        assert_eq!(got.len(), 40, "every copy arrives");
        let mut win = SeqWindow::new();
        let fresh: Vec<u64> = got.iter().filter(|e| win.fresh(e.seq)).map(|e| e.seq).collect();
        assert_eq!(fresh.len(), 20, "dedup keeps exactly one copy per seq");
        let mut sorted = fresh.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<u64>>());
    }

    #[test]
    fn channel_from_plan_selects_perfect_for_the_none_plan() {
        let ch: Channel<u32> = Channel::from_plan(&ChannelPlan::none(), 0);
        assert!(matches!(ch, Channel::Perfect(_)));
        assert!(ChannelStats::default() == ControlChannel::<u32>::stats(&ch));
        let ch: Channel<u32> = Channel::from_plan(&ChannelPlan::lossy(1, 0.1), 0);
        assert!(matches!(ch, Channel::Lossy(_)));
        assert!(!ControlChannel::<u32>::detects_dead_peer(&ch));
    }

    #[test]
    fn command_and_reply_salts_draw_independent_fault_streams() {
        let plan = ping_plan(0.5);
        let mut a: Channel<u32> = Channel::from_plan(&plan, 0x0C);
        let mut b: Channel<u32> = Channel::from_plan(&plan, 0x0D);
        let fate = |ch: &mut Channel<u32>| {
            (0..64u64).map(|s| ch.send(0, s, 0.0, 0).dropped).collect::<Vec<bool>>()
        };
        assert_ne!(fate(&mut a), fate(&mut b), "different salts, different streams");
    }
}

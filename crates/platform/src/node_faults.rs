//! Deterministic whole-node fault model for the cluster tier.
//!
//! [`crate::FaultySubstrate`] injects *call-level* faults (a failed MSR
//! write, a dropped counter window). Cluster experiments need the next
//! size up: machines that crash, get drained for maintenance, or limp
//! along at reduced capacity. [`NodeFaultPlan`] scripts exactly that, in
//! the same faults-are-inputs style:
//!
//! * **crashes** — [`NodeCrash`]: the node dies at a scripted instant and
//!   (optionally) rejoins empty at a later one,
//! * **outage windows** — [`NodeOutage`]: a scheduled `[start, end)`
//!   maintenance drain,
//! * **degraded capacity** — [`NodeDegrade`]: the node stays up but only a
//!   fraction of it is usable (thermal throttling, a failed DIMM bank);
//!   placement should rank it down, not around,
//! * **seeded churn** — [`NodeChurnProfile`]: every node flips a weighted
//!   coin per interval and, on a loss, stays down for a deterministic
//!   downtime drawn around the profile's mean.
//!
//! Health is a *pure function* of the plan and the queried `(node, time)`
//! — no interior state, no RNG stream to keep in sync — so the cluster
//! can evaluate it at any cadence and a replayed run sees the identical
//! failure schedule. The churn draws reuse the SplitMix64 decision hash
//! of [`crate::faults`], keyed by `(node, interval)` instead of a call
//! counter.

use crate::faults::decision;
use serde::{Deserialize, Serialize};

/// Salts separating the churn decision streams from the call-level fault
/// salts (1–5) in [`crate::faults`].
const SALT_NODE_CRASH: u64 = 101;
const SALT_NODE_DOWNTIME: u64 = 102;

/// Health of one cluster node at an instant of simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NodeHealth {
    /// Fully operational.
    Up,
    /// Operational at the given fraction of nominal capacity in `(0, 1)`.
    Degraded(f64),
    /// Dead: its processes are gone and nothing can be placed on it.
    Down,
}

impl NodeHealth {
    /// Whether the node can host services at all (up or degraded).
    pub fn is_up(self) -> bool {
        !matches!(self, NodeHealth::Down)
    }

    /// Usable capacity fraction: 1 when up, the degradation factor when
    /// degraded, 0 when down.
    pub fn capacity(self) -> f64 {
        match self {
            NodeHealth::Up => 1.0,
            NodeHealth::Degraded(f) => f.clamp(0.0, 1.0),
            NodeHealth::Down => 0.0,
        }
    }
}

/// A scripted whole-node crash.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeCrash {
    /// Which node dies.
    pub node: usize,
    /// When it dies, seconds of simulated time (inclusive).
    pub at_s: f64,
    /// When it rejoins (empty), if ever.
    pub recover_s: Option<f64>,
}

/// A scheduled outage window `[start_s, end_s)`: the node is drained for
/// the duration and rejoins empty at the end.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeOutage {
    /// Which node is drained.
    pub node: usize,
    /// Window start, seconds (inclusive).
    pub start_s: f64,
    /// Window end, seconds (exclusive).
    pub end_s: f64,
}

/// A degraded-capacity episode: the node stays up inside `[start_s,
/// end_s)` but only `capacity` of it is usable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeDegrade {
    /// Which node degrades.
    pub node: usize,
    /// Episode start, seconds (inclusive).
    pub start_s: f64,
    /// Episode end, seconds (exclusive).
    pub end_s: f64,
    /// Usable capacity fraction in `(0, 1)`.
    pub capacity: f64,
}

/// Seeded random node churn: in every interval of `interval_s` seconds,
/// each node crashes with probability `crash_prob` at the interval start
/// and stays down for a deterministic downtime drawn uniformly in
/// `[0.5, 1.5) · mean_downtime_s`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeChurnProfile {
    /// Per-node crash probability per interval, in `[0, 1]`.
    pub crash_prob: f64,
    /// Interval length, seconds.
    pub interval_s: f64,
    /// Mean downtime of one crash, seconds.
    pub mean_downtime_s: f64,
}

impl NodeChurnProfile {
    /// The longest downtime one crash can draw.
    fn max_downtime_s(&self) -> f64 {
        self.mean_downtime_s * 1.5
    }
}

/// The full node-fault schedule: scripted events plus optional churn,
/// pinned by a seed. Health is a pure function of the plan and the
/// queried `(node, time)`, so identical plans yield identical failure
/// schedules on every run and under replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeFaultPlan {
    /// Seed of the churn decision hash.
    pub seed: u64,
    /// Scripted crashes.
    pub crashes: Vec<NodeCrash>,
    /// Scheduled outage windows.
    pub outages: Vec<NodeOutage>,
    /// Degraded-capacity episodes.
    pub degrades: Vec<NodeDegrade>,
    /// Seeded random churn, if any.
    pub churn: Option<NodeChurnProfile>,
}

impl NodeFaultPlan {
    /// A plan under which every node is always [`NodeHealth::Up`].
    pub fn none() -> Self {
        NodeFaultPlan {
            seed: 0,
            crashes: Vec::new(),
            outages: Vec::new(),
            degrades: Vec::new(),
            churn: None,
        }
    }

    /// Pure churn at `crash_prob` per node per 30 s interval with a 20 s
    /// mean downtime — the knob the failover sweep turns.
    pub fn churn_at_rate(seed: u64, crash_prob: f64) -> Self {
        let churn = if crash_prob > 0.0 {
            Some(NodeChurnProfile { crash_prob, interval_s: 30.0, mean_downtime_s: 20.0 })
        } else {
            None
        };
        NodeFaultPlan { seed, churn, ..NodeFaultPlan::none() }
    }

    /// Whether this plan can take a node out of [`NodeHealth::Up`] at all.
    pub fn is_none(&self) -> bool {
        self.crashes.is_empty()
            && self.outages.is_empty()
            && self.degrades.is_empty()
            && self.churn.is_none()
    }

    /// Health of `node` at simulated time `now_s`. Down dominates
    /// degraded; overlapping sources are ORed.
    pub fn health(&self, node: usize, now_s: f64) -> NodeHealth {
        let crashed = self.crashes.iter().any(|c| {
            c.node == node && now_s >= c.at_s && c.recover_s.map(|r| now_s < r).unwrap_or(true)
        });
        let in_outage =
            self.outages.iter().any(|o| o.node == node && now_s >= o.start_s && now_s < o.end_s);
        if crashed || in_outage || self.churned_down(node, now_s) {
            return NodeHealth::Down;
        }
        let degrade = self
            .degrades
            .iter()
            .filter(|d| d.node == node && now_s >= d.start_s && now_s < d.end_s)
            .map(|d| d.capacity.clamp(0.0, 1.0))
            .fold(f64::INFINITY, f64::min);
        if degrade.is_finite() {
            NodeHealth::Degraded(degrade)
        } else {
            NodeHealth::Up
        }
    }

    /// Whether churn has `node` down at `now_s`: a crash drawn in any
    /// recent interval whose downtime still covers `now_s`.
    fn churned_down(&self, node: usize, now_s: f64) -> bool {
        let Some(churn) = &self.churn else {
            return false;
        };
        if churn.crash_prob <= 0.0 || churn.interval_s <= 0.0 || now_s < 0.0 {
            return false;
        }
        // Only intervals whose start lies within max_downtime of `now_s`
        // can still hold the node down.
        let current = (now_s / churn.interval_s).floor() as i64;
        let reach = (churn.max_downtime_s() / churn.interval_s).ceil() as i64;
        for k in (current - reach).max(0)..=current {
            let key = ((node as u64) << 32) | (k as u64 & 0xFFFF_FFFF);
            if decision(self.seed, key, SALT_NODE_CRASH) >= churn.crash_prob {
                continue;
            }
            let start = k as f64 * churn.interval_s;
            let downtime =
                churn.mean_downtime_s * (0.5 + decision(self.seed, key, SALT_NODE_DOWNTIME));
            if now_s >= start && now_s < start + downtime {
                return true;
            }
        }
        false
    }
}

impl Default for NodeFaultPlan {
    fn default() -> Self {
        NodeFaultPlan::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_always_up() {
        let plan = NodeFaultPlan::none();
        assert!(plan.is_none());
        for node in 0..8 {
            for t in 0..500 {
                assert_eq!(plan.health(node, t as f64), NodeHealth::Up);
            }
        }
    }

    #[test]
    fn scripted_crash_without_recovery_is_permanent() {
        let plan = NodeFaultPlan {
            crashes: vec![NodeCrash { node: 1, at_s: 10.0, recover_s: None }],
            ..NodeFaultPlan::none()
        };
        assert!(plan.health(1, 9.9).is_up());
        assert_eq!(plan.health(1, 10.0), NodeHealth::Down);
        assert_eq!(plan.health(1, 1e6), NodeHealth::Down);
        assert!(plan.health(0, 10.0).is_up(), "other nodes are untouched");
    }

    #[test]
    fn scripted_crash_with_recovery_rejoins() {
        let plan = NodeFaultPlan {
            crashes: vec![NodeCrash { node: 0, at_s: 5.0, recover_s: Some(25.0) }],
            ..NodeFaultPlan::none()
        };
        assert!(plan.health(0, 4.0).is_up());
        assert_eq!(plan.health(0, 5.0), NodeHealth::Down);
        assert_eq!(plan.health(0, 24.9), NodeHealth::Down);
        assert!(plan.health(0, 25.0).is_up());
    }

    #[test]
    fn outage_window_is_half_open() {
        let plan = NodeFaultPlan {
            outages: vec![NodeOutage { node: 2, start_s: 30.0, end_s: 60.0 }],
            ..NodeFaultPlan::none()
        };
        assert!(plan.health(2, 29.9).is_up());
        assert_eq!(plan.health(2, 30.0), NodeHealth::Down);
        assert_eq!(plan.health(2, 59.9), NodeHealth::Down);
        assert!(plan.health(2, 60.0).is_up());
    }

    #[test]
    fn degrade_reports_capacity_and_down_dominates() {
        let plan = NodeFaultPlan {
            crashes: vec![NodeCrash { node: 0, at_s: 50.0, recover_s: None }],
            degrades: vec![NodeDegrade { node: 0, start_s: 10.0, end_s: 90.0, capacity: 0.5 }],
            ..NodeFaultPlan::none()
        };
        assert_eq!(plan.health(0, 20.0), NodeHealth::Degraded(0.5));
        assert!((plan.health(0, 20.0).capacity() - 0.5).abs() < 1e-12);
        assert_eq!(plan.health(0, 60.0), NodeHealth::Down, "crash wins over degrade");
    }

    #[test]
    fn churn_is_deterministic_per_seed_and_varies_across_seeds() {
        let schedule = |seed: u64| -> Vec<bool> {
            let plan = NodeFaultPlan::churn_at_rate(seed, 0.3);
            (0..600).map(|t| plan.health(1, t as f64).is_up()).collect()
        };
        let a = schedule(7);
        assert_eq!(a, schedule(7), "same seed, same schedule");
        assert!(a.iter().any(|up| !up), "30% churn must take the node down in 20 intervals");
        assert!(a.iter().any(|up| *up), "20 s mean downtime cannot cover 600 s");
        assert_ne!(a, schedule(8), "different seeds draw different schedules");
    }

    #[test]
    fn churn_downtime_is_bounded_by_the_profile() {
        // With crash_prob 1.0 every interval starts a crash; the node must
        // still be up whenever no drawn downtime covers the instant, and
        // every downtime must end within max_downtime of its interval start.
        let plan = NodeFaultPlan::churn_at_rate(3, 1.0);
        let churn = plan.churn.unwrap();
        for t in 0..2000 {
            let now = t as f64 * 0.5;
            if plan.health(0, now) == NodeHealth::Down {
                // Some interval start within max_downtime must precede it.
                let reach = churn.max_downtime_s();
                let k = (now / churn.interval_s).floor() * churn.interval_s;
                assert!(now - k <= reach + churn.interval_s);
            }
        }
    }

    #[test]
    fn zero_rate_churn_helper_is_none() {
        assert!(NodeFaultPlan::churn_at_rate(9, 0.0).is_none());
        assert!(!NodeFaultPlan::churn_at_rate(9, 0.1).is_none());
    }

    #[test]
    fn plan_round_trips_through_serde() {
        let plan = NodeFaultPlan {
            seed: 42,
            crashes: vec![NodeCrash { node: 0, at_s: 5.0, recover_s: Some(9.0) }],
            outages: vec![NodeOutage { node: 1, start_s: 1.0, end_s: 2.0 }],
            degrades: vec![NodeDegrade { node: 2, start_s: 3.0, end_s: 4.0, capacity: 0.7 }],
            churn: Some(NodeChurnProfile {
                crash_prob: 0.1,
                interval_s: 30.0,
                mean_downtime_s: 20.0,
            }),
        };
        let back: NodeFaultPlan =
            serde_json::from_str(&serde_json::to_string(&plan).unwrap()).unwrap();
        assert_eq!(back, plan);
    }
}

use crate::{AppId, Substrate};
use serde::{Deserialize, Serialize};

/// Why a scheduler could not (or will not yet) place a service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RejectReason {
    /// The profiling window never produced a usable sample.
    ProfilingFailed,
    /// Idle resources, Model-B deprivation and Model-B′ sharing all came up
    /// short — the machine genuinely cannot host the service within QoS.
    InsufficientResources,
    /// The admission queue is at its configured depth and the arrival does
    /// not outrank any waiter.
    QueueFull,
    /// The arrival waited in the admission queue past the configured
    /// max-wait horizon without capacity appearing.
    WaitTimeout,
}

/// The SLO class of a service, ordered from most to least protected.
///
/// Classes drive overload management: latency-critical work is queued ahead
/// of everything else and is never shed; degradable work tolerates a larger
/// priced slowdown during brownout; best-effort work absorbs the deepest
/// shaves and is shed (LIFO) when pricing cannot cover the deficit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SloClass {
    /// User-facing, tail-latency bound (the paper's LC services).
    #[default]
    LatencyCritical,
    /// Latency-tolerant but still SLO-bearing (batch-interactive).
    Degradable,
    /// Throughput work with no SLO; first to be shaved or shed.
    BestEffort,
}

impl SloClass {
    /// Priority rank: lower is more protected (admitted first, shed last).
    pub fn rank(self) -> u8 {
        match self {
            SloClass::LatencyCritical => 0,
            SloClass::Degradable => 1,
            SloClass::BestEffort => 2,
        }
    }
}

/// Result of asking a scheduler to place a newly arrived service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Placement {
    /// The service was given an allocation on this server.
    Placed,
    /// The service cannot be placed right now but holds a seat in the
    /// admission queue; the harness should withdraw it from the substrate
    /// and relaunch when the scheduler's admission poll hands the ticket
    /// back (overload management, disabled by default).
    Deferred {
        /// Opaque handle identifying the queued arrival.
        ticket: u64,
    },
    /// The server cannot host the service within QoS constraints; the
    /// upper-level scheduler should migrate it to another node (Algorithm 4,
    /// line 9 of the paper).
    Rejected(RejectReason),
}

/// The interface every resource scheduler in this repository implements —
/// OSML, PARTIES and the unmanaged baseline — so experiment harnesses can
/// swap them freely.
///
/// Lifecycle: the harness launches a service onto the substrate (on idle
/// resources), then calls [`Scheduler::on_arrival`]. Afterwards it advances
/// time in 1-second steps, calling [`Scheduler::tick`] after each step (the
/// paper's 1-second `pqos` sampling loop). Schedulers may advance the
/// substrate themselves while profiling (OSML samples for 2 s before
/// invoking Model-A).
pub trait Scheduler {
    /// Human-readable scheduler name (for reports).
    fn name(&self) -> &'static str;

    /// Reacts to a newly launched service.
    fn on_arrival<S: Substrate>(&mut self, server: &mut S, id: AppId) -> Placement;

    /// Reacts to a newly launched service carrying an SLO class. The default
    /// implementation ignores the class, so schedulers without overload
    /// management behave exactly as before.
    fn on_arrival_classed<S: Substrate>(
        &mut self,
        server: &mut S,
        id: AppId,
        class: SloClass,
    ) -> Placement {
        let _ = class;
        self.on_arrival(server, id)
    }

    /// Periodic QoS check / adjustment, called once per simulated second.
    fn tick<S: Substrate>(&mut self, server: &mut S);

    /// Notifies the scheduler that a service left the machine.
    fn on_departure(&mut self, id: AppId);

    /// Total scheduling actions (allocation changes) taken so far — the
    /// overhead metric of the paper's Fig. 15.
    fn action_count(&self) -> usize;

    /// Total model inferences (Model-A/B/B′/C forward passes) run in service
    /// of scheduling decisions — the numerator of the throughput benchmark's
    /// decisions/sec metric. Schedulers without ML models report 0.
    fn decision_count(&self) -> u64 {
        0
    }
}

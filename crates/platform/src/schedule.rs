use crate::{AppId, Substrate};

/// Result of asking a scheduler to place a newly arrived service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Placement {
    /// The service was given an allocation on this server.
    Placed,
    /// The server cannot host the service within QoS constraints; the
    /// upper-level scheduler should migrate it to another node (Algorithm 4,
    /// line 9 of the paper).
    Rejected,
}

/// The interface every resource scheduler in this repository implements —
/// OSML, PARTIES and the unmanaged baseline — so experiment harnesses can
/// swap them freely.
///
/// Lifecycle: the harness launches a service onto the substrate (on idle
/// resources), then calls [`Scheduler::on_arrival`]. Afterwards it advances
/// time in 1-second steps, calling [`Scheduler::tick`] after each step (the
/// paper's 1-second `pqos` sampling loop). Schedulers may advance the
/// substrate themselves while profiling (OSML samples for 2 s before
/// invoking Model-A).
pub trait Scheduler {
    /// Human-readable scheduler name (for reports).
    fn name(&self) -> &'static str;

    /// Reacts to a newly launched service.
    fn on_arrival<S: Substrate>(&mut self, server: &mut S, id: AppId) -> Placement;

    /// Periodic QoS check / adjustment, called once per simulated second.
    fn tick<S: Substrate>(&mut self, server: &mut S);

    /// Notifies the scheduler that a service left the machine.
    fn on_departure(&mut self, id: AppId);

    /// Total scheduling actions (allocation changes) taken so far — the
    /// overhead metric of the paper's Fig. 15.
    fn action_count(&self) -> usize;
}

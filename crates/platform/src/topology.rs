use serde::{Deserialize, Serialize};

/// Static description of a server platform (Table 2 of the paper).
///
/// `ServerSpec` captures the catalog-sheet numbers; [`Topology`] adds derived
/// geometry (hyper-thread sibling mapping, per-way cache capacity) and is the
/// type the rest of the system consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerSpec {
    /// Marketing name of the CPU, e.g. `"Intel Xeon E5-2697 v4"`.
    pub cpu_model: String,
    /// Number of physical cores.
    pub physical_cores: usize,
    /// Hardware threads per physical core (2 with hyper-threading).
    pub threads_per_core: usize,
    /// Nominal core frequency in GHz.
    pub frequency_ghz: f64,
    /// Shared last-level cache capacity in MB.
    pub llc_mb: f64,
    /// Number of LLC ways (the CAT allocation granularity).
    pub llc_ways: usize,
    /// Total local memory bandwidth in GB/s.
    pub memory_bw_gbps: f64,
    /// Main memory capacity in GB.
    pub memory_gb: f64,
}

impl ServerSpec {
    /// The paper's testbed ("Our Platform" in Table 2): Intel Xeon E5-2697 v4,
    /// 18 physical / 36 logical cores, 45 MB 20-way LLC, 4×DDR4-2400
    /// (76.8 GB/s), 256 GB DRAM.
    pub fn xeon_e5_2697_v4() -> Self {
        ServerSpec {
            cpu_model: "Intel Xeon E5-2697 v4".to_owned(),
            physical_cores: 18,
            threads_per_core: 2,
            frequency_ghz: 2.3,
            llc_mb: 45.0,
            llc_ways: 20,
            memory_bw_gbps: 76.8,
            memory_gb: 256.0,
        }
    }

    /// The decade-old comparison server of Table 2: Intel i7-860, 4 physical /
    /// 8 logical cores, 8 MB 16-way LLC, 2×DDR3-1600 (25.6 GB/s), 8 GB DRAM.
    pub fn i7_860() -> Self {
        ServerSpec {
            cpu_model: "Intel i7-860".to_owned(),
            physical_cores: 4,
            threads_per_core: 2,
            frequency_ghz: 2.8,
            llc_mb: 8.0,
            llc_ways: 16,
            memory_bw_gbps: 25.6,
            memory_gb: 8.0,
        }
    }
}

/// Core/cache/bandwidth geometry of one server.
///
/// Logical cores are numbered the way Linux numbers them on a single-socket
/// hyper-threaded Xeon: logical core `i` and `i + physical_cores` are the two
/// hardware threads (HT siblings) of physical core `i % physical_cores`.
///
/// # Example
///
/// ```
/// use osml_platform::Topology;
/// let t = Topology::xeon_e5_2697_v4();
/// assert_eq!(t.physical_of(0), 0);
/// assert_eq!(t.physical_of(18), 0); // HT sibling of core 0
/// assert_eq!(t.sibling_of(5), Some(23));
/// assert_eq!(t.sibling_of(23), Some(5));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    spec: ServerSpec,
}

impl Topology {
    /// Builds a topology from a hardware spec.
    ///
    /// # Panics
    ///
    /// Panics if the spec has zero cores, zero ways, more than 64 logical
    /// cores (the [`crate::CoreSet`] representation limit) or more than 32
    /// ways (the [`crate::WayMask`] representation limit).
    pub fn new(spec: ServerSpec) -> Self {
        let logical = spec.physical_cores * spec.threads_per_core;
        assert!(logical > 0, "topology must have at least one core");
        assert!(logical <= 64, "CoreSet supports at most 64 logical cores");
        assert!(spec.llc_ways > 0, "topology must have at least one LLC way");
        assert!(spec.llc_ways <= 32, "WayMask supports at most 32 ways");
        Topology { spec }
    }

    /// The paper's testbed topology (see [`ServerSpec::xeon_e5_2697_v4`]).
    pub fn xeon_e5_2697_v4() -> Self {
        Topology::new(ServerSpec::xeon_e5_2697_v4())
    }

    /// The decade-old comparison topology (see [`ServerSpec::i7_860`]).
    pub fn i7_860() -> Self {
        Topology::new(ServerSpec::i7_860())
    }

    /// The underlying hardware spec.
    pub fn spec(&self) -> &ServerSpec {
        &self.spec
    }

    /// Number of logical cores (hardware threads).
    pub fn logical_cores(&self) -> usize {
        self.spec.physical_cores * self.spec.threads_per_core
    }

    /// Number of physical cores.
    pub fn physical_cores(&self) -> usize {
        self.spec.physical_cores
    }

    /// Number of LLC ways available to CAT.
    pub fn llc_ways(&self) -> usize {
        self.spec.llc_ways
    }

    /// Total LLC capacity in MB.
    pub fn llc_mb(&self) -> f64 {
        self.spec.llc_mb
    }

    /// Capacity of a single LLC way in MB (2.25 MB on the testbed).
    pub fn way_mb(&self) -> f64 {
        self.spec.llc_mb / self.spec.llc_ways as f64
    }

    /// Total local memory bandwidth in GB/s.
    pub fn memory_bw_gbps(&self) -> f64 {
        self.spec.memory_bw_gbps
    }

    /// Main memory capacity in GB.
    pub fn memory_gb(&self) -> f64 {
        self.spec.memory_gb
    }

    /// Nominal core frequency in GHz.
    pub fn frequency_ghz(&self) -> f64 {
        self.spec.frequency_ghz
    }

    /// Physical core that hosts logical core `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn physical_of(&self, core: usize) -> usize {
        assert!(core < self.logical_cores(), "core {core} out of range");
        core % self.spec.physical_cores
    }

    /// The hyper-thread sibling of logical core `core`, or `None` on a
    /// machine without SMT.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn sibling_of(&self, core: usize) -> Option<usize> {
        assert!(core < self.logical_cores(), "core {core} out of range");
        if self.spec.threads_per_core < 2 {
            return None;
        }
        let p = self.spec.physical_cores;
        Some(if core < p { core + p } else { core - p })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_matches_table2() {
        let t = Topology::xeon_e5_2697_v4();
        assert_eq!(t.logical_cores(), 36);
        assert_eq!(t.physical_cores(), 18);
        assert_eq!(t.llc_ways(), 20);
        assert!((t.llc_mb() - 45.0).abs() < 1e-12);
        assert!((t.way_mb() - 2.25).abs() < 1e-12);
        assert!((t.memory_bw_gbps() - 76.8).abs() < 1e-12);
        assert!((t.frequency_ghz() - 2.3).abs() < 1e-12);
    }

    #[test]
    fn old_server_matches_table2() {
        let t = Topology::i7_860();
        assert_eq!(t.logical_cores(), 8);
        assert!((t.llc_mb() - 8.0).abs() < 1e-12);
        assert!((t.memory_bw_gbps() - 25.6).abs() < 1e-12);
    }

    #[test]
    fn sibling_mapping_is_an_involution() {
        let t = Topology::xeon_e5_2697_v4();
        for c in 0..t.logical_cores() {
            let s = t.sibling_of(c).expect("HT machine has siblings");
            assert_ne!(s, c);
            assert_eq!(t.sibling_of(s), Some(c));
            assert_eq!(t.physical_of(s), t.physical_of(c));
        }
    }

    #[test]
    fn no_smt_means_no_sibling() {
        let mut spec = ServerSpec::xeon_e5_2697_v4();
        spec.threads_per_core = 1;
        let t = Topology::new(spec);
        assert_eq!(t.logical_cores(), 18);
        assert_eq!(t.sibling_of(3), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn physical_of_rejects_out_of_range() {
        Topology::xeon_e5_2697_v4().physical_of(36);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn rejects_too_many_logical_cores() {
        let mut spec = ServerSpec::xeon_e5_2697_v4();
        spec.physical_cores = 64;
        Topology::new(spec);
    }

    #[test]
    fn spec_round_trips_through_serde() {
        let t = Topology::xeon_e5_2697_v4();
        let json = serde_json::to_string(&t).unwrap();
        let back: Topology = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}

//! Simulated datacenter server substrate for the OSML reproduction.
//!
//! The OSML scheduler (FAST '23) observes a machine exclusively through a
//! small set of performance counters (Table 3 of the paper) and acts on it
//! exclusively through three knobs:
//!
//! * **core affinity** (`taskset`) — which logical cores a service's threads
//!   may run on,
//! * **LLC way allocation** (Intel CAT) — a contiguous bitmask of last-level
//!   cache ways,
//! * **memory-bandwidth throttling** (Intel MBA) — a per-service cap on local
//!   memory bandwidth.
//!
//! This crate models exactly that interface. It provides:
//!
//! * [`Topology`] — socket/physical-core/logical-core layout, LLC geometry and
//!   memory-bandwidth capacity (the paper's testbed, a Xeon E5-2697 v4, is
//!   available as [`Topology::xeon_e5_2697_v4`]),
//! * [`CoreSet`] and [`WayMask`] — typed resource bitmaps with the validity
//!   rules of the real hardware (CAT requires *contiguous* way masks),
//! * [`MbaThrottle`] — MBA-style bandwidth caps in 10 % steps,
//! * [`Allocation`] — one service's `<cores, ways, bandwidth>` vector,
//! * [`CounterSample`] — one pqos/PMU observation (the 11 Model-A features of
//!   Table 3 plus response latency),
//! * [`Substrate`] — the trait schedulers drive; the analytic co-location
//!   simulator in `osml-workloads` implements it.
//!
//! # Example
//!
//! ```
//! use osml_platform::{Topology, CoreSet, WayMask, Allocation, MbaThrottle};
//!
//! let topo = Topology::xeon_e5_2697_v4();
//! assert_eq!(topo.logical_cores(), 36);
//! assert_eq!(topo.llc_ways(), 20);
//!
//! // Six dedicated cores, ways 0..=9, no bandwidth throttling.
//! let alloc = Allocation::new(
//!     CoreSet::first_n(6),
//!     WayMask::contiguous(0, 10).unwrap(),
//!     MbaThrottle::unthrottled(),
//! );
//! assert_eq!(alloc.cores.count(), 6);
//! assert_eq!(alloc.ways.count(), 10);
//! assert!((alloc.cache_mb(&topo) - 22.5).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alloc;
pub mod control;
mod counters;
mod error;
pub mod faults;
mod mba;
pub mod node_faults;
mod schedule;
mod substrate;
mod topology;
mod ways;

pub use alloc::{Allocation, CoreSet};
pub use control::{
    Channel, ChannelPlan, ChannelStats, ControlChannel, Envelope, LossyChannel, NodeCommand,
    NodeReply, PartitionWindow, PerfectChannel, SendReport, SeqWindow,
};
pub use counters::{CounterSample, LatencyStats};
pub use error::{ErrorClass, PlatformError};
pub use faults::{
    hash01, FailWindow, FaultPlan, FaultProfile, FaultRecord, FaultySubstrate, InjectedFault,
};
pub use mba::MbaThrottle;
pub use node_faults::{
    NodeChurnProfile, NodeCrash, NodeDegrade, NodeFaultPlan, NodeHealth, NodeOutage,
};
pub use schedule::{Placement, RejectReason, Scheduler, SloClass};
pub use substrate::{AppId, Substrate};
pub use topology::{ServerSpec, Topology};
pub use ways::WayMask;

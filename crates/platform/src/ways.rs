use crate::{PlatformError, Topology};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A last-level-cache way mask, as programmed into an Intel CAT
/// class-of-service register.
///
/// Real CAT hardware imposes two validity rules which this type enforces at
/// construction: the mask must be **non-empty** and **contiguous** (e.g.
/// `0b0011_1100` is legal, `0b0101` is not). Masks of different services may
/// overlap — that is how OSML shares LLC ways between neighbours
/// (Algorithm 4 of the paper).
///
/// # Example
///
/// ```
/// use osml_platform::WayMask;
///
/// let a = WayMask::contiguous(0, 10)?; // ways 0..=9
/// let b = WayMask::contiguous(8, 4)?;  // ways 8..=11
/// assert_eq!(a.count(), 10);
/// assert_eq!(a.intersection_count(b), 2); // ways 8 and 9 are shared
/// assert!(WayMask::from_bits(0b0101).is_err()); // not contiguous
/// # Ok::<(), osml_platform::PlatformError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WayMask(u32);

impl WayMask {
    /// Builds a mask from raw bits.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidWayMask`] if the bits are empty or not
    /// contiguous, matching the constraint CAT hardware enforces.
    pub fn from_bits(bits: u32) -> Result<Self, PlatformError> {
        if bits == 0 {
            return Err(PlatformError::InvalidWayMask { bits });
        }
        // A contiguous run of ones, shifted down by its trailing zeros, is of
        // the form 2^k - 1.
        let norm = bits >> bits.trailing_zeros();
        if norm & (norm + 1) != 0 {
            return Err(PlatformError::InvalidWayMask { bits });
        }
        Ok(WayMask(bits))
    }

    /// Builds the mask covering `count` ways starting at way `first`.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidWayMask`] if `count` is zero or the
    /// range exceeds 32 ways.
    pub fn contiguous(first: usize, count: usize) -> Result<Self, PlatformError> {
        if count == 0 || first + count > 32 {
            return Err(PlatformError::InvalidWayMask { bits: 0 });
        }
        let bits = if count == 32 { u32::MAX } else { ((1u32 << count) - 1) << first };
        Ok(WayMask(bits))
    }

    /// The mask covering the `n` lowest ways.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or greater than 32. Use [`WayMask::contiguous`]
    /// for a fallible variant.
    pub fn first_n(n: usize) -> Self {
        WayMask::contiguous(0, n).expect("n must be in 1..=32")
    }

    /// The mask covering every way of `topo`'s LLC.
    pub fn all(topo: &Topology) -> Self {
        WayMask::first_n(topo.llc_ways())
    }

    /// Raw mask bits.
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Number of ways in the mask.
    pub fn count(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Index of the lowest way in the mask.
    pub fn first(self) -> usize {
        self.0.trailing_zeros() as usize
    }

    /// Index one past the highest way in the mask.
    pub fn end(self) -> usize {
        32 - self.0.leading_zeros() as usize
    }

    /// Whether any way of `self` is also in `other`.
    pub fn overlaps(self, other: WayMask) -> bool {
        self.0 & other.0 != 0
    }

    /// Number of ways shared with `other`.
    pub fn intersection_count(self, other: WayMask) -> usize {
        (self.0 & other.0).count_ones() as usize
    }

    /// Grows or shrinks the mask by `delta` ways (positive grows towards
    /// higher way indices first, then lower; negative shrinks from the high
    /// end), clamped so the result stays a valid mask of at least one way
    /// within `total_ways`.
    ///
    /// This is how the simulator applies Model-C's `Δways` actions: the mask
    /// stays contiguous, the way the `pqos`-driven allocator in the original
    /// OSML userspace daemon keeps masks contiguous.
    pub fn resized(self, delta: i32, total_ways: usize) -> WayMask {
        let count = self.count() as i32 + delta;
        let count = count.clamp(1, total_ways as i32) as usize;
        let mut first = self.first();
        if first + count > total_ways {
            first = total_ways - count;
        }
        WayMask::contiguous(first, count).expect("clamped range is valid")
    }

    /// Checks the mask fits within `topo`'s LLC.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::WayOutOfRange`] if the mask uses ways beyond
    /// the machine's way count.
    pub fn validate(self, topo: &Topology) -> Result<(), PlatformError> {
        if self.end() > topo.llc_ways() {
            return Err(PlatformError::WayOutOfRange {
                way: self.end() - 1,
                total: topo.llc_ways(),
            });
        }
        Ok(())
    }

    /// Cache capacity this mask covers on `topo`, in MB.
    pub fn capacity_mb(self, topo: &Topology) -> f64 {
        self.count() as f64 * topo.way_mb()
    }
}

impl fmt::Display for WayMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ways[{}..{}]", self.first(), self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_masks_are_accepted() {
        for first in 0..20 {
            for count in 1..=(20 - first) {
                let m = WayMask::contiguous(first, count).unwrap();
                assert_eq!(m.count(), count);
                assert_eq!(m.first(), first);
                assert_eq!(m.end(), first + count);
            }
        }
    }

    #[test]
    fn non_contiguous_masks_are_rejected() {
        for bits in [0u32, 0b101, 0b1001, 0b110011, 0b10000001] {
            assert!(WayMask::from_bits(bits).is_err(), "{bits:#b}");
        }
    }

    #[test]
    fn full_width_mask_is_valid() {
        let m = WayMask::contiguous(0, 32).unwrap();
        assert_eq!(m.count(), 32);
        assert_eq!(m.bits(), u32::MAX);
    }

    #[test]
    fn overlap_detection() {
        let a = WayMask::contiguous(0, 10).unwrap();
        let b = WayMask::contiguous(8, 4).unwrap();
        let c = WayMask::contiguous(12, 8).unwrap();
        assert!(a.overlaps(b));
        assert!(!a.overlaps(c));
        assert_eq!(a.intersection_count(b), 2);
        assert_eq!(b.intersection_count(c), 0);
    }

    #[test]
    fn resize_grows_and_shrinks_within_bounds() {
        let m = WayMask::contiguous(0, 10).unwrap();
        assert_eq!(m.resized(3, 20).count(), 13);
        assert_eq!(m.resized(-3, 20).count(), 7);
        // Clamped at 1 way minimum.
        assert_eq!(m.resized(-15, 20).count(), 1);
        // Clamped at the machine's way count.
        assert_eq!(m.resized(30, 20).count(), 20);
    }

    #[test]
    fn resize_keeps_mask_inside_llc() {
        let m = WayMask::contiguous(15, 5).unwrap(); // ways 15..20
        let grown = m.resized(3, 20);
        assert_eq!(grown.count(), 8);
        assert!(grown.end() <= 20);
    }

    #[test]
    fn validate_respects_topology() {
        let topo = Topology::xeon_e5_2697_v4();
        assert!(WayMask::contiguous(0, 20).unwrap().validate(&topo).is_ok());
        assert!(WayMask::contiguous(0, 21).unwrap().validate(&topo).is_err());
        assert!(WayMask::contiguous(19, 2).unwrap().validate(&topo).is_err());
    }

    #[test]
    fn capacity_of_testbed_way_is_2_25_mb() {
        let topo = Topology::xeon_e5_2697_v4();
        let m = WayMask::first_n(4);
        assert!((m.capacity_mb(&topo) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn display_shows_range() {
        let m = WayMask::contiguous(2, 3).unwrap();
        assert_eq!(m.to_string(), "ways[2..5]");
    }
}

//! Deterministic fault injection for any [`Substrate`].
//!
//! Real CAT/MBA programming is an MSR write that fails transiently under
//! contention; `taskset` races dying tasks; `pqos`/PMU reads drop windows or
//! return garbage. The schedulers in this repository are exercised against
//! those failure modes through [`FaultySubstrate`], a decorator that injects
//! faults according to a seeded [`FaultPlan`]:
//!
//! * **transient actuation errors** — [`Substrate::reallocate`] fails with
//!   [`PlatformError::ActuationFailed`]`{ transient: true }` with a
//!   configurable per-call probability,
//! * **outage windows** — scripted `[start, end)` intervals during which
//!   *every* actuation fails (a wedged resctrl interface),
//! * **counter dropout** — [`Substrate::sample`] returns `None` (a missed
//!   `pqos` window),
//! * **stale counters** — `sample` returns the previous window's values,
//! * **counter corruption** — `sample` returns NaN-poisoned garbage (a torn
//!   MSR read), which consumers must catch via
//!   [`CounterSample::is_valid`],
//! * **counter noise** — multiplicative jitter on the continuous counters
//!   (valid but wrong data),
//! * **actuation latency** — a per-call delay charged to an accounting
//!   meter (the simulated clock is *not* perturbed, so a zero-probability
//!   plan stays bit-identical to the bare substrate).
//!
//! Every decision derives from a hash of `(seed, call index)`, so a given
//! plan plus a given call sequence yields the identical fault trace on
//! every run — faults are an *input*, not an accident, and tests can assert
//! on the exact trace via [`FaultySubstrate::records`].
//!
//! The decorator faults the *data plane* only: `remove` (process teardown
//! goes through the OS, not the MSR path), `advance`, `now`, `apps`,
//! `allocation` and `latency` (measured at the load balancer, not on the
//! machine) pass through untouched, and harness-side control-plane calls
//! (launching services, changing offered load) should go through
//! [`FaultySubstrate::inner_mut`].

use crate::{Allocation, AppId, CounterSample, LatencyStats, PlatformError, Substrate, Topology};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BTreeMap;

/// A scripted interval `[start_s, end_s)` of simulated time during which
/// every actuation fails (transiently).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailWindow {
    /// Window start, seconds of simulated time (inclusive).
    pub start_s: f64,
    /// Window end, seconds of simulated time (exclusive).
    pub end_s: f64,
}

impl FailWindow {
    /// A window covering `[start_s, end_s)`.
    pub fn new(start_s: f64, end_s: f64) -> Self {
        FailWindow { start_s, end_s }
    }

    /// Whether `t` falls inside the window.
    pub fn contains(&self, t: f64) -> bool {
        t >= self.start_s && t < self.end_s
    }
}

/// The fault mix a [`FaultPlan`] injects. All probabilities are per call in
/// `[0, 1]`; a default-constructed profile injects nothing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultProfile {
    /// Probability that one `reallocate` call fails transiently.
    pub actuation_failure_prob: f64,
    /// Probability that one `sample` call returns `None` (dropped window).
    pub counter_dropout_prob: f64,
    /// Probability that one `sample` call returns the *previous* window's
    /// values instead of fresh ones.
    pub counter_stale_prob: f64,
    /// Probability that one `sample` call returns NaN-poisoned garbage.
    pub counter_corruption_prob: f64,
    /// Relative amplitude of multiplicative jitter on the continuous
    /// counters (0 disables). Noisy samples remain valid.
    pub counter_noise_sigma: f64,
    /// Latency charged per successful actuation, milliseconds (accounting
    /// only — the simulated clock is not perturbed).
    pub actuation_latency_ms: f64,
    /// Scripted outages: all actuations fail while `now()` is inside any of
    /// these windows.
    pub fail_windows: Vec<FailWindow>,
    /// If set, no faults of any kind are injected once `now()` reaches this
    /// time — models an incident that ends, so recovery behavior can be
    /// demonstrated deterministically.
    pub quiet_after_s: Option<f64>,
}

impl FaultProfile {
    /// A profile that injects nothing ([`FaultySubstrate`] becomes a
    /// transparent wrapper).
    pub fn none() -> Self {
        FaultProfile {
            actuation_failure_prob: 0.0,
            counter_dropout_prob: 0.0,
            counter_stale_prob: 0.0,
            counter_corruption_prob: 0.0,
            counter_noise_sigma: 0.0,
            actuation_latency_ms: 0.0,
            fail_windows: Vec::new(),
            quiet_after_s: None,
        }
    }

    /// The default chaos mix of the fault-tolerance experiment (Fig. 17):
    /// 5 % transient actuation failures plus 2 % counter dropout.
    pub fn chaos_default() -> Self {
        FaultProfile {
            actuation_failure_prob: 0.05,
            counter_dropout_prob: 0.02,
            ..FaultProfile::none()
        }
    }

    /// A profile scaled around the chaos default: `rate` is the transient
    /// actuation failure probability; dropout, staleness and corruption
    /// scale proportionally (2/5, 1/5 and 1/10 of `rate`).
    pub fn at_rate(rate: f64) -> Self {
        FaultProfile {
            actuation_failure_prob: rate,
            counter_dropout_prob: rate * 0.4,
            counter_stale_prob: rate * 0.2,
            counter_corruption_prob: rate * 0.1,
            ..FaultProfile::none()
        }
    }

    /// Whether this profile can inject anything at all.
    pub fn is_none(&self) -> bool {
        self.actuation_failure_prob <= 0.0
            && self.counter_dropout_prob <= 0.0
            && self.counter_stale_prob <= 0.0
            && self.counter_corruption_prob <= 0.0
            && self.counter_noise_sigma <= 0.0
            && self.actuation_latency_ms <= 0.0
            && self.fail_windows.is_empty()
    }
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile::none()
    }
}

/// A seeded fault schedule: the profile says *what* can go wrong, the seed
/// pins *when*. Identical plans driven through identical call sequences
/// produce identical fault traces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the per-call decision hash.
    pub seed: u64,
    /// The fault mix.
    pub profile: FaultProfile,
}

impl FaultPlan {
    /// A plan injecting `profile` under `seed`.
    pub fn new(seed: u64, profile: FaultProfile) -> Self {
        FaultPlan { seed, profile }
    }

    /// A plan that injects nothing.
    pub fn none() -> Self {
        FaultPlan { seed: 0, profile: FaultProfile::none() }
    }
}

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum InjectedFault {
    /// `reallocate` failed with a transient error (probabilistic).
    TransientActuationError,
    /// `reallocate` failed because `now()` was inside a [`FailWindow`].
    OutageWindow,
    /// `sample` returned `None`.
    CounterDropout,
    /// `sample` returned the previous window's values.
    CounterStale,
    /// `sample` returned NaN-poisoned garbage.
    CounterCorruption,
    /// `sample` returned jittered (but valid) values.
    CounterNoise,
    /// A successful actuation was charged `ms` of injected latency.
    ActuationDelay {
        /// Milliseconds charged to the latency meter.
        ms: f64,
    },
}

/// One injected fault, for trace assertions and chaos-run reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// Simulated time of the faulted call.
    pub time_s: f64,
    /// Monotone index of the faultable call (reallocate/sample) that drew
    /// this decision.
    pub call: u64,
    /// The service the call concerned.
    pub app: Option<AppId>,
    /// What was injected.
    pub fault: InjectedFault,
}

/// Interior state of the decorator; behind a `RefCell` because
/// [`Substrate::sample`] takes `&self` but must record injected faults.
#[derive(Debug, Default)]
struct FaultState {
    /// Count of faultable calls so far (the decision-hash counter).
    calls: u64,
    records: Vec<FaultRecord>,
    /// Last genuine sample observed per app (source of stale reads).
    last_seen: BTreeMap<AppId, CounterSample>,
    injected_latency_ms: f64,
}

/// SplitMix64-style hash of `(seed, call, salt)` to a uniform `f64` in
/// `[0, 1)`. Stateless per call, so the fault trace depends only on the
/// plan and the call sequence — never on thread scheduling. Shared with
/// the whole-node fault model in [`crate::node_faults`], which keys it by
/// `(node, interval)` instead of a call counter.
pub(crate) fn decision(seed: u64, call: u64, salt: u64) -> f64 {
    hash01(seed, call, salt)
}

/// Public handle on the shared SplitMix64 decision hash, for upper layers
/// that need seeded uniform draws keyed to a stream index without carrying
/// RNG state (the cluster's random-placement baseline draws here). Salts
/// must be disjoint from the fault salts of this crate (1–5, 101–102,
/// 201–205).
pub fn hash01(seed: u64, call: u64, salt: u64) -> f64 {
    let mut z =
        seed ^ call.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A [`Substrate`] decorator that injects deterministic faults per a
/// [`FaultPlan`]. See the module docs for the fault vocabulary.
#[derive(Debug)]
pub struct FaultySubstrate<S: Substrate> {
    inner: S,
    plan: FaultPlan,
    state: RefCell<FaultState>,
}

impl<S: Substrate> FaultySubstrate<S> {
    /// Wraps `inner`, injecting faults per `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        FaultySubstrate { inner, plan, state: RefCell::new(FaultState::default()) }
    }

    /// The wrapped substrate (read-only).
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Control-plane access to the wrapped substrate — launching services
    /// and changing offered load are harness operations that bypass fault
    /// injection.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Unwraps the decorator.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// The active plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Every fault injected so far, in call order.
    pub fn records(&self) -> Vec<FaultRecord> {
        self.state.borrow().records.clone()
    }

    /// Number of faults injected so far.
    pub fn fault_count(&self) -> usize {
        self.state.borrow().records.len()
    }

    /// Total actuation latency charged so far, milliseconds.
    pub fn injected_latency_ms(&self) -> f64 {
        self.state.borrow().injected_latency_ms
    }

    /// Whether injection is live at the current simulated time (respects
    /// `quiet_after_s`).
    fn active(&self) -> bool {
        match self.plan.profile.quiet_after_s {
            Some(quiet) => self.inner.now() < quiet,
            None => true,
        }
    }

    fn record(&self, app: Option<AppId>, call: u64, fault: InjectedFault) {
        let time_s = self.inner.now();
        self.state.borrow_mut().records.push(FaultRecord { time_s, call, app, fault });
    }

    /// Draws the next call index.
    fn next_call(&self) -> u64 {
        let mut st = self.state.borrow_mut();
        let c = st.calls;
        st.calls += 1;
        c
    }
}

/// Salts separating the decision streams of the different fault knobs.
const SALT_ACTUATION: u64 = 1;
const SALT_DROPOUT: u64 = 2;
const SALT_STALE: u64 = 3;
const SALT_CORRUPT: u64 = 4;
const SALT_NOISE: u64 = 5;

impl<S: Substrate> Substrate for FaultySubstrate<S> {
    fn topology(&self) -> &Topology {
        self.inner.topology()
    }

    fn reallocate(&mut self, id: AppId, alloc: Allocation) -> Result<(), PlatformError> {
        let p = &self.plan.profile;
        if self.active() && !p.is_none() {
            let call = self.next_call();
            let now = self.inner.now();
            if p.fail_windows.iter().any(|w| w.contains(now)) {
                self.record(Some(id), call, InjectedFault::OutageWindow);
                return Err(PlatformError::ActuationFailed { transient: true });
            }
            if p.actuation_failure_prob > 0.0
                && decision(self.plan.seed, call, SALT_ACTUATION) < p.actuation_failure_prob
            {
                self.record(Some(id), call, InjectedFault::TransientActuationError);
                return Err(PlatformError::ActuationFailed { transient: true });
            }
            if p.actuation_latency_ms > 0.0 {
                let ms = p.actuation_latency_ms;
                self.record(Some(id), call, InjectedFault::ActuationDelay { ms });
                self.state.borrow_mut().injected_latency_ms += ms;
            }
        }
        self.inner.reallocate(id, alloc)
    }

    fn remove(&mut self, id: AppId) -> Result<(), PlatformError> {
        // Teardown goes through the OS, not the MSR path: never faulted.
        self.state.borrow_mut().last_seen.remove(&id);
        self.inner.remove(id)
    }

    fn advance(&mut self, seconds: f64) {
        self.inner.advance(seconds);
    }

    fn now(&self) -> f64 {
        self.inner.now()
    }

    fn apps(&self) -> Vec<AppId> {
        self.inner.apps()
    }

    fn allocation(&self, id: AppId) -> Option<Allocation> {
        self.inner.allocation(id)
    }

    fn sample(&self, id: AppId) -> Option<CounterSample> {
        let fresh = self.inner.sample(id)?;
        let p = &self.plan.profile;
        if !self.active() || p.is_none() {
            return Some(fresh);
        }
        let call = self.next_call();
        let seed = self.plan.seed;
        // Stale reads return the *previous* genuine sample, so snapshot it
        // before updating the per-app history with this window's values.
        let previous = self.state.borrow().last_seen.get(&id).copied();
        self.state.borrow_mut().last_seen.insert(id, fresh);
        if p.counter_dropout_prob > 0.0
            && decision(seed, call, SALT_DROPOUT) < p.counter_dropout_prob
        {
            self.record(Some(id), call, InjectedFault::CounterDropout);
            return None;
        }
        if p.counter_stale_prob > 0.0 && decision(seed, call, SALT_STALE) < p.counter_stale_prob {
            if let Some(old) = previous {
                self.record(Some(id), call, InjectedFault::CounterStale);
                return Some(old);
            }
        }
        if p.counter_corruption_prob > 0.0
            && decision(seed, call, SALT_CORRUPT) < p.counter_corruption_prob
        {
            self.record(Some(id), call, InjectedFault::CounterCorruption);
            // A torn read: poisoned rates, an impossible negative latency.
            return Some(CounterSample {
                ipc: f64::NAN,
                llc_misses_per_sec: f64::NAN,
                response_latency_ms: -1.0,
                ..fresh
            });
        }
        if p.counter_noise_sigma > 0.0 {
            self.record(Some(id), call, InjectedFault::CounterNoise);
            // Multiplicative jitter on the continuous counters; allocation
            // counts are exact (the scheduler programmed them itself).
            let jitter = |salt_off: u64| {
                let u = decision(seed, call, SALT_NOISE + salt_off);
                (1.0 + p.counter_noise_sigma * (2.0 * u - 1.0)).max(0.0)
            };
            return Some(CounterSample {
                ipc: fresh.ipc * jitter(0),
                llc_misses_per_sec: fresh.llc_misses_per_sec * jitter(1),
                mbl_gbps: fresh.mbl_gbps * jitter(2),
                cpu_usage: fresh.cpu_usage * jitter(3),
                llc_occupancy_mb: fresh.llc_occupancy_mb * jitter(4),
                response_latency_ms: fresh.response_latency_ms * jitter(5),
                ..fresh
            });
        }
        Some(fresh)
    }

    fn peek_sample(&self, id: AppId) -> Option<CounterSample> {
        // Speculative read: bypasses the fault machinery entirely so the
        // per-call decision stream (and the staleness history) is exactly
        // what a scheduler that never peeked would see.
        self.inner.sample(id)
    }

    fn latency(&self, id: AppId) -> Option<LatencyStats> {
        // Measured at the load generator, not on the machine: never faulted.
        self.inner.latency(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CoreSet, MbaThrottle, WayMask};

    /// Minimal in-memory substrate (mirrors the one in `substrate.rs`).
    #[derive(Debug, Clone)]
    struct Ledger {
        topo: Topology,
        apps: BTreeMap<AppId, Allocation>,
        clock: f64,
    }

    impl Ledger {
        fn new() -> Self {
            Ledger { topo: Topology::xeon_e5_2697_v4(), apps: BTreeMap::new(), clock: 0.0 }
        }
        fn place(&mut self, id: u64) {
            self.apps.insert(
                AppId(id),
                Allocation::new(
                    CoreSet::first_n(2),
                    WayMask::contiguous(0, 2).unwrap(),
                    MbaThrottle::unthrottled(),
                ),
            );
        }
    }

    impl Substrate for Ledger {
        fn topology(&self) -> &Topology {
            &self.topo
        }
        fn reallocate(&mut self, id: AppId, alloc: Allocation) -> Result<(), PlatformError> {
            alloc.validate(&self.topo)?;
            match self.apps.get_mut(&id) {
                Some(a) => {
                    *a = alloc;
                    Ok(())
                }
                None => Err(PlatformError::UnknownApp { id: id.0 }),
            }
        }
        fn remove(&mut self, id: AppId) -> Result<(), PlatformError> {
            self.apps.remove(&id).map(|_| ()).ok_or(PlatformError::UnknownApp { id: id.0 })
        }
        fn advance(&mut self, seconds: f64) {
            self.clock += seconds;
        }
        fn now(&self) -> f64 {
            self.clock
        }
        fn apps(&self) -> Vec<AppId> {
            self.apps.keys().copied().collect()
        }
        fn allocation(&self, id: AppId) -> Option<Allocation> {
            self.apps.get(&id).copied()
        }
        fn sample(&self, id: AppId) -> Option<CounterSample> {
            self.apps.get(&id).map(|a| CounterSample {
                ipc: 1.0 + self.clock * 0.01,
                llc_misses_per_sec: 1.0e6,
                mbl_gbps: 2.0,
                cpu_usage: 1.5,
                memory_util_gb: 1.0,
                virt_memory_gb: 1.5,
                res_memory_gb: 0.9,
                llc_occupancy_mb: 4.0,
                allocated_cores: a.cores.count(),
                allocated_ways: a.ways.count(),
                frequency_ghz: 2.3,
                response_latency_ms: 5.0,
            })
        }
        fn latency(&self, _id: AppId) -> Option<LatencyStats> {
            Some(LatencyStats {
                mean_ms: 2.0,
                p95_ms: 5.0,
                achieved_rps: 100.0,
                offered_rps: 100.0,
                qos_target_ms: 10.0,
            })
        }
    }

    fn some_alloc() -> Allocation {
        Allocation::new(
            CoreSet::first_n(4),
            WayMask::contiguous(0, 4).unwrap(),
            MbaThrottle::unthrottled(),
        )
    }

    #[test]
    fn zero_profile_is_transparent() {
        let mut bare = Ledger::new();
        bare.place(1);
        let mut faulty = FaultySubstrate::new(bare.clone(), FaultPlan::none());
        for step in 0..50 {
            assert_eq!(faulty.sample(AppId(1)), bare.sample(AppId(1)), "step {step}");
            assert_eq!(faulty.latency(AppId(1)), bare.latency(AppId(1)));
            assert_eq!(
                faulty.reallocate(AppId(1), some_alloc()),
                bare.reallocate(AppId(1), some_alloc())
            );
            assert_eq!(faulty.allocation(AppId(1)), bare.allocation(AppId(1)));
            faulty.advance(1.0);
            bare.advance(1.0);
            assert_eq!(faulty.now(), bare.now());
        }
        assert_eq!(faulty.fault_count(), 0);
        assert_eq!(faulty.injected_latency_ms(), 0.0);
    }

    #[test]
    fn peek_sample_does_not_shift_the_fault_stream() {
        let run = |peeks_per_step: usize| {
            let mut bare = Ledger::new();
            bare.place(1);
            let plan = FaultPlan::new(7, FaultProfile::at_rate(0.5));
            let mut faulty = FaultySubstrate::new(bare, plan);
            let mut trace = Vec::new();
            for _ in 0..100 {
                for _ in 0..peeks_per_step {
                    // Speculative reads: must not consume fault decisions,
                    // must not poison the staleness history, and must return
                    // the genuine (unfaulted) counters.
                    let peeked = faulty.peek_sample(AppId(1));
                    assert!(peeked.is_some_and(|s| s.ipc.is_finite()));
                }
                trace.push(faulty.sample(AppId(1)).map(|s| format!("{s:?}")));
                faulty.advance(1.0);
            }
            (trace, faulty.fault_count())
        };
        let baseline = run(0);
        assert_eq!(run(1), baseline);
        assert_eq!(run(5), baseline);
    }

    #[test]
    fn fault_trace_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut bare = Ledger::new();
            bare.place(1);
            let plan = FaultPlan::new(seed, FaultProfile::at_rate(0.3));
            let mut faulty = FaultySubstrate::new(bare, plan);
            let mut errors = 0usize;
            for _ in 0..200 {
                if faulty.reallocate(AppId(1), some_alloc()).is_err() {
                    errors += 1;
                }
                let _ = faulty.sample(AppId(1));
                faulty.advance(1.0);
            }
            (errors, faulty.records())
        };
        let (e1, r1) = run(7);
        let (e2, r2) = run(7);
        assert_eq!(e1, e2);
        assert_eq!(r1, r2);
        assert!(!r1.is_empty(), "a 30% plan must inject something in 400 calls");
        let (e3, r3) = run(8);
        assert!(e3 != e1 || r3 != r1, "different seeds should differ");
    }

    #[test]
    fn actuation_failures_are_transient_and_leave_state_untouched() {
        let mut bare = Ledger::new();
        bare.place(1);
        let before = bare.allocation(AppId(1)).unwrap();
        let plan =
            FaultPlan::new(3, FaultProfile { actuation_failure_prob: 1.0, ..FaultProfile::none() });
        let mut faulty = FaultySubstrate::new(bare, plan);
        let err = faulty.reallocate(AppId(1), some_alloc()).unwrap_err();
        assert!(err.is_transient());
        assert_eq!(faulty.allocation(AppId(1)), Some(before), "failed write must not apply");
        assert_eq!(faulty.fault_count(), 1);
    }

    #[test]
    fn fail_windows_block_all_actuations() {
        let mut bare = Ledger::new();
        bare.place(1);
        let profile =
            FaultProfile { fail_windows: vec![FailWindow::new(5.0, 10.0)], ..FaultProfile::none() };
        let mut faulty = FaultySubstrate::new(bare, FaultPlan::new(0, profile));
        assert!(faulty.reallocate(AppId(1), some_alloc()).is_ok(), "before the window");
        faulty.advance(6.0);
        assert!(faulty.reallocate(AppId(1), some_alloc()).is_err(), "inside the window");
        faulty.advance(5.0);
        assert!(faulty.reallocate(AppId(1), some_alloc()).is_ok(), "after the window");
        assert!(faulty.records().iter().any(|r| matches!(r.fault, InjectedFault::OutageWindow)));
    }

    #[test]
    fn dropout_returns_none_and_corruption_fails_validation() {
        let mut bare = Ledger::new();
        bare.place(1);
        let drop_plan =
            FaultPlan::new(1, FaultProfile { counter_dropout_prob: 1.0, ..FaultProfile::none() });
        let faulty = FaultySubstrate::new(bare.clone(), drop_plan);
        assert!(faulty.sample(AppId(1)).is_none());

        let corrupt_plan = FaultPlan::new(
            1,
            FaultProfile { counter_corruption_prob: 1.0, ..FaultProfile::none() },
        );
        let faulty = FaultySubstrate::new(bare, corrupt_plan);
        let s = faulty.sample(AppId(1)).expect("corruption returns a (garbage) sample");
        assert!(!s.is_valid(), "corrupted samples must fail validation");
    }

    #[test]
    fn stale_reads_return_the_previous_window() {
        let mut bare = Ledger::new();
        bare.place(1);
        let plan =
            FaultPlan::new(1, FaultProfile { counter_stale_prob: 1.0, ..FaultProfile::none() });
        let mut faulty = FaultySubstrate::new(bare, plan);
        // First read has no history: passes through fresh values.
        let first = faulty.sample(AppId(1)).unwrap();
        assert!(first.is_valid());
        faulty.advance(1.0);
        let second = faulty.sample(AppId(1)).unwrap();
        assert_eq!(second.ipc, first.ipc, "stale read repeats the previous window");
        assert!(faulty.records().iter().any(|r| matches!(r.fault, InjectedFault::CounterStale)));
    }

    #[test]
    fn noise_keeps_samples_valid_but_changes_them() {
        let mut bare = Ledger::new();
        bare.place(1);
        let clean = bare.sample(AppId(1)).unwrap();
        let plan =
            FaultPlan::new(1, FaultProfile { counter_noise_sigma: 0.2, ..FaultProfile::none() });
        let faulty = FaultySubstrate::new(bare, plan);
        let noisy = faulty.sample(AppId(1)).unwrap();
        assert!(noisy.is_valid());
        assert_ne!(noisy.ipc, clean.ipc);
        assert_eq!(noisy.allocated_cores, clean.allocated_cores, "counts stay exact");
    }

    #[test]
    fn quiet_after_silences_injection() {
        let mut bare = Ledger::new();
        bare.place(1);
        let profile = FaultProfile {
            actuation_failure_prob: 1.0,
            quiet_after_s: Some(10.0),
            ..FaultProfile::none()
        };
        let mut faulty = FaultySubstrate::new(bare, FaultPlan::new(0, profile));
        assert!(faulty.reallocate(AppId(1), some_alloc()).is_err());
        faulty.advance(10.0);
        assert!(faulty.reallocate(AppId(1), some_alloc()).is_ok());
        assert_eq!(faulty.fault_count(), 1, "nothing injected after the quiet point");
    }

    #[test]
    fn latency_injection_is_accounted_not_slept() {
        let mut bare = Ledger::new();
        bare.place(1);
        let plan =
            FaultPlan::new(0, FaultProfile { actuation_latency_ms: 2.5, ..FaultProfile::none() });
        let mut faulty = FaultySubstrate::new(bare, plan);
        let t0 = faulty.now();
        for _ in 0..4 {
            faulty.reallocate(AppId(1), some_alloc()).unwrap();
        }
        assert_eq!(faulty.now(), t0, "clock must not move");
        assert!((faulty.injected_latency_ms() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn plan_round_trips_through_serde() {
        let plan = FaultPlan::new(
            42,
            FaultProfile {
                fail_windows: vec![FailWindow::new(1.0, 2.0)],
                quiet_after_s: Some(9.0),
                ..FaultProfile::chaos_default()
            },
        );
        let back: FaultPlan = serde_json::from_str(&serde_json::to_string(&plan).unwrap()).unwrap();
        assert_eq!(back, plan);
    }
}

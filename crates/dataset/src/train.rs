use crate::corpus::{
    model_a_corpus, model_b_corpus, model_b_prime_corpus, model_c_transitions, SweepConfig,
};
use osml_ml::{TrainReport, TrainerConfig};
use osml_models::{ModelA, ModelB, ModelBPrime, ModelC};
use serde::{Deserialize, Serialize};

/// End-to-end training configuration: which sweep to collect and how to fit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingConfig {
    /// Data-collection sweep.
    pub sweep: SweepConfig,
    /// Supervised-training hyper-parameters (Model-A/B/B′).
    pub trainer: TrainerConfig,
    /// Offline DQN updates for Model-C after its pool is filled.
    pub dqn_steps: usize,
    /// Seed for model initialization.
    pub seed: u64,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig {
            sweep: SweepConfig::default(),
            trainer: TrainerConfig { epochs: 60, batch_size: 128, ..TrainerConfig::default() },
            dqn_steps: 300,
            seed: 0x051a,
        }
    }
}

/// Trains Model-A end to end: sweep → corpus → fit.
pub fn train_model_a(cfg: &TrainingConfig) -> (ModelA, TrainReport) {
    let corpus = model_a_corpus(&cfg.sweep);
    let mut model = ModelA::new(36, 20, cfg.seed);
    let report = model.train(&corpus.x, &corpus.y, cfg.trainer.clone());
    (model, report)
}

/// Trains Model-B end to end.
pub fn train_model_b(cfg: &TrainingConfig) -> (ModelB, TrainReport) {
    let corpus = model_b_corpus(&cfg.sweep);
    let mut model = ModelB::new(36, 20, cfg.seed ^ 0xb);
    let report = model.train(&corpus.x, &corpus.y, cfg.trainer.clone());
    (model, report)
}

/// Trains Model-B′ end to end.
pub fn train_model_b_prime(cfg: &TrainingConfig) -> (ModelBPrime, TrainReport) {
    let corpus = model_b_prime_corpus(&cfg.sweep);
    let mut model = ModelBPrime::new(cfg.seed ^ 0xbb);
    let report = model.train(&corpus.x, &corpus.y, cfg.trainer.clone());
    (model, report)
}

/// Trains Model-C offline: fills the experience pool with sweep-derived
/// transitions (§IV-C) and runs `dqn_steps` updates.
pub fn train_model_c(cfg: &TrainingConfig) -> ModelC {
    let transitions = model_c_transitions(&cfg.sweep);
    let mut model = ModelC::new(cfg.seed ^ 0xc);
    for (before, action, after) in &transitions {
        model.observe(before, *action, after);
    }
    for _ in 0..cfg.dqn_steps {
        model.train_step();
    }
    model
}

/// The full trained model suite the OSML controller consumes.
#[derive(Debug, Clone)]
pub struct TrainedModels {
    /// Model-A and its training report.
    pub model_a: ModelA,
    /// Model-A's training report.
    pub report_a: TrainReport,
    /// Model-B.
    pub model_b: ModelB,
    /// Model-B's training report.
    pub report_b: TrainReport,
    /// Model-B′.
    pub model_b_prime: ModelBPrime,
    /// Model-B′'s training report.
    pub report_b_prime: TrainReport,
    /// Model-C (offline-pretrained; keeps learning online).
    pub model_c: ModelC,
}

impl TrainedModels {
    /// Trains the whole suite from one configuration.
    ///
    /// The four heads (Model-A, B, B′ and C) are independent given the
    /// configuration, so they are trained fork-join in parallel whenever the
    /// sweep's effective job count exceeds one; results are bit-identical to
    /// the sequential order because each head derives its own seed.
    pub fn train(cfg: &TrainingConfig) -> TrainedModels {
        let jobs = cfg.sweep.effective_jobs();
        let (
            ((model_a, report_a), (model_b, report_b)),
            ((model_b_prime, report_b_prime), model_c),
        ) = osml_ml::par::join(
            jobs,
            || osml_ml::par::join(jobs, || train_model_a(cfg), || train_model_b(cfg)),
            || osml_ml::par::join(jobs, || train_model_b_prime(cfg), || train_model_c(cfg)),
        );
        TrainedModels {
            model_a,
            report_a,
            model_b,
            report_b,
            model_b_prime,
            report_b_prime,
            model_c,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osml_platform::Topology;
    use osml_workloads::oaa::LatencyGrid;
    use osml_workloads::Service;

    fn quick_cfg(services: &[Service]) -> TrainingConfig {
        TrainingConfig {
            sweep: SweepConfig {
                core_step: 3,
                way_step: 3,
                thread_counts: vec![16],
                rps_indices: vec![0, 2, 4],
                extra_load_fractions: vec![],
                noise_sigma: 0.005,
                seed: 0x7e57,
                services: services.to_vec(),
                jobs: None,
            },
            trainer: TrainerConfig { epochs: 300, batch_size: 64, ..TrainerConfig::default() },
            dqn_steps: 100,
            seed: 1,
        }
    }

    #[test]
    fn trained_model_a_localizes_the_oaa() {
        let cfg = quick_cfg(&[Service::Moses, Service::Xapian]);
        let (model, report) = train_model_a(&cfg);
        assert!(
            report.train_metrics.rmse < 0.12,
            "model-a underfit: rmse {}",
            report.train_metrics.rmse
        );

        // Prediction check: sample Moses at a mid allocation and compare the
        // predicted OAA with ground truth.
        let topo = Topology::xeon_e5_2697_v4();
        let truth = LatencyGrid::sweep(&topo, Service::Moses, 16, 2400.0).oaa().unwrap();
        let mut probe = crate::FeatureProbe::new(Service::Moses, 16, 2400.0, 0.0, 9);
        let sample = probe.sample_at(10, 10);
        let pred = model.predict(&sample);
        assert!(
            (pred.oaa.cores as i64 - truth.cores as i64).abs() <= 6,
            "OAA cores: predicted {} vs truth {}",
            pred.oaa.cores,
            truth.cores
        );
        assert!(
            (pred.oaa.ways as i64 - truth.ways as i64).abs() <= 6,
            "OAA ways: predicted {} vs truth {}",
            pred.oaa.ways,
            truth.ways
        );
    }

    #[test]
    fn trained_model_b_prime_prices_deprivation() {
        let mut cfg = quick_cfg(&[Service::Moses]);
        // The B' corpus is small (49 rows per load point), so give the fit
        // a deeper budget than the quick default.
        cfg.trainer.epochs = 400;
        cfg.trainer.batch_size = 32;
        let (model, report) = train_model_b_prime(&cfg);
        assert!(report.train_metrics.rmse < 0.35, "rmse {}", report.train_metrics.rmse);
        let mut probe = crate::FeatureProbe::new(Service::Moses, 16, 2200.0, 0.0, 10);
        let sample = probe.sample_at(10, 8);
        // Deeper deprivation must predict no less slowdown (within noise).
        let shallow = model.predict(&sample, 1, 0);
        let deep = model.predict(&sample, 5, 3);
        assert!(deep >= shallow - 0.05, "shallow {shallow} vs deep {deep}");
    }

    #[test]
    fn trained_model_c_pool_is_filled() {
        let mut cfg = quick_cfg(&[Service::Moses]);
        cfg.dqn_steps = 20;
        let model = train_model_c(&cfg);
        assert!(model.pool_len() > 100, "pool {}", model.pool_len());
    }
}

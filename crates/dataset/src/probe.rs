use osml_platform::{
    Allocation, AppId, CoreSet, CounterSample, MbaThrottle, Substrate, Topology, WayMask,
};
use osml_workloads::{LaunchSpec, Service, SimConfig, SimServer};

/// A reusable solo-service probe: launches one service on a private
/// simulator and samples its counters at arbitrary `<cores, ways>`
/// allocations.
///
/// This is the data-collection harness of the paper's Fig. 5: one service
/// alone on the testbed, allocation swept cell by cell, counters recorded
/// after a 2-second window.
#[derive(Debug)]
pub struct FeatureProbe {
    server: SimServer,
    id: AppId,
    topo: Topology,
}

impl FeatureProbe {
    /// Launches `service` with `threads` threads at `offered_rps` on a fresh
    /// simulator. `noise_sigma` > 0 adds the run-to-run jitter real traces
    /// carry (training sets use a little; evaluation uses none).
    pub fn new(
        service: Service,
        threads: usize,
        offered_rps: f64,
        noise_sigma: f64,
        seed: u64,
    ) -> Self {
        let topo = Topology::xeon_e5_2697_v4();
        let mut server = SimServer::new(SimConfig { topology: topo.clone(), noise_sigma, seed });
        let alloc = Allocation::whole_machine(&topo);
        let id = server
            .launch(LaunchSpec { service, threads, offered_rps }, alloc)
            .expect("whole-machine allocation is valid");
        FeatureProbe { server, id, topo }
    }

    /// Samples the service's counters at `<cores, ways>` after a 2-second
    /// window. Cores are picked spread-first across physical cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` or `ways` are 0 or exceed the machine.
    pub fn sample_at(&mut self, cores: usize, ways: usize) -> CounterSample {
        let picked =
            CoreSet::all(&self.topo).pick_spread(&self.topo, cores).expect("cores within machine");
        let mask = WayMask::contiguous(0, ways).expect("ways within machine");
        let alloc = Allocation::new(picked, mask, MbaThrottle::unthrottled());
        self.server.reallocate(self.id, alloc).expect("probe app is placed");
        self.server.advance(2.0);
        self.server.sample(self.id).expect("probe app is placed")
    }

    /// Changes the offered load without relaunching.
    pub fn set_load(&mut self, offered_rps: f64) {
        self.server.set_load(self.id, offered_rps).expect("probe app is placed");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_reflects_the_requested_allocation() {
        let mut probe = FeatureProbe::new(Service::Moses, 16, 2200.0, 0.0, 1);
        let s = probe.sample_at(8, 12);
        assert_eq!(s.allocated_cores, 8);
        assert_eq!(s.allocated_ways, 12);
        assert!(s.response_latency_ms > 0.0);
    }

    #[test]
    fn starved_allocation_shows_higher_latency() {
        let mut probe = FeatureProbe::new(Service::Xapian, 24, 4000.0, 0.0, 2);
        let rich = probe.sample_at(16, 16);
        let poor = probe.sample_at(2, 2);
        assert!(poor.response_latency_ms > rich.response_latency_ms);
    }

    #[test]
    fn set_load_changes_counters() {
        let mut probe = FeatureProbe::new(Service::ImgDnn, 36, 2000.0, 0.0, 3);
        let low = probe.sample_at(12, 10);
        probe.set_load(5500.0);
        let high = probe.sample_at(12, 10);
        assert!(high.cpu_usage > low.cpu_usage);
    }

    #[test]
    fn deterministic_given_zero_noise() {
        let mut a = FeatureProbe::new(Service::Login, 8, 900.0, 0.0, 4);
        let mut b = FeatureProbe::new(Service::Login, 8, 900.0, 0.0, 5);
        assert_eq!(a.sample_at(4, 4), b.sample_at(4, 4));
    }
}

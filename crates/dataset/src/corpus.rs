use crate::probe::FeatureProbe;
use osml_ml::Matrix;
use osml_models::features;
use osml_models::{Action, ModelA, ModelB};
use osml_platform::{CounterSample, Topology};
use osml_workloads::oaa::{AllocPoint, LatencyGrid};
use osml_workloads::Service;
use serde::{Deserialize, Serialize};

/// Density and scope of a data-collection sweep.
///
/// The paper's full methodology (36 thread counts × 36 core counts × 20 way
/// counts × every Table-1 load × 11 services ≈ 1.4 M allocation cases) is
/// [`SweepConfig::paper`]; the default is a laptop-scale subsample that
/// trains usable models in seconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Services to sweep.
    pub services: Vec<Service>,
    /// Stride over core counts (1 = every count, the paper's setting).
    pub core_step: usize,
    /// Stride over way counts.
    pub way_step: usize,
    /// Thread counts to launch (the paper sweeps 36 down to 1).
    pub thread_counts: Vec<usize>,
    /// Which of each service's Table-1 loads to use (indices; out-of-range
    /// indices are skipped so one config fits all services).
    pub rps_indices: Vec<usize>,
    /// Additional loads expressed as fractions of the nominal max RPS. The
    /// co-location experiments sweep 10..100 % of max load, which dips below
    /// the smallest Table-1 RPS; training must cover that range or Model-A
    /// extrapolates.
    pub extra_load_fractions: Vec<f64>,
    /// Trace noise during collection (real traces jitter; a little noise
    /// regularizes training).
    pub noise_sigma: f64,
    /// Base seed.
    pub seed: u64,
    /// Worker threads for the sweep; `None` defers to `OSML_JOBS` (and then
    /// the machine). Any value yields bit-identical corpora: every load
    /// point derives its seed from its own coordinates.
    pub jobs: Option<usize>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            services: Service::table1().to_vec(),
            core_step: 2,
            way_step: 2,
            thread_counts: vec![16, 36],
            rps_indices: vec![0, 2, 4],
            extra_load_fractions: vec![0.15, 0.3, 0.5],
            noise_sigma: 0.01,
            seed: 0x0a11,
            jobs: None,
        }
    }
}

impl SweepConfig {
    /// The paper's full sweep (§IV-A): every thread count 1..=36, every core
    /// count, every way count, every Table-1 load. Expensive — minutes of
    /// CPU — but faithful.
    pub fn paper() -> Self {
        SweepConfig {
            services: Service::table1().to_vec(),
            core_step: 1,
            way_step: 1,
            thread_counts: (1..=36).rev().collect(),
            rps_indices: (0..6).collect(),
            extra_load_fractions: vec![0.1, 0.2, 0.3, 0.4, 0.5],
            noise_sigma: 0.01,
            seed: 0x0a11,
            jobs: None,
        }
    }

    /// A tiny sweep for unit tests.
    pub fn tiny(services: &[Service]) -> Self {
        SweepConfig {
            services: services.to_vec(),
            core_step: 6,
            way_step: 5,
            thread_counts: vec![16],
            rps_indices: vec![0, 3],
            extra_load_fractions: vec![],
            noise_sigma: 0.0,
            seed: 0x7e57,
            jobs: None,
        }
    }

    fn cores_swept(&self, topo: &Topology) -> Vec<usize> {
        (1..=topo.logical_cores()).step_by(self.core_step.max(1)).collect()
    }

    fn ways_swept(&self, topo: &Topology) -> Vec<usize> {
        (1..=topo.llc_ways()).step_by(self.way_step.max(1)).collect()
    }

    /// The worker-thread count this sweep will actually use: the explicit
    /// [`jobs`](SweepConfig::jobs) override if set, else
    /// [`osml_ml::par::jobs_from_env`].
    pub fn effective_jobs(&self) -> usize {
        self.jobs.unwrap_or_else(osml_ml::par::jobs_from_env)
    }

    /// The `(service, offered_rps)` pairs this sweep covers.
    pub fn load_points(&self) -> Vec<(Service, f64)> {
        let mut out = Vec::new();
        for &s in &self.services {
            for &i in &self.rps_indices {
                if let Some(&rps) = s.params().table1_rps.get(i) {
                    out.push((s, rps));
                }
            }
            for &f in &self.extra_load_fractions {
                let rps = s.params().nominal_max_rps() * f;
                if rps > 0.0 {
                    out.push((s, rps));
                }
            }
        }
        out
    }
}

/// A supervised training corpus: one feature row per case in `x`, the
/// matching label row in `y`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Corpus {
    /// Feature matrix (row per sample).
    pub x: Matrix,
    /// Label matrix (row per sample).
    pub y: Matrix,
}

impl Corpus {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.x.rows()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.x.rows() == 0
    }

    fn from_rows(features: Vec<Vec<f32>>, labels: Vec<Vec<f32>>) -> Corpus {
        assert_eq!(features.len(), labels.len());
        assert!(!features.is_empty(), "corpus must not be empty");
        let fx = features[0].len();
        let fy = labels[0].len();
        let mut x = Matrix::zeros(features.len(), fx);
        let mut y = Matrix::zeros(labels.len(), fy);
        for (i, row) in features.iter().enumerate() {
            x.row_mut(i).copy_from_slice(row);
        }
        for (i, row) in labels.iter().enumerate() {
            y.row_mut(i).copy_from_slice(row);
        }
        Corpus { x, y }
    }
}

/// Builds the Model-A corpus (§IV-A, Fig. 5): counters at every swept
/// allocation, labelled with that `(service, threads, load)`'s OAA, OAA
/// bandwidth and RCliff. Cases whose load is infeasible even on the whole
/// machine are skipped (they have no OAA to learn).
pub fn model_a_corpus(cfg: &SweepConfig) -> Corpus {
    let topo = Topology::xeon_e5_2697_v4();
    let cores = cfg.cores_swept(&topo);
    let ways = cfg.ways_swept(&topo);
    let mut features_rows = Vec::new();
    let mut label_rows = Vec::new();

    let jobs: Vec<(Service, f64, usize)> = cfg
        .load_points()
        .into_iter()
        .flat_map(|(s, rps)| cfg.thread_counts.iter().map(move |&t| (s, rps, t)))
        .collect();

    let results: Vec<Vec<(Vec<f32>, Vec<f32>)>> =
        sweep_map(cfg, &jobs, |&(service, rps, threads)| {
            let grid = LatencyGrid::sweep(&topo, service, threads, rps);
            let (Some(oaa), Some(cliff), Some(bw)) =
                (grid.oaa(), grid.rcliff(), grid.oaa_bandwidth_gbps())
            else {
                return Vec::new();
            };
            let label = ModelA::encode_label(oaa, bw, cliff).to_vec();
            let seed = cfg.seed ^ (service as u64) << 8 ^ threads as u64 ^ (rps as u64) << 16;
            let mut probe = FeatureProbe::new(service, threads, rps, cfg.noise_sigma, seed);
            let mut rows = Vec::with_capacity(cores.len() * ways.len());
            for &c in &cores {
                for &w in &ways {
                    let sample = probe.sample_at(c, w);
                    rows.push((features::model_a_input(&sample), label.clone()));
                }
            }
            rows
        });
    for rows in results {
        for (f, l) in rows {
            features_rows.push(f);
            label_rows.push(l);
        }
    }
    Corpus::from_rows(features_rows, label_rows)
}

/// QoS-slowdown budgets the Model-B corpus labels (≤ 5 %, 10 %, … as in
/// Fig. 6).
pub const SLOWDOWN_BUDGETS: [f64; 4] = [0.05, 0.10, 0.15, 0.20];

/// Base allocations the Model-B/B′ sweeps start from: the OAA itself plus
/// over-provisioned holdings (a service OSML later deprives is often above
/// its OAA, and the models must price trades from *any* current holding).
const BASE_OFFSETS: [(usize, usize); 4] = [(0, 0), (2, 1), (4, 2), (6, 4)];

/// Builds the Model-B corpus (§IV-B, Fig. 6): starting from each
/// `(service, load)`'s OAA, reduce resources along the three angles and
/// label the largest deprivation whose QoS slowdown stays within each
/// budget.
pub fn model_b_corpus(cfg: &SweepConfig) -> Corpus {
    let topo = Topology::xeon_e5_2697_v4();
    let jobs = cfg.load_points();
    let results: Vec<Vec<(Vec<f32>, Vec<f32>)>> = sweep_map(cfg, &jobs, |&(service, rps)| {
        let threads = service.params().default_threads;
        let grid = LatencyGrid::sweep(&topo, service, threads, rps);
        let Some(oaa) = grid.oaa() else { return Vec::new() };
        let seed = cfg.seed ^ 0xb ^ (service as u64) << 8 ^ (rps as u64) << 16;
        let mut probe = FeatureProbe::new(service, threads, rps, cfg.noise_sigma, seed);
        let mut rows = Vec::new();
        for &(oc, ow) in &BASE_OFFSETS {
            let base = AllocPoint::new(
                (oaa.cores + oc).min(grid.max_cores),
                (oaa.ways + ow).min(grid.max_ways),
            );
            let sample = probe.sample_at(base.cores, base.ways);
            for &budget in &SLOWDOWN_BUDGETS {
                let balanced = walk_deprivation(&grid, base, budget, 1, 1);
                let cores_dom = walk_deprivation(&grid, base, budget, 2, 1);
                let ways_dom = walk_deprivation(&grid, base, budget, 1, 2);
                rows.push((
                    features::model_b_input(&sample, budget),
                    ModelB::encode_label([balanced, cores_dom, ways_dom]).to_vec(),
                ));
            }
        }
        rows
    });
    Corpus::from_rows(
        results.iter().flatten().map(|(f, _)| f.clone()).collect(),
        results.iter().flatten().map(|(_, l)| l.clone()).collect(),
    )
}

/// Builds the Model-B′ corpus: counters at the OAA plus a proposed
/// deprivation, labelled with the slowdown that deprivation causes (clipped
/// at 200 %; infeasible deprivations — below 1 core / 1 way — are labelled
/// 0, the paper's "non-existent case" convention; a genuinely free trade is
/// labelled a hair above 0 so the masked loss still trains it).
pub fn model_b_prime_corpus(cfg: &SweepConfig) -> Corpus {
    let topo = Topology::xeon_e5_2697_v4();
    let jobs = cfg.load_points();
    let results: Vec<Vec<(Vec<f32>, Vec<f32>)>> = sweep_map(cfg, &jobs, |&(service, rps)| {
        let threads = service.params().default_threads;
        let grid = LatencyGrid::sweep(&topo, service, threads, rps);
        let Some(oaa) = grid.oaa() else { return Vec::new() };
        let seed = cfg.seed ^ 0xbb ^ (service as u64) << 8 ^ (rps as u64) << 16;
        let mut probe = FeatureProbe::new(service, threads, rps, cfg.noise_sigma, seed);
        let mut rows = Vec::new();
        for &(oc, ow) in &BASE_OFFSETS {
            let base = AllocPoint::new(
                (oaa.cores + oc).min(grid.max_cores),
                (oaa.ways + ow).min(grid.max_ways),
            );
            let sample = probe.sample_at(base.cores, base.ways);
            let base_p95 = grid.p95(base);
            for dc in 0..=8usize {
                for dw in 0..=8usize {
                    let label = if base.cores > dc && base.ways > dw {
                        let p = AllocPoint::new(base.cores - dc, base.ways - dw);
                        let slowdown = qos_slowdown(grid.p95(p), base_p95);
                        (slowdown as f32).max(REAL_ZERO_LABEL)
                    } else {
                        0.0 // non-existent case
                    };
                    rows.push((features::model_b_prime_input(&sample, dc, dw), vec![label]));
                }
            }
        }
        rows
    });
    Corpus::from_rows(
        results.iter().flatten().map(|(f, _)| f.clone()).collect(),
        results.iter().flatten().map(|(_, l)| l.clone()).collect(),
    )
}

/// One offline Model-C training tuple: counters before, the action, counters
/// after. The reward is recomputed by `ModelC::observe` from the latencies.
pub type CTransition = (CounterSample, Action, CounterSample);

/// Builds Model-C's offline corpus (§IV-C): for each swept base allocation,
/// pair it with every neighbour reachable by one action (≤ 3 cores and ≤ 3
/// ways of difference — the paper only pairs tuples within that distance),
/// yielding `<Status, Action, Status'>` transitions.
pub fn model_c_transitions(cfg: &SweepConfig) -> Vec<CTransition> {
    let topo = Topology::xeon_e5_2697_v4();
    let cores = cfg.cores_swept(&topo);
    let ways = cfg.ways_swept(&topo);
    let max_cores = topo.logical_cores() as i32;
    let max_ways = topo.llc_ways() as i32;
    let jobs = cfg.load_points();
    let results: Vec<Vec<CTransition>> = sweep_map(cfg, &jobs, |&(service, rps)| {
        let threads = service.params().default_threads;
        let seed = cfg.seed ^ 0xc ^ (service as u64) << 8 ^ (rps as u64) << 16;
        let mut probe = FeatureProbe::new(service, threads, rps, cfg.noise_sigma, seed);
        let mut out = Vec::new();
        for &c in &cores {
            for &w in &ways {
                let before = probe.sample_at(c, w);
                for action_idx in 0..osml_models::ACTIONS {
                    let action = Action::from_index(action_idx);
                    if action.dcores == 0 && action.dways == 0 {
                        continue;
                    }
                    let c2 = c as i32 + action.dcores;
                    let w2 = w as i32 + action.dways;
                    if c2 < 1 || c2 > max_cores || w2 < 1 || w2 > max_ways {
                        continue;
                    }
                    let after = probe.sample_at(c2 as usize, w2 as usize);
                    out.push((before, action, after));
                }
            }
        }
        out
    });
    results.into_iter().flatten().collect()
}

/// Order-preserving parallel map over sweep load points, honouring the
/// sweep's [`jobs`](SweepConfig::jobs) override.
fn sweep_map<T: Sync, R: Send>(
    cfg: &SweepConfig,
    items: &[T],
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    osml_ml::par::parallel_map_jobs(cfg.effective_jobs(), items, f)
}

/// Label given to a slowdown that is genuinely ~0 (free trade), so the
/// zero-masked loss distinguishes it from the paper's "non-existent case"
/// (which is labelled exactly 0 and masked out).
const REAL_ZERO_LABEL: f32 = 1e-3;

/// QoS slowdown of a deprivation, measured against the service's latency at
/// its OAA (the paper's Fig. 6 labels deprivation steps with graduated
/// ≤5 %, ≤10 %, … slowdowns — gradation that only exists relative to the
/// current latency, since the QoS frontier hugs the saturation cliff).
fn qos_slowdown(p95_new: f64, p95_base: f64) -> f64 {
    (p95_new / p95_base.max(1e-9) - 1.0).clamp(0.0, 2.0)
}

/// Walks a deprivation from `oaa` with the given per-step core/way ratio,
/// returning the largest `(cores_taken, ways_taken)` whose slowdown stays
/// within `budget`. Returns `None` when even the first step busts the budget
/// (the paper's non-existent case).
fn walk_deprivation(
    grid: &LatencyGrid,
    oaa: AllocPoint,
    budget: f64,
    core_stride: usize,
    way_stride: usize,
) -> Option<(usize, usize)> {
    let base = grid.p95(oaa);
    let slowdown = |p: AllocPoint| qos_slowdown(grid.p95(p), base);
    let mut best: Option<(usize, usize)> = None;
    let (mut dc, mut dw) = (0usize, 0usize);
    loop {
        let (next_dc, next_dw) = (dc + core_stride, dw + way_stride);
        if oaa.cores <= next_dc || oaa.ways <= next_dw {
            break;
        }
        let p = AllocPoint::new(oaa.cores - next_dc, oaa.ways - next_dw);
        if slowdown(p) > budget {
            break;
        }
        dc = next_dc;
        dw = next_dw;
        best = Some((dc, dw));
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_a_corpus_has_consistent_shapes() {
        let cfg = SweepConfig::tiny(&[Service::Moses]);
        let corpus = model_a_corpus(&cfg);
        assert!(!corpus.is_empty());
        assert_eq!(corpus.x.cols(), features::BASE_FEATURES);
        assert_eq!(corpus.y.cols(), 5);
        // All labels of a (service, threads, rps) group are identical; with
        // one service, one thread count and two loads there are at most two
        // distinct label rows.
        let mut labels: Vec<Vec<u32>> = (0..corpus.len())
            .map(|i| corpus.y.row(i).iter().map(|v| v.to_bits()).collect())
            .collect();
        labels.sort();
        labels.dedup();
        assert!(labels.len() <= 2, "expected at most 2 label groups, got {}", labels.len());
    }

    #[test]
    fn corpus_sweep_is_bit_identical_across_job_counts() {
        let base = SweepConfig::tiny(&[Service::Moses, Service::Xapian]);
        let at_jobs = |jobs: usize| SweepConfig { jobs: Some(jobs), ..base.clone() };
        // Bit-exact equality (Matrix compares raw f32 data): every load
        // point derives its seed from its own coordinates, so the worker
        // count must not matter.
        assert_eq!(model_a_corpus(&at_jobs(1)), model_a_corpus(&at_jobs(4)));
        assert_eq!(model_b_corpus(&at_jobs(1)), model_b_corpus(&at_jobs(4)));
        assert_eq!(model_b_prime_corpus(&at_jobs(1)), model_b_prime_corpus(&at_jobs(4)));
        assert_eq!(model_c_transitions(&at_jobs(1)), model_c_transitions(&at_jobs(4)));
    }

    #[test]
    fn infeasible_loads_are_skipped() {
        // Sphinx at its lowest load is feasible; at an impossible load the
        // sweep must produce nothing rather than bogus labels. Build a config
        // whose only load index is out of range => empty load points.
        let cfg = SweepConfig {
            rps_indices: vec![99],
            services: vec![Service::Moses],
            ..SweepConfig::tiny(&[Service::Moses])
        };
        assert!(cfg.load_points().is_empty());
    }

    #[test]
    fn model_b_corpus_budget_monotonicity() {
        let cfg = SweepConfig::tiny(&[Service::Moses]);
        let corpus = model_b_corpus(&cfg);
        assert!(!corpus.is_empty());
        assert_eq!(corpus.x.cols(), features::MODEL_B_INPUTS);
        assert_eq!(corpus.y.cols(), 6);
        // Rows come in budget groups of 4 per load point; within a group the
        // balanced-policy total must not shrink as the budget grows.
        for group in (0..corpus.len()).step_by(4) {
            let mut last = -1.0f32;
            for k in 0..4 {
                let row = corpus.y.row(group + k);
                let total = row[0] + row[1];
                assert!(total >= last - 1e-6, "budget increase must not shrink the trade");
                last = total;
            }
        }
    }

    #[test]
    fn model_b_prime_labels_grow_with_deprivation_depth() {
        let cfg = SweepConfig::tiny(&[Service::Xapian]);
        let corpus = model_b_prime_corpus(&cfg);
        assert_eq!(corpus.x.cols(), features::MODEL_B_PRIME_INPUTS);
        // Per load point rows iterate dc 0..=6 x dw 0..=6; the (0,0) row is
        // a free trade — labelled with the tiny real-zero marker, not the
        // masked non-existent 0.
        assert_eq!(corpus.y.row(0)[0], 1e-3);
        // And labels are within the clip range.
        for i in 0..corpus.len() {
            let v = corpus.y.row(i)[0];
            assert!((0.0..=2.0).contains(&v), "label {v} out of range");
        }
    }

    #[test]
    fn model_c_transitions_respect_the_action_range() {
        let cfg = SweepConfig::tiny(&[Service::Moses]);
        let ts = model_c_transitions(&cfg);
        assert!(!ts.is_empty());
        for (before, action, after) in &ts {
            assert!(action.dcores.abs() <= 3 && action.dways.abs() <= 3);
            assert!(action.dcores != 0 || action.dways != 0);
            let dc = after.allocated_cores as i32 - before.allocated_cores as i32;
            let dw = after.allocated_ways as i32 - before.allocated_ways as i32;
            assert_eq!((dc, dw), (action.dcores, action.dways), "action must match the cells");
        }
    }

    #[test]
    fn walk_deprivation_respects_budget() {
        let topo = Topology::xeon_e5_2697_v4();
        let grid = LatencyGrid::sweep(&topo, Service::Moses, 16, 2200.0);
        let oaa = grid.oaa().unwrap();
        let qos = Service::Moses.params().qos_ms;
        if let Some((dc, dw)) = walk_deprivation(&grid, oaa, 0.10, 1, 1) {
            let p = AllocPoint::new(oaa.cores - dc, oaa.ways - dw);
            let slowdown = (grid.p95(p) / qos - 1.0).max(0.0);
            assert!(slowdown <= 0.10 + 1e-9, "slowdown {slowdown} busts the budget");
        }
    }

    #[test]
    fn paper_config_is_full_density() {
        let cfg = SweepConfig::paper();
        assert_eq!(cfg.core_step, 1);
        assert_eq!(cfg.way_step, 1);
        assert_eq!(cfg.thread_counts.len(), 36);
        assert_eq!(cfg.services.len(), 11);
    }
}

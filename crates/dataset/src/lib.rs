//! Training-corpus generation, reproducing the paper's data-collection
//! methodology (§IV) against the simulated testbed.
//!
//! The paper's corpus was gathered over nine months on real hardware:
//! for every service and every common RPS, launch `t = 36, 35, …, 1`
//! threads, map them onto `c = 36, 35, …, 1` cores, allocate `w = 1…20`
//! LLC ways, and record the performance trace of each case, labelling it
//! with the OAA, RCliff and OAA bandwidth (Fig. 5). Model-B's corpus
//! reduces resources from the OAA along three angles and labels each step
//! with its QoS slowdown (Fig. 6). Model-C's corpus pairs Model-A tuples
//! whose allocations differ by at most 3 cores / 3 ways and scores the
//! implied action with the reward function.
//!
//! This crate runs the same sweeps against `osml-workloads`' simulator.
//! [`SweepConfig`] scales the sweep density: the defaults regenerate a
//! laptop-sized corpus in seconds; `SweepConfig::paper()` matches the
//! paper's full grid.
//!
//! End-to-end entry points ([`train_model_a`], [`train_model_b`],
//! [`train_model_b_prime`], [`train_model_c`]) produce trained models ready
//! for the OSML controller.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corpus;
mod probe;
mod train;

pub use corpus::{
    model_a_corpus, model_b_corpus, model_b_prime_corpus, model_c_transitions, Corpus, SweepConfig,
};
pub use probe::FeatureProbe;
pub use train::{
    train_model_a, train_model_b, train_model_b_prime, train_model_c, TrainedModels, TrainingConfig,
};

use crate::mlp::{Mlp, ParamGrads};
use serde::{Deserialize, Serialize};

/// A gradient-descent rule applied to an [`Mlp`]'s parameters.
pub trait Optimizer {
    /// Applies one update step from the given gradients.
    fn step(&mut self, mlp: &mut Mlp, grads: &ParamGrads);
}

/// Plain stochastic gradient descent: `θ ← θ − η ∇L`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate `η`.
    pub learning_rate: f32,
}

impl Sgd {
    /// Creates an SGD optimizer with the given learning rate.
    pub fn new(learning_rate: f32) -> Self {
        Sgd { learning_rate }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, mlp: &mut Mlp, grads: &ParamGrads) {
        for (li, layer) in mlp.layers_mut().iter_mut().enumerate() {
            for (w, &g) in layer.weights.as_mut_slice().iter_mut().zip(grads.weights[li].as_slice())
            {
                *w -= self.learning_rate * g;
            }
            for (b, &g) in layer.bias.iter_mut().zip(&grads.biases[li]) {
                *b -= self.learning_rate * g;
            }
        }
    }
}

/// Hyper-parameters of [`Adam`]. Defaults are the standard
/// `β₁ = 0.9, β₂ = 0.999, ε = 1e-8, η = 1e-3` the paper uses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Learning rate `η`.
    pub learning_rate: f32,
    /// First-moment decay `β₁`.
    pub beta1: f32,
    /// Second-moment decay `β₂`.
    pub beta2: f32,
    /// Numerical-stability constant `ε`.
    pub epsilon: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig { learning_rate: 1e-3, beta1: 0.9, beta2: 0.999, epsilon: 1e-8 }
    }
}

/// The Adam optimizer, exactly as written in §IV-A of the paper:
///
/// ```text
/// m_t = β₁ m_{t-1} + (1 - β₁) g_t        v_t = β₂ v_{t-1} + (1 - β₂) g_t²
/// m̂_t = m_t / (1 - β₁ᵗ)                 v̂_t = v_t / (1 - β₂ᵗ)
/// θ_{t+1} = θ_t − η m̂_t / (√v̂_t + ε)
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    config: AdamConfig,
    /// First moments, flattened per layer: weights then bias.
    m: Vec<Vec<f32>>,
    /// Second moments, same layout as `m`.
    v: Vec<Vec<f32>>,
    /// Time step `t` (for bias correction).
    t: i32,
}

impl Adam {
    /// Creates an Adam optimizer sized for `mlp` with custom hyper-parameters.
    pub fn new(mlp: &Mlp, config: AdamConfig) -> Self {
        let sizes: Vec<usize> =
            mlp.layers().iter().map(|l| l.weights.as_slice().len() + l.bias.len()).collect();
        Adam {
            config,
            m: sizes.iter().map(|&s| vec![0.0; s]).collect(),
            v: sizes.iter().map(|&s| vec![0.0; s]).collect(),
            t: 0,
        }
    }

    /// Creates an Adam optimizer with the default hyper-parameters.
    pub fn with_defaults(mlp: &Mlp) -> Self {
        Adam::new(mlp, AdamConfig::default())
    }

    /// Number of update steps taken so far.
    pub fn steps(&self) -> i32 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, mlp: &mut Mlp, grads: &ParamGrads) {
        self.t += 1;
        let c = self.config;
        let bias_corr1 = 1.0 - c.beta1.powi(self.t);
        let bias_corr2 = 1.0 - c.beta2.powi(self.t);
        for (li, layer) in mlp.layers_mut().iter_mut().enumerate() {
            let m = &mut self.m[li];
            let v = &mut self.v[li];
            let grad_iter =
                grads.weights[li].as_slice().iter().chain(grads.biases[li].iter()).copied();
            let param_iter = layer.weights.as_mut_slice().iter_mut().chain(layer.bias.iter_mut());
            for (((param, g), mi), vi) in param_iter.zip(grad_iter).zip(m).zip(v) {
                *mi = c.beta1 * *mi + (1.0 - c.beta1) * g;
                *vi = c.beta2 * *vi + (1.0 - c.beta2) * g * g;
                let m_hat = *mi / bias_corr1;
                let v_hat = *vi / bias_corr2;
                *param -= c.learning_rate * m_hat / (v_hat.sqrt() + c.epsilon);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::Mse;
    use crate::{Matrix, MlpConfig};

    #[test]
    fn adam_bias_correction_makes_first_step_full_size() {
        // With g constant, the very first Adam step should be ≈ η (that is
        // the point of bias correction).
        let mut mlp = Mlp::new(&MlpConfig::new(&[1, 1], 0));
        let w0 = mlp.layers()[0].weights[(0, 0)];
        let mut adam = Adam::with_defaults(&mlp);
        let x = Matrix::from_rows(&[&[1.0]]);
        // Pick a target far away so the gradient sign is stable.
        let y = Matrix::from_rows(&[&[w0 + 100.0]]);
        mlp.train_batch(&x, &y, &Mse, &mut adam);
        let w1 = mlp.layers()[0].weights[(0, 0)];
        let step = (w1 - w0).abs();
        assert!((step - 1e-3).abs() < 1e-4, "first Adam step should be ~learning rate, got {step}");
        assert_eq!(adam.steps(), 1);
    }

    #[test]
    fn adam_converges_on_ill_scaled_input() {
        // Feature scales differ by 100x; Adam's per-parameter step size
        // normalization should still drive the loss to ~zero.
        let xs = [[0.01f32, 1.0], [0.02, 2.0], [0.03, 3.0], [0.04, 4.0]];
        let x = Matrix::from_rows(&[&xs[0], &xs[1], &xs[2], &xs[3]]);
        let y = Matrix::from_vec(4, 1, xs.iter().map(|r| 100.0 * r[0] + r[1]).collect());
        let mut mlp = Mlp::new(&MlpConfig::new(&[2, 8, 1], 21));
        let mut adam = Adam::with_defaults(&mlp);
        let mut last = f32::INFINITY;
        for _ in 0..3000 {
            last = mlp.train_batch(&x, &y, &Mse, &mut adam);
        }
        assert!(last < 0.05, "Adam failed to converge: loss {last}");
    }

    #[test]
    fn sgd_moves_against_gradient() {
        let mut mlp = Mlp::new(&MlpConfig::new(&[1, 1], 1));
        let before = mlp.layers()[0].weights[(0, 0)];
        let x = Matrix::from_rows(&[&[1.0]]);
        let y = Matrix::from_rows(&[&[before + 10.0]]);
        let mut sgd = Sgd::new(0.1);
        mlp.train_batch(&x, &y, &Mse, &mut sgd);
        let after = mlp.layers()[0].weights[(0, 0)];
        assert!(after > before, "weight must move toward the target");
    }

    #[test]
    fn optimizer_state_serializes() {
        let mlp = Mlp::new(&MlpConfig::new(&[2, 3, 1], 2));
        let adam = Adam::with_defaults(&mlp);
        let json = serde_json::to_string(&adam).unwrap();
        let back: Adam = serde_json::from_str(&json).unwrap();
        assert_eq!(back, adam);
    }
}

//! Loss functions: standard MSE (Model-A) and the paper's zero-masked
//! relative loss (Model-B / Model-B').

use crate::Matrix;

/// A differentiable loss over a batch of predictions.
///
/// Implementations return the scalar batch loss and the gradient
/// `∂L/∂prediction` with the same shape as the prediction matrix.
pub trait Loss {
    /// Scalar loss over the batch.
    fn value(&self, prediction: &Matrix, target: &Matrix) -> f32;
    /// Gradient of the loss w.r.t. each prediction element.
    fn gradient(&self, prediction: &Matrix, target: &Matrix) -> Matrix;
}

/// Mean squared error, `L = 1/n Σ (s - y)²` — the Model-A loss (§IV-A).
///
/// `n` counts elements, so multi-output heads are averaged uniformly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Mse;

impl Loss for Mse {
    fn value(&self, prediction: &Matrix, target: &Matrix) -> f32 {
        assert_eq!(prediction.dims(), target.dims(), "loss shape mismatch");
        let n = prediction.as_slice().len() as f32;
        prediction
            .as_slice()
            .iter()
            .zip(target.as_slice())
            .map(|(&s, &y)| (s - y) * (s - y))
            .sum::<f32>()
            / n
    }

    fn gradient(&self, prediction: &Matrix, target: &Matrix) -> Matrix {
        assert_eq!(prediction.dims(), target.dims(), "loss shape mismatch");
        let n = prediction.as_slice().len() as f32;
        let (rows, cols) = prediction.dims();
        let data = prediction
            .as_slice()
            .iter()
            .zip(target.as_slice())
            .map(|(&s, &y)| 2.0 * (s - y) / n)
            .collect();
        Matrix::from_vec(rows, cols, data)
    }
}

/// The paper's Model-B loss (§IV-B):
///
/// ```text
/// L = 1/n Σ ( y/(y + C) · (s - y) )²
/// ```
///
/// with `C` infinitesimally small. Non-existent resource-trading cases are
/// labelled `y = 0` during data collection; the `y/(y+C)` factor zeroes
/// their contribution (and their gradient), so backpropagation never adjusts
/// weights toward fictitious labels while real labels (`y > 0`, where
/// `y/(y+C) ≈ 1`) train normally.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaskedRelativeMse {
    /// The constant `C`; the paper wants it "infinitely close to zero".
    pub c: f32,
}

impl Default for MaskedRelativeMse {
    fn default() -> Self {
        MaskedRelativeMse { c: 1e-6 }
    }
}

impl MaskedRelativeMse {
    fn weight(&self, y: f32) -> f32 {
        y / (y + self.c)
    }
}

impl Loss for MaskedRelativeMse {
    fn value(&self, prediction: &Matrix, target: &Matrix) -> f32 {
        assert_eq!(prediction.dims(), target.dims(), "loss shape mismatch");
        let n = prediction.as_slice().len() as f32;
        prediction
            .as_slice()
            .iter()
            .zip(target.as_slice())
            .map(|(&s, &y)| {
                let e = self.weight(y) * (s - y);
                e * e
            })
            .sum::<f32>()
            / n
    }

    fn gradient(&self, prediction: &Matrix, target: &Matrix) -> Matrix {
        assert_eq!(prediction.dims(), target.dims(), "loss shape mismatch");
        let n = prediction.as_slice().len() as f32;
        let (rows, cols) = prediction.dims();
        let data = prediction
            .as_slice()
            .iter()
            .zip(target.as_slice())
            .map(|(&s, &y)| {
                let w = self.weight(y);
                2.0 * w * w * (s - y) / n
            })
            .collect();
        Matrix::from_vec(rows, cols, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_of_perfect_prediction_is_zero() {
        let p = Matrix::from_rows(&[&[1.0, 2.0]]);
        assert_eq!(Mse.value(&p, &p), 0.0);
        assert!(Mse.gradient(&p, &p).as_slice().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn mse_value_and_gradient_match_hand_computation() {
        let p = Matrix::from_rows(&[&[3.0, 0.0]]);
        let y = Matrix::from_rows(&[&[1.0, 0.0]]);
        // L = ((3-1)^2 + 0) / 2 = 2
        assert_eq!(Mse.value(&p, &y), 2.0);
        // dL/ds0 = 2*(3-1)/2 = 2
        assert_eq!(Mse.gradient(&p, &y).as_slice(), &[2.0, 0.0]);
    }

    #[test]
    fn masked_loss_ignores_zero_labels() {
        let loss = MaskedRelativeMse::default();
        let p = Matrix::from_rows(&[&[5.0, 5.0]]);
        let y = Matrix::from_rows(&[&[0.0, 5.0]]);
        // The y=0 column contributes ~nothing despite the 5.0 error.
        assert!(loss.value(&p, &y) < 1e-6);
        let g = loss.gradient(&p, &y);
        assert!(g[(0, 0)].abs() < 1e-6, "zero label must not generate gradient");
    }

    #[test]
    fn masked_loss_trains_nonzero_labels_like_mse() {
        let loss = MaskedRelativeMse::default();
        let p = Matrix::from_rows(&[&[3.0]]);
        let y = Matrix::from_rows(&[&[1.0]]);
        // weight ≈ 1, so value ≈ (3-1)^2 / 1 = 4, gradient ≈ 4.
        assert!((loss.value(&p, &y) - 4.0).abs() < 1e-4);
        assert!((loss.gradient(&p, &y)[(0, 0)] - 4.0).abs() < 1e-4);
    }

    #[test]
    fn gradients_agree_with_finite_differences() {
        let losses: Vec<Box<dyn Loss>> =
            vec![Box::new(Mse), Box::new(MaskedRelativeMse::default())];
        let y = Matrix::from_rows(&[&[1.0, 0.0, 2.5]]);
        let p0 = Matrix::from_rows(&[&[0.7, 0.4, 3.1]]);
        let eps = 1e-3f32;
        for loss in &losses {
            let analytic = loss.gradient(&p0, &y);
            for i in 0..3 {
                let mut plus = p0.clone();
                plus.as_mut_slice()[i] += eps;
                let mut minus = p0.clone();
                minus.as_mut_slice()[i] -= eps;
                let numeric = (loss.value(&plus, &y) - loss.value(&minus, &y)) / (2.0 * eps);
                assert!(
                    (numeric - analytic.as_slice()[i]).abs() < 1e-2,
                    "finite-difference mismatch at {i}: {numeric} vs {}",
                    analytic.as_slice()[i]
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let p = Matrix::zeros(1, 2);
        let y = Matrix::zeros(1, 3);
        let _ = Mse.value(&p, &y);
    }
}

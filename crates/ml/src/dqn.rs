//! Deep Q-Network machinery for Model-C (§IV-C of the paper).
//!
//! Model-C contains two neural networks — a **Policy Network** and a
//! structurally identical **Target Network** — plus an **Experience Pool**.
//! Each scheduling step the policy network scores every action
//! (`Q(action)`), the best-scoring action is executed (or, with 5 %
//! probability, a random one, to escape local optima), and the observed
//! `<Status, Action, Reward, Status'>` tuple lands in the pool. Online
//! training samples 200 tuples and minimizes
//! `(Reward + γ·max Q_target(Status', a') − Q_policy(Status, Action))²`,
//! after which the target network is refreshed.
//!
//! The action semantics (Δcores/Δways in [-3, 3]) and the reward function
//! live in `osml-models`; this module is a generic, deterministic DQN.

use crate::loss::Mse;
use crate::{Adam, AdamConfig, Matrix, Mlp, MlpConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of a [`Dqn`] agent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DqnConfig {
    /// State vector width.
    pub state_dim: usize,
    /// Number of discrete actions.
    pub num_actions: usize,
    /// Hidden-layer widths (the paper uses `[30, 30, 30]`).
    pub hidden: Vec<usize>,
    /// Discount factor γ.
    pub gamma: f32,
    /// Exploration probability ε (the paper uses 0.05).
    pub epsilon: f64,
    /// Capacity of the experience pool (a ring buffer).
    pub replay_capacity: usize,
    /// Tuples sampled per online-training step (the paper uses 200).
    pub batch_size: usize,
    /// Policy-network updates between target-network syncs.
    pub target_sync_every: usize,
    /// Adam hyper-parameters for the policy network.
    pub adam: AdamConfig,
    /// Seed for initialization, exploration and replay sampling.
    pub seed: u64,
}

impl DqnConfig {
    /// The paper's Model-C configuration for the given state/action sizes.
    pub fn paper(state_dim: usize, num_actions: usize, seed: u64) -> Self {
        DqnConfig {
            state_dim,
            num_actions,
            hidden: vec![30, 30, 30],
            gamma: 0.9,
            epsilon: 0.05,
            replay_capacity: 10_000,
            batch_size: 200,
            target_sync_every: 20,
            adam: AdamConfig::default(),
            seed,
        }
    }
}

/// One experience tuple `<Status, Action, Reward, Status'>`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    /// State before the action.
    pub state: Vec<f32>,
    /// Index of the action taken.
    pub action: usize,
    /// Reward observed.
    pub reward: f32,
    /// State after the action.
    pub next_state: Vec<f32>,
}

/// The Experience Pool: a fixed-capacity ring buffer of transitions.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReplayBuffer {
    capacity: usize,
    items: Vec<Transition>,
    write: usize,
}

impl ReplayBuffer {
    /// Creates a buffer holding at most `capacity` transitions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        ReplayBuffer { capacity, items: Vec::with_capacity(capacity), write: 0 }
    }

    /// Stores a transition, evicting the oldest once full.
    pub fn push(&mut self, t: Transition) {
        if self.items.len() < self.capacity {
            self.items.push(t);
        } else {
            self.items[self.write] = t;
        }
        self.write = (self.write + 1) % self.capacity;
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Samples `n` transitions uniformly with replacement.
    pub fn sample<'a>(&'a self, n: usize, rng: &mut StdRng) -> Vec<&'a Transition> {
        (0..n).map(|_| &self.items[rng.gen_range(0..self.items.len())]).collect()
    }
}

/// A complete serialized [`Dqn`] agent: both networks, the experience pool,
/// the optimizer moments and the exploration RNG stream position. Restoring
/// a checkpoint with [`Dqn::restore`] resumes training and action selection
/// exactly where the checkpointed agent left off — the restored agent is
/// behaviourally indistinguishable from one that never stopped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DqnCheckpoint {
    /// The agent's configuration.
    pub config: DqnConfig,
    /// The policy network.
    pub policy: Mlp,
    /// The target network (may lag the policy between syncs).
    pub target: Mlp,
    /// The experience pool, including its ring write cursor.
    pub replay: ReplayBuffer,
    /// Adam first/second moments and step counter.
    pub adam: Adam,
    /// Raw state of the exploration/sampling RNG.
    pub rng_state: [u64; 4],
    /// Policy updates performed so far (drives target-sync cadence).
    pub updates: usize,
}

/// A Deep Q-Network agent: policy network, target network, experience pool.
///
/// # Example
///
/// ```
/// use osml_ml::dqn::{Dqn, DqnConfig, Transition};
///
/// let mut agent = Dqn::new(DqnConfig::paper(4, 3, 42));
/// let state = vec![0.1, 0.2, 0.3, 0.4];
/// let action = agent.select_action(&state);
/// assert!(action < 3);
/// agent.observe(Transition { state, action, reward: 1.0, next_state: vec![0.0; 4] });
/// ```
#[derive(Debug, Clone)]
pub struct Dqn {
    config: DqnConfig,
    policy: Mlp,
    target: Mlp,
    replay: ReplayBuffer,
    adam: Adam,
    rng: StdRng,
    updates: usize,
}

impl Dqn {
    /// Creates an agent with freshly initialized, identical policy and
    /// target networks.
    pub fn new(config: DqnConfig) -> Self {
        let mut sizes = vec![config.state_dim];
        sizes.extend_from_slice(&config.hidden);
        sizes.push(config.num_actions);
        let policy = Mlp::new(&MlpConfig::new(&sizes, config.seed));
        let target = policy.clone();
        let adam = Adam::new(&policy, config.adam);
        let replay = ReplayBuffer::new(config.replay_capacity);
        let rng = StdRng::seed_from_u64(config.seed ^ 0x9e37_79b9_7f4a_7c15);
        Dqn { config, policy, target, replay, adam, rng, updates: 0 }
    }

    /// The agent's configuration.
    pub fn config(&self) -> &DqnConfig {
        &self.config
    }

    /// Q-values of every action in `state`, from the policy network.
    pub fn q_values(&self, state: &[f32]) -> Vec<f32> {
        self.policy.forward(state)
    }

    /// The greedy (best-Q) action.
    pub fn best_action(&self, state: &[f32]) -> usize {
        argmax(&self.q_values(state))
    }

    /// ε-greedy action selection: the best action, or with probability ε a
    /// uniformly random one ("OSML can avoid falling into a local optimum",
    /// §IV-C).
    pub fn select_action(&mut self, state: &[f32]) -> usize {
        if self.rng.gen_bool(self.config.epsilon) {
            self.rng.gen_range(0..self.config.num_actions)
        } else {
            self.best_action(state)
        }
    }

    /// Adds a transition to the experience pool.
    pub fn observe(&mut self, t: Transition) {
        assert_eq!(t.state.len(), self.config.state_dim, "state width mismatch");
        assert_eq!(t.next_state.len(), self.config.state_dim, "state width mismatch");
        assert!(t.action < self.config.num_actions, "action out of range");
        self.replay.push(t);
    }

    /// Number of transitions currently pooled.
    pub fn pool_len(&self) -> usize {
        self.replay.len()
    }

    /// One online-training step: samples a batch, regresses the policy
    /// network toward the Bellman targets, and periodically syncs the target
    /// network. Returns the batch TD loss, or `None` if the pool holds fewer
    /// than a batch of transitions.
    pub fn train_step(&mut self) -> Option<f32> {
        if self.replay.len() < self.config.batch_size {
            return None;
        }
        let batch = self.replay.sample(self.config.batch_size, &mut self.rng);
        let n = batch.len();
        let dim = self.config.state_dim;
        let mut states = Matrix::zeros(n, dim);
        let mut next_states = Matrix::zeros(n, dim);
        for (i, t) in batch.iter().enumerate() {
            states.row_mut(i).copy_from_slice(&t.state);
            next_states.row_mut(i).copy_from_slice(&t.next_state);
        }
        // Bellman targets: start from current predictions so that only the
        // taken action receives gradient.
        let mut labels = self.policy.forward_batch(&states);
        let next_q = self.target.forward_batch(&next_states);
        for (i, t) in batch.iter().enumerate() {
            let max_next = next_q.row(i).iter().copied().fold(f32::NEG_INFINITY, f32::max);
            labels[(i, t.action)] = t.reward + self.config.gamma * max_next;
        }
        let loss = self.policy.train_batch(&states, &labels, &Mse, &mut self.adam);
        self.updates += 1;
        if self.updates.is_multiple_of(self.config.target_sync_every) {
            self.sync_target();
        }
        Some(loss)
    }

    /// Copies the policy network into the target network.
    pub fn sync_target(&mut self) {
        self.target = self.policy.clone();
    }

    /// Read access to the policy network (for persistence).
    pub fn policy(&self) -> &Mlp {
        &self.policy
    }

    /// Captures the agent's complete state for durable persistence.
    pub fn checkpoint(&self) -> DqnCheckpoint {
        DqnCheckpoint {
            config: self.config.clone(),
            policy: self.policy.clone(),
            target: self.target.clone(),
            replay: self.replay.clone(),
            adam: self.adam.clone(),
            rng_state: self.rng.state(),
            updates: self.updates,
        }
    }

    /// Rebuilds an agent from a [`DqnCheckpoint`].
    pub fn restore(ck: DqnCheckpoint) -> Self {
        Dqn {
            rng: StdRng::from_state(ck.rng_state),
            config: ck.config,
            policy: ck.policy,
            target: ck.target,
            replay: ck.replay,
            adam: ck.adam,
            updates: ck.updates,
        }
    }

    /// Replaces both networks with `policy` (used when loading a trained
    /// agent from disk).
    pub fn load_policy(&mut self, policy: Mlp) {
        assert_eq!(policy.input_size(), self.config.state_dim, "state width mismatch");
        assert_eq!(policy.output_size(), self.config.num_actions, "action count mismatch");
        self.adam = Adam::new(&policy, self.config.adam);
        self.target = policy.clone();
        self.policy = policy;
    }
}

fn argmax(values: &[f32]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("non-empty action set")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_buffer_is_a_ring() {
        let mut rb = ReplayBuffer::new(3);
        for i in 0..5 {
            rb.push(Transition {
                state: vec![i as f32],
                action: 0,
                reward: 0.0,
                next_state: vec![0.0],
            });
        }
        assert_eq!(rb.len(), 3);
        // Items 0 and 1 were evicted.
        let remaining: Vec<f32> = rb.items.iter().map(|t| t.state[0]).collect();
        assert!(remaining.contains(&2.0) && remaining.contains(&3.0) && remaining.contains(&4.0));
    }

    #[test]
    fn epsilon_zero_is_always_greedy() {
        let mut cfg = DqnConfig::paper(2, 4, 1);
        cfg.epsilon = 0.0;
        let mut agent = Dqn::new(cfg);
        let s = vec![0.5, -0.5];
        let greedy = agent.best_action(&s);
        for _ in 0..50 {
            assert_eq!(agent.select_action(&s), greedy);
        }
    }

    #[test]
    fn epsilon_one_explores_uniformly() {
        let mut cfg = DqnConfig::paper(2, 4, 2);
        cfg.epsilon = 1.0;
        let mut agent = Dqn::new(cfg);
        let s = vec![0.0, 0.0];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[agent.select_action(&s)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all actions should be explored: {seen:?}");
    }

    #[test]
    fn train_step_requires_a_full_batch() {
        let mut cfg = DqnConfig::paper(2, 2, 3);
        cfg.batch_size = 10;
        let mut agent = Dqn::new(cfg);
        assert_eq!(agent.train_step(), None);
        for i in 0..10 {
            agent.observe(Transition {
                state: vec![i as f32, 0.0],
                action: i % 2,
                reward: 0.0,
                next_state: vec![0.0, 0.0],
            });
        }
        assert!(agent.train_step().is_some());
    }

    #[test]
    fn dqn_learns_a_two_armed_bandit() {
        // Single state; action 1 pays 1.0, action 0 pays 0.0. The greedy
        // policy must converge to action 1.
        let mut cfg = DqnConfig::paper(1, 2, 7);
        cfg.batch_size = 32;
        cfg.gamma = 0.0; // bandit: no bootstrapping needed
        let mut agent = Dqn::new(cfg);
        let s = vec![1.0];
        for _ in 0..200 {
            let a = agent.select_action(&s);
            let r = if a == 1 { 1.0 } else { 0.0 };
            agent.observe(Transition {
                state: s.clone(),
                action: a,
                reward: r,
                next_state: s.clone(),
            });
            agent.train_step();
        }
        assert_eq!(agent.best_action(&s), 1, "q-values: {:?}", agent.q_values(&s));
    }

    #[test]
    fn dqn_propagates_reward_through_gamma() {
        // Two states: acting "right" (1) in state 0 leads to state 1 where
        // any action yields reward 1. With gamma > 0, state 0's Q for action
        // 1 must exceed action 0's (which self-loops with no reward).
        let mut cfg = DqnConfig::paper(1, 2, 11);
        cfg.batch_size = 32;
        cfg.gamma = 0.9;
        cfg.epsilon = 0.3;
        let mut agent = Dqn::new(cfg);
        let s0 = vec![0.0];
        let s1 = vec![1.0];
        for _ in 0..400 {
            // Transitions from s0.
            let a = agent.select_action(&s0);
            let (r, next) = if a == 1 { (0.0, s1.clone()) } else { (0.0, s0.clone()) };
            agent.observe(Transition { state: s0.clone(), action: a, reward: r, next_state: next });
            // Terminal-ish reward at s1 (both actions pay; self-loop).
            agent.observe(Transition {
                state: s1.clone(),
                action: 0,
                reward: 1.0,
                next_state: s1.clone(),
            });
            agent.train_step();
        }
        let q = agent.q_values(&s0);
        assert!(q[1] > q[0], "gamma must propagate future reward: {q:?}");
    }

    #[test]
    fn target_network_syncs_on_schedule() {
        let mut cfg = DqnConfig::paper(1, 2, 13);
        cfg.batch_size = 4;
        cfg.target_sync_every = 2;
        let mut agent = Dqn::new(cfg);
        for i in 0..8 {
            agent.observe(Transition {
                state: vec![i as f32],
                action: 0,
                reward: 1.0,
                next_state: vec![0.0],
            });
        }
        agent.train_step();
        assert_ne!(agent.policy.forward(&[1.0]), agent.target.forward(&[1.0]));
        agent.train_step(); // update 2: sync
        assert_eq!(agent.policy.forward(&[1.0]), agent.target.forward(&[1.0]));
    }

    #[test]
    fn load_policy_replaces_both_networks() {
        let cfg = DqnConfig::paper(2, 3, 17);
        let mut agent = Dqn::new(cfg.clone());
        let other = Dqn::new(DqnConfig { seed: 99, ..cfg });
        agent.load_policy(other.policy().clone());
        assert_eq!(agent.q_values(&[0.1, 0.2]), other.q_values(&[0.1, 0.2]));
    }

    #[test]
    #[should_panic(expected = "action out of range")]
    fn observe_validates_action() {
        let mut agent = Dqn::new(DqnConfig::paper(1, 2, 0));
        agent.observe(Transition {
            state: vec![0.0],
            action: 5,
            reward: 0.0,
            next_state: vec![0.0],
        });
    }

    #[test]
    fn selection_is_deterministic_per_seed() {
        let run = |seed| {
            let mut agent = Dqn::new(DqnConfig::paper(2, 5, seed));
            (0..20).map(|i| agent.select_action(&[i as f32, 0.0])).collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
    }
}

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A minimal row-major `f32` matrix.
///
/// OSML's networks are tiny (≤ 40 neurons per layer), so this favours
/// clarity over BLAS-grade performance; the naive triple loop is still far
/// faster than the paper's 0.23 s GPU round trip for these shapes.
///
/// # Example
///
/// ```
/// use osml_ml::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::from_rows(&[&[1.0], &[1.0]]);
/// let c = a.matmul(&b);
/// assert_eq!(c.dims(), (2, 1));
/// assert_eq!(c[(0, 0)], 3.0);
/// assert_eq!(c[(1, 0)], 7.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// An all-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must match dimensions");
        Matrix { rows, cols, data }
    }

    /// Builds from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths or the input is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have equal length");
            data.extend_from_slice(r);
        }
        Matrix { rows: rows.len(), cols, data }
    }

    /// A 1 × n row vector.
    pub fn row_vector(values: &[f32]) -> Self {
        Matrix { rows: 1, cols: values.len(), data: values.to_vec() }
    }

    /// `(rows, cols)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat row-major view of the data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat row-major mutable view of the data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reshapes to `rows × cols`, reusing the existing allocation when the
    /// element count is unchanged. Contents are unspecified afterwards; the
    /// `*_into` kernels overwrite every element. Public so callers building
    /// inference batches row by row (the scheduler's gather pass) can reuse
    /// one buffer across ticks.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        let len = rows * cols;
        self.rows = rows;
        self.cols = cols;
        if self.data.len() != len {
            self.data.resize(len, 0.0);
        }
    }

    /// Matrix product `self × other`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(other, &mut out);
        out
    }

    /// `out = self × other`, reshaping `out` (its buffer is reused).
    ///
    /// The k-loop walks four rows of `other` at a time, so each output row
    /// stays register/L1-resident across the whole accumulation instead of
    /// being re-streamed once per k; blocks whose four multipliers are all
    /// zero (common with ReLU activations) are skipped outright.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        out.reset(self.rows, other.cols);
        let n_in = self.cols;
        let n_out = other.cols;
        for i in 0..self.rows {
            let a_row = &self.data[i * n_in..(i + 1) * n_in];
            let out_row = &mut out.data[i * n_out..(i + 1) * n_out];
            out_row.fill(0.0);
            accumulate_row(a_row, &other.data, n_out, out_row);
        }
    }

    /// Fused dense-layer kernel: `out = act(self × w + bias)`, where `act`
    /// is ReLU when `relu` is true and identity otherwise. `out` is reshaped
    /// to `self.rows × w.cols` reusing its buffer, so a training loop that
    /// ping-pongs two scratch matrices allocates nothing per step.
    ///
    /// Fusing the bias into the accumulator's initial value and the
    /// activation into the same pass removes two full sweeps over the output
    /// (plus the pre-activation clone the layer cache used to keep).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != w.rows` or `bias.len() != w.cols`.
    pub fn matmul_bias_act_into(&self, w: &Matrix, bias: &[f32], relu: bool, out: &mut Matrix) {
        assert_eq!(
            self.cols, w.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, w.rows, w.cols
        );
        assert_eq!(bias.len(), w.cols, "bias length mismatch");
        out.reset(self.rows, w.cols);
        let n_in = self.cols;
        let n_out = w.cols;
        for i in 0..self.rows {
            let a_row = &self.data[i * n_in..(i + 1) * n_in];
            let out_row = &mut out.data[i * n_out..(i + 1) * n_out];
            out_row.copy_from_slice(bias);
            accumulate_row(a_row, &w.data, n_out, out_row);
            if relu {
                for v in out_row.iter_mut() {
                    *v = v.max(0.0);
                }
            }
        }
    }

    /// `selfᵀ × other` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows`.
    pub fn transpose_matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.transpose_matmul_into(other, &mut out);
        out
    }

    /// `out = selfᵀ × other`, reshaping `out` (its buffer is reused).
    ///
    /// Both operands are streamed row-major; the r-loop is unrolled 4-wide
    /// so the (small) output is swept n/4 times instead of n, and blocks
    /// whose four multipliers are all zero (ReLU-sparse deltas) are skipped.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows`.
    pub fn transpose_matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, other.rows, "transpose_matmul dimension mismatch");
        out.reset(self.cols, other.cols);
        out.data.fill(0.0);
        let n = self.rows;
        let ac = self.cols;
        let bc = other.cols;
        let mut r = 0;
        while r + 4 <= n {
            let a0 = &self.data[r * ac..(r + 1) * ac];
            let a1 = &self.data[(r + 1) * ac..(r + 2) * ac];
            let a2 = &self.data[(r + 2) * ac..(r + 3) * ac];
            let a3 = &self.data[(r + 3) * ac..(r + 4) * ac];
            let b0 = &other.data[r * bc..(r + 1) * bc];
            let b1 = &other.data[(r + 1) * bc..(r + 2) * bc];
            let b2 = &other.data[(r + 2) * bc..(r + 3) * bc];
            let b3 = &other.data[(r + 3) * bc..(r + 4) * bc];
            for i in 0..ac {
                let (x0, x1, x2, x3) = (a0[i], a1[i], a2[i], a3[i]);
                if x0 == 0.0 && x1 == 0.0 && x2 == 0.0 && x3 == 0.0 {
                    continue;
                }
                let dst = &mut out.data[i * bc..(i + 1) * bc];
                for j in 0..bc {
                    dst[j] += x0 * b0[j] + x1 * b1[j] + x2 * b2[j] + x3 * b3[j];
                }
            }
            r += 4;
        }
        while r < n {
            let a_row = &self.data[r * ac..(r + 1) * ac];
            let b_row = &other.data[r * bc..(r + 1) * bc];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let dst = &mut out.data[i * bc..(i + 1) * bc];
                for (d, &b) in dst.iter_mut().zip(b_row) {
                    *d += a * b;
                }
            }
            r += 1;
        }
    }

    /// `self × otherᵀ` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_transpose(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_transpose_into(other, &mut out);
        out
    }

    /// `out = self × otherᵀ`, reshaping `out` (its buffer is reused).
    ///
    /// Each output element is an independent dot product of two contiguous
    /// rows; four partial accumulators let the compiler keep the multiplies
    /// pipelined instead of serializing on one running sum.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_transpose_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.cols, "matmul_transpose dimension mismatch");
        out.reset(self.rows, other.rows);
        let k = self.cols;
        for i in 0..self.rows {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out.data[i * other.rows..(i + 1) * other.rows];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &other.data[j * k..(j + 1) * k];
                let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0, 0.0, 0.0);
                let mut c = 0;
                while c + 4 <= k {
                    s0 += a_row[c] * b_row[c];
                    s1 += a_row[c + 1] * b_row[c + 1];
                    s2 += a_row[c + 2] * b_row[c + 2];
                    s3 += a_row[c + 3] * b_row[c + 3];
                    c += 4;
                }
                let mut s = (s0 + s1) + (s2 + s3);
                while c < k {
                    s += a_row[c] * b_row[c];
                    c += 1;
                }
                *o = s;
            }
        }
    }

    /// Copies the `idx`-selected rows of `self` into `out` (reshaped to
    /// `idx.len() × self.cols`, buffer reused). This is the mini-batch
    /// gather; reusing `out` keeps `Trainer::fit` allocation-free per batch.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather_rows_into(&self, idx: &[usize], out: &mut Matrix) {
        out.reset(idx.len(), self.cols);
        for (dst_r, &src_r) in idx.iter().enumerate() {
            assert!(src_r < self.rows, "row {src_r} out of bounds");
            out.data[dst_r * self.cols..(dst_r + 1) * self.cols]
                .copy_from_slice(&self.data[src_r * self.cols..(src_r + 1) * self.cols]);
        }
    }

    /// Adds `row` to every row of `self` (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree.
    pub fn add_row_broadcast(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.cols, "broadcast length mismatch");
        for r in 0..self.rows {
            for (d, &b) in self.row_mut(r).iter_mut().zip(row) {
                *d += b;
            }
        }
    }

    /// Column sums (used to reduce bias gradients over a batch).
    pub fn column_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (s, &v) in sums.iter_mut().zip(self.row(r)) {
                *s += v;
            }
        }
        sums
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place<F: FnMut(f32) -> f32>(&mut self, mut f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }
}

/// Accumulates `out_row += Σ_k a_row[k] · w[k, ·]` with the k-loop unrolled
/// 4-wide; `w` is the flat row-major weight buffer with rows of `n_out`.
/// Blocks whose four multipliers are all zero are skipped (ReLU sparsity).
#[inline]
fn accumulate_row(a_row: &[f32], w: &[f32], n_out: usize, out_row: &mut [f32]) {
    let n_in = a_row.len();
    let mut k = 0;
    while k + 4 <= n_in {
        let (a0, a1, a2, a3) = (a_row[k], a_row[k + 1], a_row[k + 2], a_row[k + 3]);
        if a0 != 0.0 || a1 != 0.0 || a2 != 0.0 || a3 != 0.0 {
            let w0 = &w[k * n_out..(k + 1) * n_out];
            let w1 = &w[(k + 1) * n_out..(k + 2) * n_out];
            let w2 = &w[(k + 2) * n_out..(k + 3) * n_out];
            let w3 = &w[(k + 3) * n_out..(k + 4) * n_out];
            for j in 0..n_out {
                out_row[j] += a0 * w0[j] + a1 * w1[j] + a2 * w2[j] + a3 * w3[j];
            }
        }
        k += 4;
    }
    while k < n_in {
        let a = a_row[k];
        if a != 0.0 {
            let wk = &w[k * n_out..(k + 1) * n_out];
            for (o, &b) in out_row.iter_mut().zip(wk) {
                *o += a * b;
            }
        }
        k += 1;
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>9.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let b = Matrix::from_rows(&[&[4.0], &[5.0], &[6.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), (1, 1));
        assert_eq!(c[(0, 0)], 32.0);
    }

    #[test]
    fn transpose_matmul_matches_explicit() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        // aT (2x3) * b (3x2) = 2x2
        let c = a.transpose_matmul(&b);
        assert_eq!(c.dims(), (2, 2));
        assert_eq!(c[(0, 0)], 1.0 * 1.0 + 3.0 * 0.0 + 5.0 * 1.0);
        assert_eq!(c[(1, 1)], 2.0 * 0.0 + 4.0 * 1.0 + 6.0 * 1.0);
    }

    #[test]
    fn matmul_transpose_matches_explicit() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        // a (1x2) * bT (2x2) = 1x2
        let c = a.matmul_transpose(&b);
        assert_eq!(c.dims(), (1, 2));
        assert_eq!(c[(0, 0)], 11.0);
        assert_eq!(c[(0, 1)], 17.0);
    }

    /// Reference triple-loop product to pin the optimized kernels against.
    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for k in 0..a.cols() {
                for j in 0..b.cols() {
                    out[(i, j)] += a[(i, k)] * b[(k, j)];
                }
            }
        }
        out
    }

    /// Deterministic pseudo-random matrix with ReLU-like zero runs.
    fn test_matrix(rows: usize, cols: usize, seed: u32) -> Matrix {
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        let mut m = Matrix::zeros(rows, cols);
        for v in m.as_mut_slice() {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            let x = (state >> 8) as f32 / (1 << 24) as f32 - 0.5;
            *v = if state.is_multiple_of(3) { 0.0 } else { x };
        }
        m
    }

    #[test]
    fn unrolled_matmul_matches_naive_at_odd_shapes() {
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (4, 8, 4), (7, 41, 13), (2, 40, 40)] {
            let a = test_matrix(m, k, (m * 100 + k) as u32);
            let b = test_matrix(k, n, (k * 100 + n) as u32);
            let fast = a.matmul(&b);
            let slow = naive_matmul(&a, &b);
            for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
                assert!((x - y).abs() < 1e-5, "fast {x} vs naive {y}");
            }
        }
    }

    #[test]
    fn fused_kernel_matches_separate_ops() {
        let a = test_matrix(5, 9, 1);
        let w = test_matrix(9, 6, 2);
        let bias: Vec<f32> = (0..6).map(|i| i as f32 * 0.25 - 0.5).collect();

        let mut expected = a.matmul(&w);
        expected.add_row_broadcast(&bias);
        let mut expected_relu = expected.clone();
        expected_relu.map_in_place(|v| v.max(0.0));

        let mut linear = Matrix::zeros(0, 0);
        a.matmul_bias_act_into(&w, &bias, false, &mut linear);
        let mut relu = Matrix::zeros(0, 0);
        a.matmul_bias_act_into(&w, &bias, true, &mut relu);

        for (x, y) in linear.as_slice().iter().zip(expected.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
        for (x, y) in relu.as_slice().iter().zip(expected_relu.as_slice()) {
            assert!((x - y).abs() < 1e-5);
            assert!(*x >= 0.0);
        }
    }

    #[test]
    fn into_kernels_reuse_buffers_across_shapes() {
        let mut out = Matrix::zeros(0, 0);
        // Grow, then shrink: results must match fresh computations.
        for &(m, k, n) in &[(6, 8, 10), (2, 3, 4)] {
            let a = test_matrix(m, k, 7);
            let b = test_matrix(k, n, 8);
            a.matmul_into(&b, &mut out);
            assert_eq!(out.dims(), (m, n));
            let fresh = naive_matmul(&a, &b);
            for (x, y) in out.as_slice().iter().zip(fresh.as_slice()) {
                assert!((x - y).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn transpose_kernels_match_naive_at_odd_sizes() {
        let a = test_matrix(13, 7, 3);
        let b = test_matrix(13, 5, 4);
        let fast = a.transpose_matmul(&b);
        // Naive: out[i][j] = sum_r a[r][i] * b[r][j].
        for i in 0..7 {
            for j in 0..5 {
                let want: f32 = (0..13).map(|r| a[(r, i)] * b[(r, j)]).sum();
                assert!((fast[(i, j)] - want).abs() < 1e-5);
            }
        }

        let c = test_matrix(6, 11, 5);
        let d = test_matrix(4, 11, 6);
        let fast = c.matmul_transpose(&d);
        for i in 0..6 {
            for j in 0..4 {
                let want: f32 = (0..11).map(|k| c[(i, k)] * d[(j, k)]).sum();
                assert!((fast[(i, j)] - want).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn gather_rows_into_selects_and_reuses() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let mut out = Matrix::zeros(0, 0);
        m.gather_rows_into(&[2, 0], &mut out);
        assert_eq!(out, Matrix::from_rows(&[&[5.0, 6.0], &[1.0, 2.0]]));
        m.gather_rows_into(&[1], &mut out);
        assert_eq!(out, Matrix::from_rows(&[&[3.0, 4.0]]));
    }

    #[test]
    fn broadcast_and_column_sums() {
        let mut m = Matrix::zeros(3, 2);
        m.add_row_broadcast(&[1.0, 2.0]);
        assert_eq!(m.column_sums(), vec![3.0, 6.0]);
    }

    #[test]
    fn map_in_place_applies_function() {
        let mut m = Matrix::from_rows(&[&[-1.0, 2.0]]);
        m.map_in_place(|v| v.max(0.0));
        assert_eq!(m.as_slice(), &[0.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_rejects_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_checks_bounds() {
        let m = Matrix::zeros(1, 1);
        let _ = m[(0, 1)];
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Matrix::zeros(2, 2).to_string().is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let m = Matrix::from_rows(&[&[1.5, -2.5]]);
        let s = serde_json::to_string(&m).unwrap();
        let back: Matrix = serde_json::from_str(&s).unwrap();
        assert_eq!(back, m);
    }
}

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A minimal row-major `f32` matrix.
///
/// OSML's networks are tiny (≤ 40 neurons per layer), so this favours
/// clarity over BLAS-grade performance; the naive triple loop is still far
/// faster than the paper's 0.23 s GPU round trip for these shapes.
///
/// # Example
///
/// ```
/// use osml_ml::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::from_rows(&[&[1.0], &[1.0]]);
/// let c = a.matmul(&b);
/// assert_eq!(c.dims(), (2, 1));
/// assert_eq!(c[(0, 0)], 3.0);
/// assert_eq!(c[(1, 0)], 7.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// An all-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must match dimensions");
        Matrix { rows, cols, data }
    }

    /// Builds from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths or the input is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have equal length");
            data.extend_from_slice(r);
        }
        Matrix { rows: rows.len(), cols, data }
    }

    /// A 1 × n row vector.
    pub fn row_vector(values: &[f32]) -> Self {
        Matrix { rows: 1, cols: values.len(), data: values.to_vec() }
    }

    /// `(rows, cols)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat row-major view of the data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat row-major mutable view of the data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Matrix product `self × other`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let lhs = &other.data[k * other.cols..(k + 1) * other.cols];
                let dst = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (d, &b) in dst.iter_mut().zip(lhs) {
                    *d += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ × other` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != other.rows`.
    pub fn transpose_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "transpose_matmul dimension mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = other.row(r);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let dst = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (d, &b) in dst.iter_mut().zip(b_row) {
                    *d += a * b;
                }
            }
        }
        out
    }

    /// `self × otherᵀ` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_transpose(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_transpose dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                out.data[i * other.rows + j] =
                    a_row.iter().zip(b_row).map(|(&a, &b)| a * b).sum();
            }
        }
        out
    }

    /// Adds `row` to every row of `self` (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree.
    pub fn add_row_broadcast(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.cols, "broadcast length mismatch");
        for r in 0..self.rows {
            for (d, &b) in self.row_mut(r).iter_mut().zip(row) {
                *d += b;
            }
        }
    }

    /// Column sums (used to reduce bias gradients over a batch).
    pub fn column_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (s, &v) in sums.iter_mut().zip(self.row(r)) {
                *s += v;
            }
        }
        sums
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place<F: FnMut(f32) -> f32>(&mut self, mut f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>9.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let b = Matrix::from_rows(&[&[4.0], &[5.0], &[6.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), (1, 1));
        assert_eq!(c[(0, 0)], 32.0);
    }

    #[test]
    fn transpose_matmul_matches_explicit() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        // aT (2x3) * b (3x2) = 2x2
        let c = a.transpose_matmul(&b);
        assert_eq!(c.dims(), (2, 2));
        assert_eq!(c[(0, 0)], 1.0 * 1.0 + 3.0 * 0.0 + 5.0 * 1.0);
        assert_eq!(c[(1, 1)], 2.0 * 0.0 + 4.0 * 1.0 + 6.0 * 1.0);
    }

    #[test]
    fn matmul_transpose_matches_explicit() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        // a (1x2) * bT (2x2) = 1x2
        let c = a.matmul_transpose(&b);
        assert_eq!(c.dims(), (1, 2));
        assert_eq!(c[(0, 0)], 11.0);
        assert_eq!(c[(0, 1)], 17.0);
    }

    #[test]
    fn broadcast_and_column_sums() {
        let mut m = Matrix::zeros(3, 2);
        m.add_row_broadcast(&[1.0, 2.0]);
        assert_eq!(m.column_sums(), vec![3.0, 6.0]);
    }

    #[test]
    fn map_in_place_applies_function() {
        let mut m = Matrix::from_rows(&[&[-1.0, 2.0]]);
        m.map_in_place(|v| v.max(0.0));
        assert_eq!(m.as_slice(), &[0.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_rejects_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_checks_bounds() {
        let m = Matrix::zeros(1, 1);
        let _ = m[(0, 1)];
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Matrix::zeros(2, 2).to_string().is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let m = Matrix::from_rows(&[&[1.5, -2.5]]);
        let s = serde_json::to_string(&m).unwrap();
        let back: Matrix = serde_json::from_str(&s).unwrap();
        assert_eq!(back, m);
    }
}

use crate::loss::Loss;
use crate::{Adam, AdamConfig, Matrix, Mlp};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration for mini-batch supervised training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Fraction of data held out for validation (0 disables).
    pub validation_split: f64,
    /// Adam hyper-parameters.
    pub adam: AdamConfig,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            epochs: 30,
            batch_size: 128,
            validation_split: 0.1,
            adam: AdamConfig::default(),
            seed: 0xd1ce,
        }
    }
}

/// A training or evaluation request the trainer cannot satisfy without
/// emitting NaN (or panicking). Returned by [`Trainer::try_fit`] and
/// [`Metrics::try_evaluate`]; the panicking [`Trainer::fit`] /
/// [`Metrics::evaluate`] wrappers surface the same conditions as messages.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TrainError {
    /// `x` and `y` have different numbers of rows.
    RowCountMismatch {
        /// Rows in the feature matrix.
        x_rows: usize,
        /// Rows in the label matrix.
        y_rows: usize,
    },
    /// The dataset has zero rows.
    EmptyDataset,
    /// `validation_split` holds out every row, leaving nothing to train on.
    EmptyTrainingSplit {
        /// The configured split fraction.
        split: f64,
        /// Rows that would be held out.
        held_out: usize,
        /// Total rows available.
        rows: usize,
    },
    /// The features or labels contain NaN or infinite values, which would
    /// propagate through every weight on the first update.
    NonFiniteData,
    /// The evaluation set has zero rows, so every metric would be `0/0`.
    EmptyEvaluation,
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::RowCountMismatch { x_rows, y_rows } => {
                write!(f, "x and y row counts differ (x has {x_rows} rows, y has {y_rows})")
            }
            TrainError::EmptyDataset => write!(f, "dataset is empty"),
            TrainError::EmptyTrainingSplit { split, held_out, rows } => write!(
                f,
                "validation_split {split} leaves an empty training split ({held_out} of {rows} \
                 rows held out); lower the split or provide more data"
            ),
            TrainError::NonFiniteData => {
                write!(f, "dataset contains non-finite values (NaN or infinity)")
            }
            TrainError::EmptyEvaluation => {
                write!(f, "evaluation set is empty; every metric would be 0/0")
            }
        }
    }
}

impl std::error::Error for TrainError {}

/// Regression quality metrics on a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Mean absolute error over all outputs.
    pub mae: f64,
    /// Root mean squared error over all outputs.
    pub rmse: f64,
    /// Fraction of predictions within ±1.0 of the label (for resource-count
    /// heads this is "predicted within one core/way").
    pub within_one: f64,
}

impl Metrics {
    /// Computes metrics of `mlp` on `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `y` have different row counts or the set is empty
    /// (the typed-error form is [`Metrics::try_evaluate`]).
    pub fn evaluate(mlp: &Mlp, x: &Matrix, y: &Matrix) -> Metrics {
        match Metrics::try_evaluate(mlp, x, y) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Computes metrics of `mlp` on `(x, y)`, returning a typed error for
    /// the inputs on which [`Metrics::evaluate`] would panic or emit NaN.
    pub fn try_evaluate(mlp: &Mlp, x: &Matrix, y: &Matrix) -> Result<Metrics, TrainError> {
        if x.rows() != y.rows() {
            return Err(TrainError::RowCountMismatch { x_rows: x.rows(), y_rows: y.rows() });
        }
        if x.rows() == 0 {
            return Err(TrainError::EmptyEvaluation);
        }
        let pred = mlp.forward_batch(x);
        let mut abs_sum = 0.0f64;
        let mut sq_sum = 0.0f64;
        let mut within = 0usize;
        let n = pred.as_slice().len();
        for (&p, &t) in pred.as_slice().iter().zip(y.as_slice()) {
            let e = (p - t) as f64;
            abs_sum += e.abs();
            sq_sum += e * e;
            if e.abs() <= 1.0 {
                within += 1;
            }
        }
        Ok(Metrics {
            mae: abs_sum / n as f64,
            rmse: (sq_sum / n as f64).sqrt(),
            within_one: within as f64 / n as f64,
        })
    }
}

/// Result of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean training loss of each epoch.
    pub epoch_losses: Vec<f64>,
    /// Final metrics on the training split.
    pub train_metrics: Metrics,
    /// Final metrics on the validation split (if one was held out).
    pub validation_metrics: Option<Metrics>,
}

/// Seeded mini-batch trainer for supervised heads (Model-A/B/B').
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainerConfig,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(config: TrainerConfig) -> Self {
        Trainer { config }
    }

    /// Trains `mlp` on `(x, y)` and reports losses and metrics.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `y` have different row counts, the dataset is
    /// empty or contains non-finite values, or `validation_split` is so
    /// large the training split would be empty (e.g. a split of 1.0, or 0.9
    /// on a 10-row dataset). The typed-error form is [`Trainer::try_fit`].
    pub fn fit<L: Loss>(&self, mlp: &mut Mlp, x: &Matrix, y: &Matrix, loss: &L) -> TrainReport {
        match self.try_fit(mlp, x, y, loss) {
            Ok(report) => report,
            Err(e) => panic!("{e}"),
        }
    }

    /// Trains `mlp` on `(x, y)`, returning a typed error for the inputs on
    /// which [`Trainer::fit`] would panic — or worse, silently converge
    /// every weight to NaN (non-finite features/labels).
    pub fn try_fit<L: Loss>(
        &self,
        mlp: &mut Mlp,
        x: &Matrix,
        y: &Matrix,
        loss: &L,
    ) -> Result<TrainReport, TrainError> {
        if x.rows() != y.rows() {
            return Err(TrainError::RowCountMismatch { x_rows: x.rows(), y_rows: y.rows() });
        }
        if x.rows() == 0 {
            return Err(TrainError::EmptyDataset);
        }
        if !x.as_slice().iter().chain(y.as_slice()).all(|v| v.is_finite()) {
            return Err(TrainError::NonFiniteData);
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let n = x.rows();
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);

        let n_val = ((n as f64) * self.config.validation_split) as usize;
        if n_val >= n {
            return Err(TrainError::EmptyTrainingSplit {
                split: self.config.validation_split,
                held_out: n_val,
                rows: n,
            });
        }
        let (val_idx, train_idx) = order.split_at(n_val);
        let gather = |idx: &[usize], m: &Matrix| -> Matrix {
            let mut out = Matrix::zeros(0, 0);
            m.gather_rows_into(idx, &mut out);
            out
        };
        let (x_train, y_train) = (gather(train_idx, x), gather(train_idx, y));
        let (x_val, y_val) = (gather(val_idx, x), gather(val_idx, y));

        let mut adam = Adam::new(mlp, self.config.adam);
        let mut epoch_losses = Vec::with_capacity(self.config.epochs);
        let mut batch_order: Vec<usize> = (0..x_train.rows()).collect();
        // Mini-batch scratch: reshaped per chunk, reallocated only when the
        // chunk size changes (once per epoch at the tail), not per batch.
        let mut xb = Matrix::zeros(0, 0);
        let mut yb = Matrix::zeros(0, 0);
        for _ in 0..self.config.epochs {
            batch_order.shuffle(&mut rng);
            let mut loss_sum = 0.0f64;
            let mut batches = 0usize;
            for chunk in batch_order.chunks(self.config.batch_size.max(1)) {
                x_train.gather_rows_into(chunk, &mut xb);
                y_train.gather_rows_into(chunk, &mut yb);
                loss_sum += mlp.train_batch(&xb, &yb, loss, &mut adam) as f64;
                batches += 1;
            }
            epoch_losses.push(loss_sum / batches.max(1) as f64);
        }

        Ok(TrainReport {
            epoch_losses,
            train_metrics: Metrics::try_evaluate(mlp, &x_train, &y_train)?,
            validation_metrics: if n_val > 0 {
                Some(Metrics::try_evaluate(mlp, &x_val, &y_val)?)
            } else {
                None
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::Mse;
    use crate::MlpConfig;

    /// Synthetic regression task: y0 = 2a + b, y1 = a - b.
    fn dataset(n: usize) -> (Matrix, Matrix) {
        let mut x = Matrix::zeros(n, 2);
        let mut y = Matrix::zeros(n, 2);
        for i in 0..n {
            let a = (i % 17) as f32 / 17.0;
            let b = (i % 11) as f32 / 11.0;
            x.row_mut(i).copy_from_slice(&[a, b]);
            y.row_mut(i).copy_from_slice(&[2.0 * a + b, a - b]);
        }
        (x, y)
    }

    #[test]
    fn training_reduces_loss_monotonically_enough() {
        let (x, y) = dataset(512);
        let mut mlp = Mlp::new(&MlpConfig::new(&[2, 16, 2], 3));
        let trainer =
            Trainer::new(TrainerConfig { epochs: 150, batch_size: 32, ..TrainerConfig::default() });
        let report = trainer.fit(&mut mlp, &x, &y, &Mse);
        assert_eq!(report.epoch_losses.len(), 150);
        let first = report.epoch_losses.first().unwrap();
        let last = report.epoch_losses.last().unwrap();
        assert!(last < first, "loss should fall: {first} -> {last}");
        assert!(report.train_metrics.mae < 0.15, "mae {}", report.train_metrics.mae);
    }

    #[test]
    fn validation_metrics_track_generalization() {
        let (x, y) = dataset(1000);
        let mut mlp = Mlp::new(&MlpConfig::new(&[2, 16, 2], 4));
        let trainer = Trainer::new(TrainerConfig {
            epochs: 100,
            batch_size: 32,
            validation_split: 0.2,
            ..TrainerConfig::default()
        });
        let report = trainer.fit(&mut mlp, &x, &y, &Mse);
        let val = report.validation_metrics.expect("validation split was requested");
        // The function is deterministic, so validation should be close to train.
        assert!(val.mae < report.train_metrics.mae * 3.0 + 0.05);
        assert!(val.within_one > 0.95);
    }

    #[test]
    fn zero_validation_split_yields_none() {
        let (x, y) = dataset(64);
        let mut mlp = Mlp::new(&MlpConfig::new(&[2, 8, 2], 5));
        let trainer = Trainer::new(TrainerConfig {
            epochs: 2,
            validation_split: 0.0,
            ..TrainerConfig::default()
        });
        let report = trainer.fit(&mut mlp, &x, &y, &Mse);
        assert!(report.validation_metrics.is_none());
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let (x, y) = dataset(128);
        let run = |seed| {
            let mut mlp = Mlp::new(&MlpConfig::new(&[2, 8, 2], 7));
            let trainer =
                Trainer::new(TrainerConfig { epochs: 3, seed, ..TrainerConfig::default() });
            trainer.fit(&mut mlp, &x, &y, &Mse).epoch_losses
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn metrics_on_perfect_predictions() {
        let y = Matrix::from_rows(&[&[1.0], &[2.0]]);
        // A "network" that already maps x to y exactly is hard to construct;
        // instead check the arithmetic with an identity-ish case.
        let mlp = Mlp::new(&MlpConfig::new(&[1, 1], 0));
        let x = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let m = Metrics::evaluate(&mlp, &x, &y);
        assert!(m.mae >= 0.0 && m.rmse >= m.mae.min(m.rmse));
        assert!((0.0..=1.0).contains(&m.within_one));
    }

    #[test]
    #[should_panic(expected = "leaves an empty training split")]
    fn full_validation_split_panics_clearly() {
        let (x, y) = dataset(8);
        let mut mlp = Mlp::new(&MlpConfig::new(&[2, 8, 2], 5));
        let trainer = Trainer::new(TrainerConfig {
            epochs: 1,
            validation_split: 1.0,
            ..TrainerConfig::default()
        });
        let _ = trainer.fit(&mut mlp, &x, &y, &Mse);
    }

    #[test]
    #[should_panic(expected = "dataset is empty")]
    fn empty_dataset_panics() {
        let mut mlp = Mlp::new(&MlpConfig::new(&[1, 1], 0));
        let trainer = Trainer::new(TrainerConfig::default());
        let x = Matrix::zeros(0, 1);
        let y = Matrix::zeros(0, 1);
        let _ = trainer.fit(&mut mlp, &x, &y, &Mse);
    }

    #[test]
    fn try_fit_returns_typed_errors_instead_of_panicking() {
        let mut mlp = Mlp::new(&MlpConfig::new(&[2, 8, 2], 5));
        let trainer = Trainer::new(TrainerConfig { epochs: 1, ..TrainerConfig::default() });

        let empty = (Matrix::zeros(0, 2), Matrix::zeros(0, 2));
        assert_eq!(
            trainer.try_fit(&mut mlp, &empty.0, &empty.1, &Mse).unwrap_err(),
            TrainError::EmptyDataset
        );

        let (x, y) = dataset(8);
        let y_short = Matrix::zeros(4, 2);
        assert_eq!(
            trainer.try_fit(&mut mlp, &x, &y_short, &Mse).unwrap_err(),
            TrainError::RowCountMismatch { x_rows: 8, y_rows: 4 }
        );

        let all_held_out =
            Trainer::new(TrainerConfig { epochs: 1, validation_split: 1.0, ..trainer.config });
        assert!(matches!(
            all_held_out.try_fit(&mut mlp, &x, &y, &Mse).unwrap_err(),
            TrainError::EmptyTrainingSplit { held_out: 8, rows: 8, .. }
        ));

        assert!(trainer.try_fit(&mut mlp, &x, &y, &Mse).is_ok());
    }

    #[test]
    fn non_finite_data_is_rejected_before_it_poisons_weights() {
        let (mut x, y) = dataset(16);
        x.row_mut(3)[1] = f32::NAN;
        let mut mlp = Mlp::new(&MlpConfig::new(&[2, 8, 2], 5));
        let trainer = Trainer::new(TrainerConfig { epochs: 1, ..TrainerConfig::default() });
        assert_eq!(trainer.try_fit(&mut mlp, &x, &y, &Mse).unwrap_err(), TrainError::NonFiniteData);
        // A constant-feature window (zero variance) is legal: it trains
        // without producing NaN anywhere in the report.
        let x_const = Matrix::zeros(16, 2);
        let report = trainer.try_fit(&mut mlp, &x_const, &y, &Mse).unwrap();
        assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
        assert!(report.train_metrics.mae.is_finite());
    }

    #[test]
    fn try_evaluate_rejects_empty_sets() {
        let mlp = Mlp::new(&MlpConfig::new(&[1, 1], 0));
        let e = Matrix::zeros(0, 1);
        assert_eq!(
            Metrics::try_evaluate(&mlp, &e, &e).unwrap_err(),
            TrainError::EmptyEvaluation,
            "evaluate on empty would otherwise report mae = NaN"
        );
    }

    #[test]
    fn train_error_display_is_informative() {
        let errors: [TrainError; 5] = [
            TrainError::RowCountMismatch { x_rows: 1, y_rows: 2 },
            TrainError::EmptyDataset,
            TrainError::EmptyTrainingSplit { split: 1.0, held_out: 8, rows: 8 },
            TrainError::NonFiniteData,
            TrainError::EmptyEvaluation,
        ];
        for e in errors {
            assert!(!e.to_string().is_empty(), "{e:?}");
        }
    }
}

//! A small scoped-thread work pool for the experiment pipeline.
//!
//! Every expensive path in the reproduction — co-location heatmap cells,
//! the Oracle's exhaustive partition search, the data-collection sweep, and
//! supervised training of the independent model heads — is embarrassingly
//! parallel: each unit of work derives its seed deterministically from its
//! own coordinates, so results are **bit-identical regardless of the job
//! count or scheduling order**. This module provides the one primitive they
//! all share: an order-preserving [`parallel_map`] over a slice, backed by
//! `std::thread::scope` with atomic work-stealing (no external
//! dependencies, no unsafe).
//!
//! The degree of parallelism comes from, in priority order:
//!
//! 1. an explicit `jobs` argument ([`parallel_map_jobs`]),
//! 2. the `OSML_JOBS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! `OSML_JOBS=1` (or `jobs = 1`) degrades to a plain sequential loop on the
//! calling thread — handy for profiling and for the determinism tests that
//! pin down the bit-identical guarantee.

use std::sync::atomic::{AtomicUsize, Ordering};

/// The configured job count: `OSML_JOBS` if set to a positive integer,
/// otherwise the machine's available parallelism (falling back to 4 when
/// that is unknown).
pub fn jobs_from_env() -> usize {
    match std::env::var("OSML_JOBS") {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("warning: ignoring invalid OSML_JOBS={raw:?} (want a positive integer)");
                available()
            }
        },
        Err(_) => available(),
    }
}

fn available() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

/// Maps `f` over `items` on up to [`jobs_from_env`] worker threads,
/// returning results in input order.
///
/// Equivalent to `items.iter().map(f).collect()` — bit-identical output,
/// any job count — as long as `f` derives all randomness from its item, as
/// every sweep in this workspace does.
pub fn parallel_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    parallel_map_jobs(jobs_from_env(), items, f)
}

/// [`parallel_map`] with an explicit job count.
///
/// Work is distributed dynamically (an atomic cursor, one item at a time),
/// so heavily skewed per-item costs — e.g. heatmap cells whose feasibility
/// search terminates early — still balance across workers.
///
/// # Panics
///
/// Panics if a worker panics (the panic is propagated).
pub fn parallel_map_jobs<T: Sync, R: Send>(
    jobs: usize,
    items: &[T],
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let jobs = jobs.max(1).min(items.len());
    if jobs <= 1 {
        return items.iter().map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                let cursor = &cursor;
                let f = &f;
                scope.spawn(move || {
                    let mut produced: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            return produced;
                        }
                        produced.push((i, f(&items[i])));
                    }
                })
            })
            .collect();
        for handle in handles {
            for (i, r) in handle.join().expect("worker thread panicked") {
                slots[i] = Some(r);
            }
        }
    });

    slots.into_iter().map(|r| r.expect("every slot filled")).collect()
}

/// Runs two independent closures, in parallel when `jobs > 1`, and returns
/// both results. Building block for fork-join over heterogeneous tasks
/// (e.g. training the independent model heads concurrently).
pub fn join<A: Send, B: Send>(
    jobs: usize,
    a: impl FnOnce() -> A + Send,
    b: impl FnOnce() -> B + Send,
) -> (A, B) {
    if jobs <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("joined task panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map() {
        let items: Vec<u64> = (0..257).collect();
        let seq: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for jobs in [1, 2, 4, 13] {
            assert_eq!(parallel_map_jobs(jobs, &items, |&x| x * x + 1), seq, "jobs = {jobs}");
        }
    }

    #[test]
    fn handles_empty_and_single_item() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map_jobs(8, &empty, |&x| x).is_empty());
        assert_eq!(parallel_map_jobs(8, &[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn preserves_order_under_skewed_costs() {
        // Early items sleep longer, so naive completion order would invert.
        let items: Vec<u64> = (0..16).collect();
        let out = parallel_map_jobs(4, &items, |&x| {
            std::thread::sleep(std::time::Duration::from_millis(16 - x));
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn join_returns_both_results() {
        assert_eq!(join(1, || 1, || "two"), (1, "two"));
        assert_eq!(join(4, || 1, || "two"), (1, "two"));
    }

    #[test]
    #[should_panic(expected = "worker thread panicked")]
    fn worker_panics_propagate() {
        let items = [0u8, 1, 2, 3];
        let _ = parallel_map_jobs(2, &items, |&x| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn jobs_from_env_is_positive() {
        assert!(jobs_from_env() >= 1);
    }
}

//! From-scratch neural-network machinery for the OSML reproduction.
//!
//! The paper trains its models with TensorFlow 1.13 on a GTX 1080; the
//! networks themselves are tiny (3 hidden layers of 40 neurons for
//! Model-A/B, 3 × 30 for Model-C's DQN), so this crate implements the exact
//! math in portable Rust instead:
//!
//! * [`Matrix`] — a minimal row-major `f32` matrix,
//! * [`Mlp`] — a multi-layer perceptron with ReLU hidden activations and a
//!   linear output layer, with full backpropagation,
//! * [`loss`] — MSE (Model-A, §IV-A) and the paper's zero-masked relative
//!   loss for Model-B (§IV-B): `L = 1/n Σ ((y/(y+C)) (s - y))²`,
//! * [`Adam`] — the Adam optimizer exactly as written in §IV-A, including
//!   the bias-correction step,
//! * [`Trainer`] — seeded mini-batch training with validation metrics,
//! * [`dqn`] — a Deep Q-Network (policy + target nets, experience replay,
//!   ε-greedy exploration) matching Model-C's structure (§IV-C),
//! * [`store`] — versioned on-disk persistence for trained networks,
//! * [`par`] — the scoped-thread work pool (`OSML_JOBS`) behind the
//!   parallel sweep/grid/training pipeline.
//!
//! Everything is deterministic given a seed.
//!
//! # Example
//!
//! ```
//! use osml_ml::{loss::Mse, Adam, Matrix, Mlp, MlpConfig};
//!
//! // Learn y = 2x on a tiny net.
//! let mut mlp = Mlp::new(&MlpConfig::new(&[1, 8, 1], 42));
//! let mut adam = Adam::with_defaults(&mlp);
//! let x = Matrix::from_rows(&[&[0.0], &[0.5], &[1.0], &[1.5]]);
//! let y = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
//! for _ in 0..3000 {
//!     mlp.train_batch(&x, &y, &Mse, &mut adam);
//! }
//! let pred = mlp.forward(&[1.25]);
//! assert!((pred[0] - 2.5).abs() < 0.2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dqn;
pub mod loss;
mod matrix;
mod mlp;
mod optimizer;
pub mod par;
pub mod store;
mod trainer;

pub use matrix::Matrix;
pub use mlp::{Mlp, MlpConfig};
pub use optimizer::{Adam, AdamConfig, Sgd};
pub use trainer::{Metrics, TrainError, TrainReport, Trainer, TrainerConfig};

use crate::loss::Loss;
use crate::optimizer::Optimizer;
use crate::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Architecture of an [`Mlp`]: layer widths from input to output, plus the
/// weight-initialization seed.
///
/// The paper's Model-A/B use `[input, 40, 40, 40, output]`; Model-C's policy
/// and target networks use `[input, 30, 30, 30, |actions|]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Layer widths, `[input, hidden..., output]`. At least two entries.
    pub layer_sizes: Vec<usize>,
    /// Seed for Xavier weight initialization.
    pub seed: u64,
}

impl MlpConfig {
    /// Builds a config.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two layer sizes are given or any is zero.
    pub fn new(layer_sizes: &[usize], seed: u64) -> Self {
        assert!(layer_sizes.len() >= 2, "need at least input and output layers");
        assert!(layer_sizes.iter().all(|&s| s > 0), "layer sizes must be positive");
        MlpConfig { layer_sizes: layer_sizes.to_vec(), seed }
    }

    /// The paper's Model-A/B shape: three hidden layers of 40 neurons.
    pub fn paper_mlp(inputs: usize, outputs: usize, seed: u64) -> Self {
        MlpConfig::new(&[inputs, 40, 40, 40, outputs], seed)
    }

    /// The paper's Model-C (DQN) shape: three hidden layers of 30 neurons.
    pub fn paper_dqn(inputs: usize, outputs: usize, seed: u64) -> Self {
        MlpConfig::new(&[inputs, 30, 30, 30, outputs], seed)
    }
}

/// One fully connected layer: `y = x W + b`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct Dense {
    pub(crate) weights: Matrix, // in x out
    pub(crate) bias: Vec<f32>,
}

/// A multi-layer perceptron with ReLU hidden activations and a linear output
/// layer, trained by backpropagation.
///
/// "Each layer is a set of nonlinear functions of a weighted sum of all
/// outputs that are fully connected from the prior one" (§IV-A); ReLU
/// (`f(x) = max(0, x)`) is the activation, chosen by the paper for
/// backpropagation efficiency.
///
/// # Example
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Creates a network with Xavier-initialized weights and zero biases.
    pub fn new(config: &MlpConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let layers = config
            .layer_sizes
            .windows(2)
            .map(|w| {
                let (n_in, n_out) = (w[0], w[1]);
                let bound = (6.0 / (n_in + n_out) as f32).sqrt();
                let data =
                    (0..n_in * n_out).map(|_| rng.gen_range(-bound..bound)).collect::<Vec<_>>();
                Dense { weights: Matrix::from_vec(n_in, n_out, data), bias: vec![0.0; n_out] }
            })
            .collect();
        Mlp { layers }
    }

    /// Input width.
    pub fn input_size(&self) -> usize {
        self.layers.first().expect("mlp has layers").weights.rows()
    }

    /// Output width.
    pub fn output_size(&self) -> usize {
        self.layers.last().expect("mlp has layers").weights.cols()
    }

    /// Total number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(|l| l.weights.as_slice().len() + l.bias.len()).sum()
    }

    pub(crate) fn layers(&self) -> &[Dense] {
        &self.layers
    }

    pub(crate) fn layers_mut(&mut self) -> &mut [Dense] {
        &mut self.layers
    }

    /// Forward pass for a single input vector.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.input_size()`.
    pub fn forward(&self, input: &[f32]) -> Vec<f32> {
        let out = self.forward_batch(&Matrix::row_vector(input));
        out.row(0).to_vec()
    }

    /// Forward pass for a batch (one input per row).
    ///
    /// Each layer runs through the fused matmul+bias+activation kernel into
    /// one of two ping-ponged scratch matrices, so inference allocates two
    /// buffers total regardless of depth.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the input width.
    pub fn forward_batch(&self, input: &Matrix) -> Matrix {
        let mut a = Matrix::zeros(0, 0);
        let mut b = Matrix::zeros(0, 0);
        let _ = self.forward_batch_into(input, &mut a, &mut b);
        if (self.layers.len() - 1).is_multiple_of(2) {
            a
        } else {
            b
        }
    }

    /// Forward pass for a batch into caller-provided scratch matrices,
    /// allocating nothing once the scratch has warmed up to the layer widths.
    /// Returns a borrow of whichever scratch holds the output.
    ///
    /// Row `i` of the result is bit-identical to `forward(input.row(i))`: the
    /// fused kernel computes every output row independently with the same
    /// f32 operation sequence regardless of batch size.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the input width.
    pub fn forward_batch_into<'s>(
        &self,
        input: &Matrix,
        scratch_a: &'s mut Matrix,
        scratch_b: &'s mut Matrix,
    ) -> &'s Matrix {
        assert_eq!(input.cols(), self.input_size(), "input width mismatch");
        let n_layers = self.layers.len();
        for (i, layer) in self.layers.iter().enumerate() {
            let relu = i + 1 < n_layers; // hidden layers ReLU, output linear
            let (src, dst): (&Matrix, &mut Matrix) = if i == 0 {
                (input, &mut *scratch_a)
            } else if i % 2 == 1 {
                (scratch_a, scratch_b)
            } else {
                (scratch_b, scratch_a)
            };
            src.matmul_bias_act_into(&layer.weights, &layer.bias, relu, dst);
        }
        if (n_layers - 1).is_multiple_of(2) {
            scratch_a
        } else {
            scratch_b
        }
    }

    /// Forward pass keeping each layer's post-activation output for
    /// backpropagation: `outputs[i]` is layer `i`'s output (after ReLU on
    /// hidden layers). Pre-activations are not cached — for ReLU the
    /// derivative mask is recoverable from the output (`max(0, z) > 0 ⟺
    /// z > 0`), which halves the cache and drops a clone per layer.
    fn forward_with_cache(&self, input: &Matrix) -> Vec<Matrix> {
        assert_eq!(input.cols(), self.input_size(), "input width mismatch");
        let n_layers = self.layers.len();
        let mut outputs: Vec<Matrix> = Vec::with_capacity(n_layers);
        for (i, layer) in self.layers.iter().enumerate() {
            let src = if i == 0 { input } else { &outputs[i - 1] };
            let mut z = Matrix::zeros(0, 0);
            src.matmul_bias_act_into(&layer.weights, &layer.bias, i + 1 < n_layers, &mut z);
            outputs.push(z);
        }
        outputs
    }

    /// One backpropagation step on a batch: computes gradients of `loss` and
    /// applies them through `optimizer`. Returns the pre-step batch loss.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches between `x`, `y` and the network.
    pub fn train_batch<L: Loss + ?Sized, O: Optimizer>(
        &mut self,
        x: &Matrix,
        y: &Matrix,
        loss: &L,
        optimizer: &mut O,
    ) -> f32 {
        let (grads, value) = self.gradients(x, y, loss);
        optimizer.step(self, &grads);
        value
    }

    /// Gradients of `loss` w.r.t. every parameter, plus the batch loss.
    /// Exposed for the DQN's manual update loop and for gradient tests.
    pub fn gradients<L: Loss + ?Sized>(
        &self,
        x: &Matrix,
        y: &Matrix,
        loss: &L,
    ) -> (ParamGrads, f32) {
        let outputs = self.forward_with_cache(x);
        let output = outputs.last().expect("network has layers");
        let value = loss.value(output, y);

        let mut weight_grads = Vec::with_capacity(self.layers.len());
        let mut bias_grads = Vec::with_capacity(self.layers.len());
        // delta = dL/dz for the current layer, starting at the (linear) output.
        let mut delta = loss.gradient(output, y);
        let mut delta_scratch = Matrix::zeros(0, 0);
        for i in (0..self.layers.len()).rev() {
            if i + 1 < self.layers.len() {
                // ReLU derivative of this hidden layer, recovered from its
                // post-activation output: max(0, z) ≤ 0 exactly when z ≤ 0.
                let act = &outputs[i];
                for (d, &a) in delta.as_mut_slice().iter_mut().zip(act.as_slice()) {
                    if a <= 0.0 {
                        *d = 0.0;
                    }
                }
            }
            let layer_input: &Matrix = if i == 0 { x } else { &outputs[i - 1] };
            weight_grads.push(layer_input.transpose_matmul(&delta));
            bias_grads.push(delta.column_sums());
            if i > 0 {
                delta.matmul_transpose_into(&self.layers[i].weights, &mut delta_scratch);
                std::mem::swap(&mut delta, &mut delta_scratch);
            }
        }
        weight_grads.reverse();
        bias_grads.reverse();
        (ParamGrads { weights: weight_grads, biases: bias_grads }, value)
    }
}

/// Per-layer parameter gradients produced by [`Mlp::gradients`].
#[derive(Debug, Clone)]
pub struct ParamGrads {
    /// `∂L/∂W` per layer.
    pub weights: Vec<Matrix>,
    /// `∂L/∂b` per layer.
    pub biases: Vec<Vec<f32>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{Loss, MaskedRelativeMse, Mse};
    use crate::{Adam, Sgd};

    #[test]
    fn shapes_are_consistent() {
        let mlp = Mlp::new(&MlpConfig::paper_mlp(11, 5, 1));
        assert_eq!(mlp.input_size(), 11);
        assert_eq!(mlp.output_size(), 5);
        assert_eq!(mlp.parameter_count(), 11 * 40 + 40 + 40 * 40 + 40 + 40 * 40 + 40 + 40 * 5 + 5);
        let out = mlp.forward(&[0.0; 11]);
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn initialization_is_seeded() {
        let a = Mlp::new(&MlpConfig::new(&[4, 8, 2], 7));
        let b = Mlp::new(&MlpConfig::new(&[4, 8, 2], 7));
        let c = Mlp::new(&MlpConfig::new(&[4, 8, 2], 8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn backprop_gradients_match_finite_differences() {
        let mut mlp = Mlp::new(&MlpConfig::new(&[3, 5, 4, 2], 123));
        let x = Matrix::from_rows(&[&[0.3, -0.8, 1.2], &[1.0, 0.5, -0.4]]);
        let y = Matrix::from_rows(&[&[0.5, -1.0], &[1.5, 0.25]]);
        let (grads, _) = mlp.gradients(&x, &y, &Mse);

        let eps = 1e-2f32;
        // Spot-check a handful of weights in every layer.
        for li in 0..3 {
            let n = mlp.layers()[li].weights.as_slice().len();
            for wi in (0..n).step_by(n / 4 + 1) {
                let orig = mlp.layers()[li].weights.as_slice()[wi];
                mlp.layers_mut()[li].weights.as_mut_slice()[wi] = orig + eps;
                let lp = Mse.value(&mlp.forward_batch(&x), &y);
                mlp.layers_mut()[li].weights.as_mut_slice()[wi] = orig - eps;
                let lm = Mse.value(&mlp.forward_batch(&x), &y);
                mlp.layers_mut()[li].weights.as_mut_slice()[wi] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                let analytic = grads.weights[li].as_slice()[wi];
                assert!(
                    (numeric - analytic).abs() < 2e-2 + 0.05 * numeric.abs(),
                    "layer {li} weight {wi}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
        // And the biases.
        for li in 0..3 {
            let orig = mlp.layers()[li].bias[0];
            mlp.layers_mut()[li].bias[0] = orig + eps;
            let lp = Mse.value(&mlp.forward_batch(&x), &y);
            mlp.layers_mut()[li].bias[0] = orig - eps;
            let lm = Mse.value(&mlp.forward_batch(&x), &y);
            mlp.layers_mut()[li].bias[0] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grads.biases[li][0];
            assert!(
                (numeric - analytic).abs() < 2e-2 + 0.05 * numeric.abs(),
                "layer {li} bias: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn sgd_learns_a_linear_function() {
        let mut mlp = Mlp::new(&MlpConfig::new(&[2, 8, 1], 5));
        let mut sgd = Sgd::new(0.05);
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let y = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]); // y = a + 2b
        let mut last = f32::INFINITY;
        for _ in 0..2000 {
            last = mlp.train_batch(&x, &y, &Mse, &mut sgd);
        }
        assert!(last < 1e-3, "SGD failed to converge, loss {last}");
    }

    #[test]
    fn adam_learns_a_nonlinear_function() {
        let mut mlp = Mlp::new(&MlpConfig::new(&[1, 16, 16, 1], 9));
        let mut adam = Adam::with_defaults(&mlp);
        // y = x^2 on [-1, 1].
        let xs: Vec<f32> = (0..21).map(|i| -1.0 + i as f32 * 0.1).collect();
        let x = Matrix::from_vec(21, 1, xs.clone());
        let y = Matrix::from_vec(21, 1, xs.iter().map(|v| v * v).collect());
        for _ in 0..1500 {
            mlp.train_batch(&x, &y, &Mse, &mut adam);
        }
        let pred = mlp.forward(&[0.5]);
        assert!((pred[0] - 0.25).abs() < 0.05, "got {}", pred[0]);
    }

    #[test]
    fn masked_loss_trains_only_real_labels() {
        // Two outputs; output 1's labels are always 0 ("non-existent case").
        let mut mlp = Mlp::new(&MlpConfig::new(&[1, 8, 2], 3));
        let mut adam = Adam::with_defaults(&mlp);
        let loss = MaskedRelativeMse::default();
        let x = Matrix::from_rows(&[&[0.0], &[1.0]]);
        let y = Matrix::from_rows(&[&[1.0, 0.0], &[3.0, 0.0]]);
        for _ in 0..1000 {
            mlp.train_batch(&x, &y, &loss, &mut adam);
        }
        let p = mlp.forward(&[1.0]);
        assert!((p[0] - 3.0).abs() < 0.2, "real label must be learned, got {}", p[0]);
        assert!(loss.value(&mlp.forward_batch(&x), &y) < 1e-2);
    }

    #[test]
    fn forward_is_deterministic() {
        let mlp = Mlp::new(&MlpConfig::paper_dqn(13, 49, 1));
        let input = vec![0.5; 13];
        assert_eq!(mlp.forward(&input), mlp.forward(&input));
    }

    #[test]
    fn serde_round_trip_preserves_predictions() {
        let mlp = Mlp::new(&MlpConfig::new(&[4, 10, 3], 11));
        let json = serde_json::to_string(&mlp).unwrap();
        let back: Mlp = serde_json::from_str(&json).unwrap();
        let x = [0.1, -0.2, 0.3, 0.4];
        assert_eq!(mlp.forward(&x), back.forward(&x));
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn forward_rejects_wrong_width() {
        let mlp = Mlp::new(&MlpConfig::new(&[4, 2], 0));
        let _ = mlp.forward(&[1.0, 2.0]);
    }
}

//! Model persistence: save and load trained networks as versioned JSON.
//!
//! The paper trains for nine months and ships frozen TensorFlow graphs to
//! the scheduler host; the equivalent here is a [`ModelStore`] directory of
//! JSON-serialized [`Mlp`]s with a format-version guard, so a trained suite
//! survives process restarts and can be shipped between machines.

use crate::dqn::DqnCheckpoint;
use crate::Mlp;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};

/// Format version written into every stored model; bumped on breaking
/// changes to the network serialization.
pub const STORE_VERSION: u32 = 1;

/// Errors from [`ModelStore`] operations.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file is not valid model JSON.
    Parse(serde_json::Error),
    /// The file was written by an incompatible store version.
    VersionMismatch {
        /// Version found in the file.
        found: u32,
        /// Version this build expects.
        expected: u32,
    },
    /// The model name is empty or contains a path separator — accepting it
    /// would let a caller-supplied name escape the store directory.
    InvalidName {
        /// The rejected name.
        name: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "model store i/o error: {e}"),
            StoreError::Parse(e) => write!(f, "model store parse error: {e}"),
            StoreError::VersionMismatch { found, expected } => {
                write!(f, "model store version {found} incompatible with expected {expected}")
            }
            StoreError::InvalidName { name } => {
                write!(f, "invalid model name {name:?}: must be non-empty, no path separators")
            }
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Parse(e) => Some(e),
            StoreError::VersionMismatch { .. } | StoreError::InvalidName { .. } => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<serde_json::Error> for StoreError {
    fn from(e: serde_json::Error) -> Self {
        StoreError::Parse(e)
    }
}

#[derive(Serialize, Deserialize)]
struct StoredModel {
    version: u32,
    name: String,
    mlp: Mlp,
}

#[derive(Serialize, Deserialize)]
struct StoredAgent {
    version: u32,
    name: String,
    agent: DqnCheckpoint,
}

/// Checks a caller-supplied model name: non-empty, no path separators, no
/// parent-directory traversal.
fn validate_name(name: &str) -> Result<(), StoreError> {
    let traversal = name == "." || name == "..";
    if name.is_empty() || traversal || name.contains(['/', '\\']) {
        return Err(StoreError::InvalidName { name: name.to_owned() });
    }
    Ok(())
}

/// Writes `contents` to `path` crash-atomically: the bytes land in a temp
/// file in the same directory, which is then `rename`d over the target. A
/// kill at any instant leaves either the old file or the new one — never a
/// torn write that poisons the next startup. Shared by the store and by the
/// bench report writer (the results files feed the same restart path).
pub fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

/// A directory of named, versioned model files.
///
/// # Example
///
/// ```
/// # use osml_ml::{Mlp, MlpConfig, store::ModelStore};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dir = std::env::temp_dir().join("osml-store-doc");
/// let store = ModelStore::open(&dir)?;
/// let mlp = Mlp::new(&MlpConfig::new(&[4, 8, 2], 7));
/// store.save("model-a", &mlp)?;
/// let back = store.load("model-a")?;
/// assert_eq!(back.forward(&[0.1, 0.2, 0.3, 0.4]), mlp.forward(&[0.1, 0.2, 0.3, 0.4]));
/// # std::fs::remove_dir_all(&dir)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ModelStore {
    dir: PathBuf,
}

impl ModelStore {
    /// Opens (creating if needed) a store at `dir`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the directory cannot be created.
    pub fn open<P: AsRef<Path>>(dir: P) -> Result<Self, StoreError> {
        std::fs::create_dir_all(dir.as_ref())?;
        Ok(ModelStore { dir: dir.as_ref().to_path_buf() })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.json"))
    }

    fn agent_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.agent.json"))
    }

    /// Saves `mlp` under `name`, overwriting any previous version. The write
    /// is crash-atomic (temp file + rename).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::InvalidName`] for an empty name or one with
    /// path separators, or [`StoreError::Io`] on write failure.
    pub fn save(&self, name: &str, mlp: &Mlp) -> Result<(), StoreError> {
        validate_name(name)?;
        let stored =
            StoredModel { version: STORE_VERSION, name: name.to_owned(), mlp: mlp.clone() };
        let json = serde_json::to_string(&stored)?;
        write_atomic(&self.path(name), &json)?;
        Ok(())
    }

    /// Loads the model stored under `name`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::InvalidName`] for a malformed name,
    /// [`StoreError::Io`] if the file is missing,
    /// [`StoreError::Parse`] if it is corrupt, or
    /// [`StoreError::VersionMismatch`] if it predates [`STORE_VERSION`].
    pub fn load(&self, name: &str) -> Result<Mlp, StoreError> {
        validate_name(name)?;
        let json = std::fs::read_to_string(self.path(name))?;
        let stored: StoredModel = serde_json::from_str(&json)?;
        if stored.version != STORE_VERSION {
            return Err(StoreError::VersionMismatch {
                found: stored.version,
                expected: STORE_VERSION,
            });
        }
        Ok(stored.mlp)
    }

    /// Saves a complete DQN agent checkpoint (policy + target nets, replay
    /// ring, optimizer state, RNG position) under `name`, crash-atomically.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::InvalidName`] for a malformed name or
    /// [`StoreError::Io`] on write failure.
    pub fn save_agent(&self, name: &str, agent: &DqnCheckpoint) -> Result<(), StoreError> {
        validate_name(name)?;
        let stored =
            StoredAgent { version: STORE_VERSION, name: name.to_owned(), agent: agent.clone() };
        let json = serde_json::to_string(&stored)?;
        write_atomic(&self.agent_path(name), &json)?;
        Ok(())
    }

    /// Loads the agent checkpoint stored under `name`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::InvalidName`] for a malformed name,
    /// [`StoreError::Io`] if the file is missing, [`StoreError::Parse`] if
    /// it is corrupt, or [`StoreError::VersionMismatch`] if it predates
    /// [`STORE_VERSION`].
    pub fn load_agent(&self, name: &str) -> Result<DqnCheckpoint, StoreError> {
        validate_name(name)?;
        let json = std::fs::read_to_string(self.agent_path(name))?;
        let stored: StoredAgent = serde_json::from_str(&json)?;
        if stored.version != STORE_VERSION {
            return Err(StoreError::VersionMismatch {
                found: stored.version,
                expected: STORE_VERSION,
            });
        }
        Ok(stored.agent)
    }

    /// Whether an agent checkpoint named `name` exists in the store.
    pub fn contains_agent(&self, name: &str) -> bool {
        self.agent_path(name).exists()
    }

    /// Whether a model named `name` exists in the store.
    pub fn contains(&self, name: &str) -> bool {
        self.path(name).exists()
    }

    /// Names of all stored models.
    pub fn names(&self) -> Vec<String> {
        let Ok(entries) = std::fs::read_dir(&self.dir) else { return Vec::new() };
        let mut names: Vec<String> = entries
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                name.strip_suffix(".json").map(str::to_owned)
            })
            .collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MlpConfig;

    fn temp_store(tag: &str) -> (ModelStore, PathBuf) {
        let dir =
            std::env::temp_dir().join(format!("osml-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        (ModelStore::open(&dir).unwrap(), dir)
    }

    #[test]
    fn save_load_round_trip_preserves_weights() {
        let (store, dir) = temp_store("rt");
        let mlp = Mlp::new(&MlpConfig::paper_mlp(11, 5, 3));
        store.save("model-a", &mlp).unwrap();
        let back = store.load("model-a").unwrap();
        let x = vec![0.5; 11];
        assert_eq!(mlp.forward(&x), back.forward(&x));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn missing_model_is_an_io_error() {
        let (store, dir) = temp_store("missing");
        assert!(matches!(store.load("nope"), Err(StoreError::Io(_))));
        assert!(!store.contains("nope"));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn corrupt_file_is_a_parse_error() {
        let (store, dir) = temp_store("corrupt");
        std::fs::write(dir.join("bad.json"), "{not json").unwrap();
        assert!(matches!(store.load("bad"), Err(StoreError::Parse(_))));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let (store, dir) = temp_store("ver");
        let mlp = Mlp::new(&MlpConfig::new(&[2, 2], 0));
        store.save("m", &mlp).unwrap();
        // Tamper with the version field.
        let path = dir.join("m.json");
        let text =
            std::fs::read_to_string(&path).unwrap().replace("\"version\":1", "\"version\":99");
        std::fs::write(&path, text).unwrap();
        assert!(matches!(
            store.load("m"),
            Err(StoreError::VersionMismatch { found: 99, expected: 1 })
        ));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn invalid_names_are_rejected_before_touching_disk() {
        let (store, dir) = temp_store("badname");
        let mlp = Mlp::new(&MlpConfig::new(&[2, 2], 0));
        for name in ["", "../escape", "a/b", "a\\b", ".", ".."] {
            assert!(
                matches!(store.save(name, &mlp), Err(StoreError::InvalidName { .. })),
                "save must reject {name:?}"
            );
            assert!(
                matches!(store.load(name), Err(StoreError::InvalidName { .. })),
                "load must reject {name:?}"
            );
        }
        // Nothing escaped the (still empty) store directory.
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn save_is_atomic_and_leaves_no_temp_file() {
        let (store, dir) = temp_store("atomic");
        let mlp = Mlp::new(&MlpConfig::new(&[2, 2], 0));
        store.save("m", &mlp).unwrap();
        store.save("m", &mlp).unwrap(); // overwrite path also goes through rename
        let leftovers: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok()?.file_name().into_string().ok())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
        assert!(store.load("m").is_ok());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn agent_checkpoint_round_trips_through_the_store() {
        use crate::dqn::{Dqn, DqnConfig, Transition};
        let (store, dir) = temp_store("agent");
        let mut cfg = DqnConfig::paper(2, 3, 21);
        cfg.batch_size = 8;
        let mut agent = Dqn::new(cfg);
        for i in 0..16 {
            agent.observe(Transition {
                state: vec![i as f32, 0.0],
                action: i % 3,
                reward: (i % 2) as f32,
                next_state: vec![0.0, 0.0],
            });
            agent.train_step();
        }
        store.save_agent("model-c", &agent.checkpoint()).unwrap();
        assert!(store.contains_agent("model-c"));
        let mut restored = Dqn::restore(store.load_agent("model-c").unwrap());
        // Behavioural equivalence: identical Q-values AND an identical
        // exploration stream from the restored RNG position.
        assert_eq!(agent.q_values(&[0.5, 0.5]), restored.q_values(&[0.5, 0.5]));
        let a: Vec<usize> = (0..32).map(|i| agent.select_action(&[i as f32, 1.0])).collect();
        let b: Vec<usize> = (0..32).map(|i| restored.select_action(&[i as f32, 1.0])).collect();
        assert_eq!(a, b);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn corrupt_agent_checkpoint_is_a_parse_error() {
        let (store, dir) = temp_store("agent-corrupt");
        std::fs::write(dir.join("c.agent.json"), "{torn").unwrap();
        assert!(matches!(store.load_agent("c"), Err(StoreError::Parse(_))));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn names_lists_stored_models() {
        let (store, dir) = temp_store("names");
        let mlp = Mlp::new(&MlpConfig::new(&[2, 2], 0));
        store.save("b", &mlp).unwrap();
        store.save("a", &mlp).unwrap();
        assert_eq!(store.names(), vec!["a".to_owned(), "b".to_owned()]);
        std::fs::remove_dir_all(dir).unwrap();
    }
}

//! Model persistence: save and load trained networks as versioned JSON.
//!
//! The paper trains for nine months and ships frozen TensorFlow graphs to
//! the scheduler host; the equivalent here is a [`ModelStore`] directory of
//! JSON-serialized [`Mlp`]s with a format-version guard, so a trained suite
//! survives process restarts and can be shipped between machines.

use crate::Mlp;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};

/// Format version written into every stored model; bumped on breaking
/// changes to the network serialization.
pub const STORE_VERSION: u32 = 1;

/// Errors from [`ModelStore`] operations.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file is not valid model JSON.
    Parse(serde_json::Error),
    /// The file was written by an incompatible store version.
    VersionMismatch {
        /// Version found in the file.
        found: u32,
        /// Version this build expects.
        expected: u32,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "model store i/o error: {e}"),
            StoreError::Parse(e) => write!(f, "model store parse error: {e}"),
            StoreError::VersionMismatch { found, expected } => {
                write!(f, "model store version {found} incompatible with expected {expected}")
            }
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Parse(e) => Some(e),
            StoreError::VersionMismatch { .. } => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<serde_json::Error> for StoreError {
    fn from(e: serde_json::Error) -> Self {
        StoreError::Parse(e)
    }
}

#[derive(Serialize, Deserialize)]
struct StoredModel {
    version: u32,
    name: String,
    mlp: Mlp,
}

/// A directory of named, versioned model files.
///
/// # Example
///
/// ```
/// # use osml_ml::{Mlp, MlpConfig, store::ModelStore};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dir = std::env::temp_dir().join("osml-store-doc");
/// let store = ModelStore::open(&dir)?;
/// let mlp = Mlp::new(&MlpConfig::new(&[4, 8, 2], 7));
/// store.save("model-a", &mlp)?;
/// let back = store.load("model-a")?;
/// assert_eq!(back.forward(&[0.1, 0.2, 0.3, 0.4]), mlp.forward(&[0.1, 0.2, 0.3, 0.4]));
/// # std::fs::remove_dir_all(&dir)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ModelStore {
    dir: PathBuf,
}

impl ModelStore {
    /// Opens (creating if needed) a store at `dir`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the directory cannot be created.
    pub fn open<P: AsRef<Path>>(dir: P) -> Result<Self, StoreError> {
        std::fs::create_dir_all(dir.as_ref())?;
        Ok(ModelStore { dir: dir.as_ref().to_path_buf() })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.json"))
    }

    /// Saves `mlp` under `name`, overwriting any previous version.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on write failure.
    pub fn save(&self, name: &str, mlp: &Mlp) -> Result<(), StoreError> {
        let stored =
            StoredModel { version: STORE_VERSION, name: name.to_owned(), mlp: mlp.clone() };
        let json = serde_json::to_string(&stored)?;
        std::fs::write(self.path(name), json)?;
        Ok(())
    }

    /// Loads the model stored under `name`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the file is missing,
    /// [`StoreError::Parse`] if it is corrupt, or
    /// [`StoreError::VersionMismatch`] if it predates [`STORE_VERSION`].
    pub fn load(&self, name: &str) -> Result<Mlp, StoreError> {
        let json = std::fs::read_to_string(self.path(name))?;
        let stored: StoredModel = serde_json::from_str(&json)?;
        if stored.version != STORE_VERSION {
            return Err(StoreError::VersionMismatch {
                found: stored.version,
                expected: STORE_VERSION,
            });
        }
        Ok(stored.mlp)
    }

    /// Whether a model named `name` exists in the store.
    pub fn contains(&self, name: &str) -> bool {
        self.path(name).exists()
    }

    /// Names of all stored models.
    pub fn names(&self) -> Vec<String> {
        let Ok(entries) = std::fs::read_dir(&self.dir) else { return Vec::new() };
        let mut names: Vec<String> = entries
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                name.strip_suffix(".json").map(str::to_owned)
            })
            .collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MlpConfig;

    fn temp_store(tag: &str) -> (ModelStore, PathBuf) {
        let dir =
            std::env::temp_dir().join(format!("osml-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        (ModelStore::open(&dir).unwrap(), dir)
    }

    #[test]
    fn save_load_round_trip_preserves_weights() {
        let (store, dir) = temp_store("rt");
        let mlp = Mlp::new(&MlpConfig::paper_mlp(11, 5, 3));
        store.save("model-a", &mlp).unwrap();
        let back = store.load("model-a").unwrap();
        let x = vec![0.5; 11];
        assert_eq!(mlp.forward(&x), back.forward(&x));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn missing_model_is_an_io_error() {
        let (store, dir) = temp_store("missing");
        assert!(matches!(store.load("nope"), Err(StoreError::Io(_))));
        assert!(!store.contains("nope"));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn corrupt_file_is_a_parse_error() {
        let (store, dir) = temp_store("corrupt");
        std::fs::write(dir.join("bad.json"), "{not json").unwrap();
        assert!(matches!(store.load("bad"), Err(StoreError::Parse(_))));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let (store, dir) = temp_store("ver");
        let mlp = Mlp::new(&MlpConfig::new(&[2, 2], 0));
        store.save("m", &mlp).unwrap();
        // Tamper with the version field.
        let path = dir.join("m.json");
        let text =
            std::fs::read_to_string(&path).unwrap().replace("\"version\":1", "\"version\":99");
        std::fs::write(&path, text).unwrap();
        assert!(matches!(
            store.load("m"),
            Err(StoreError::VersionMismatch { found: 99, expected: 1 })
        ));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn names_lists_stored_models() {
        let (store, dir) = temp_store("names");
        let mlp = Mlp::new(&MlpConfig::new(&[2, 2], 0));
        store.save("b", &mlp).unwrap();
        store.save("a", &mlp).unwrap();
        assert_eq!(store.names(), vec!["a".to_owned(), "b".to_owned()]);
        std::fs::remove_dir_all(dir).unwrap();
    }
}

//! Pins the parallel execution layer's core guarantee: grids computed with
//! one worker are bit-identical to grids computed with several, because
//! every cell derives its simulation seed from its own coordinates.

use osml_baselines::{Parties, Unmanaged};
use osml_bench::grid::{colocation_grid_jobs, oracle_grid_jobs};
use osml_workloads::Service;

const STEPS: [usize; 2] = [20, 60];

#[test]
fn colocation_grid_is_bit_identical_across_job_counts() {
    let run = |jobs: usize| {
        colocation_grid_jobs(
            jobs,
            "unmanaged",
            Unmanaged::new,
            Service::ImgDnn,
            Service::Xapian,
            Service::Moses,
            &[],
            &STEPS,
            10,
        )
    };
    let sequential = run(1);
    let parallel = run(4);
    assert_eq!(sequential.cells, parallel.cells);
    assert_eq!(sequential.steps, parallel.steps);
}

#[test]
fn managed_policy_grid_is_bit_identical_across_job_counts() {
    // A managed policy exercises scheduler state built per cell.
    let run = |jobs: usize| {
        colocation_grid_jobs(
            jobs,
            "parties",
            Parties::new,
            Service::ImgDnn,
            Service::Xapian,
            Service::Moses,
            &[],
            &STEPS,
            10,
        )
    };
    assert_eq!(run(1).cells, run(4).cells);
}

#[test]
fn oracle_grid_is_bit_identical_across_job_counts() {
    let run = |jobs: usize| {
        oracle_grid_jobs(jobs, Service::ImgDnn, Service::Xapian, Service::Moses, &[], &STEPS)
    };
    assert_eq!(run(1).cells, run(4).cells);
}

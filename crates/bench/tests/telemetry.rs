//! The observability plane's two load-bearing guarantees:
//!
//! 1. **Observer effect is zero.** Attaching an enabled telemetry pipeline
//!    to a timeline run changes nothing about the run itself — the produced
//!    [`TimelineRecord`]s serialize byte-identically to an untraced run.
//!    Telemetry is write-only: no scheduler decision may read it.
//! 2. **The decision trace is complete.** Every action the scheduler counts
//!    leaves exactly one trace record marked `counts_as_action`, so the
//!    trace's action count equals `Scheduler::action_count()` exactly.
//!
//! Plus the histogram percentile property the snapshot format relies on:
//! when observations sit exactly on bucket bounds, percentile extraction is
//! exact (the rank-⌈q·n⌉ order statistic), not merely bucket-approximate.

use osml_baselines::Parties;
use osml_bench::suite::{trained_suite, SuiteConfig};
use osml_bench::timeline::{run_timeline, run_timeline_traced};
use osml_platform::Scheduler;
use osml_telemetry::{Histogram, Telemetry, LATENCY_US_BOUNDS};
use osml_workloads::loadgen::{ArrivalEvent, ArrivalScript, LoadSchedule};
use osml_workloads::Service;

fn script(variant: u64) -> ArrivalScript {
    // A family of small scripts: a permanent service plus a transient one
    // whose load and stay vary with the variant index.
    let rps = 150.0 + 50.0 * (variant % 4) as f64;
    ArrivalScript::new(
        vec![
            ArrivalEvent {
                service: Service::Login,
                arrive_s: 0.0,
                depart_s: f64::INFINITY,
                threads: 8,
                load: LoadSchedule::Constant { rps: 300.0 },
            },
            ArrivalEvent {
                service: Service::Ads,
                arrive_s: 4.0,
                depart_s: 20.0 + 5.0 * (variant % 3) as f64,
                threads: 8,
                load: LoadSchedule::Constant { rps },
            },
        ],
        45.0,
    )
}

#[test]
fn enabling_telemetry_does_not_change_parties_timelines() {
    for variant in 0..6u64 {
        let s = script(variant);
        let seed = 100 + variant;

        let mut plain = Parties::new();
        let untraced = run_timeline(&mut plain, &s, seed);

        let telemetry = Telemetry::enabled();
        let mut observed = Parties::new().with_telemetry(telemetry.clone());
        let traced = run_timeline_traced(&mut observed, &s, seed, &telemetry);

        assert!(telemetry.trace_record_count() > 0, "the observer must actually observe");
        assert_eq!(
            serde_json::to_string(&untraced).unwrap(),
            serde_json::to_string(&traced).unwrap(),
            "variant {variant}: telemetry must be write-only (zero observer effect)"
        );
    }
}

#[test]
fn enabling_telemetry_does_not_change_osml_timelines() {
    let template = trained_suite(SuiteConfig::Standard);
    let s = script(1);

    let mut plain = template.clone();
    let untraced = run_timeline(&mut plain, &s, 9);

    let telemetry = Telemetry::enabled();
    let mut observed = template.clone().with_telemetry(telemetry.clone());
    let traced = run_timeline_traced(&mut observed, &s, 9, &telemetry);

    assert!(telemetry.trace_record_count() > 0);
    assert!(
        telemetry.snapshot().histograms.contains_key("model.a.predict_us"),
        "span timings must flow while the run stays untouched"
    );
    assert_eq!(
        serde_json::to_string(&untraced).unwrap(),
        serde_json::to_string(&traced).unwrap(),
        "telemetry must be write-only (zero observer effect)"
    );
    // The control paths were identical too, not just the samples.
    assert_eq!(plain.log(), observed.log());
}

#[test]
fn trace_action_count_matches_scheduler_action_count() {
    let template = trained_suite(SuiteConfig::Standard);
    for variant in 0..3u64 {
        let telemetry = Telemetry::enabled();
        let mut osml = template.clone().with_telemetry(telemetry.clone());
        run_timeline_traced(&mut osml, &script(variant), 40 + variant, &telemetry);

        assert_eq!(
            telemetry.action_trace_count() as usize,
            osml.action_count(),
            "variant {variant}: every counted action must leave one trace record"
        );
        // And the in-memory sink agrees with the atomic counter.
        let counted = telemetry.trace_records().iter().filter(|r| r.counts_as_action).count();
        assert_eq!(counted, osml.action_count(), "variant {variant}");
        // Action records always carry the post-state they produced.
        for r in telemetry.trace_records().iter().filter(|r| r.counts_as_action) {
            assert!(r.app.is_some(), "actions are per-service: {r:?}");
            assert!(r.post.is_some(), "actions must record the post allocation: {r:?}");
        }
    }
}

#[test]
fn trace_action_count_matches_for_the_parties_baseline() {
    let telemetry = Telemetry::enabled();
    let mut parties = Parties::new().with_telemetry(telemetry.clone());
    run_timeline_traced(&mut parties, &script(2), 11, &telemetry);
    assert!(parties.action_count() > 0, "the baseline must have done something");
    assert_eq!(telemetry.action_trace_count() as usize, parties.action_count());
}

/// Deterministic xorshift generator — keeps the property test seedable
/// without pulling in a dependency.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

#[test]
fn percentiles_are_exact_on_bucket_bound_distributions() {
    // Property: when every observation sits exactly on a bucket upper
    // bound, percentile(q) is the exact order statistic of rank ⌈q·n⌉ —
    // bucketing loses nothing. Exercised over 200 random multisets drawn
    // from the standard latency ladder, with random sizes and quantiles.
    let mut rng = Rng(0x0531_17AB);
    for case in 0..200 {
        let n = 1 + (rng.next() % 400) as usize;
        let mut values: Vec<f64> = (0..n)
            .map(|_| LATENCY_US_BOUNDS[(rng.next() as usize) % LATENCY_US_BOUNDS.len()])
            .collect();
        let mut hist = Histogram::latency_us();
        for &v in &values {
            hist.record(v);
        }
        values.sort_by(f64::total_cmp);

        for q in [0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 1.00] {
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            let expected = values[rank - 1];
            let got = hist.percentile(q).unwrap();
            assert_eq!(
                got, expected,
                "case {case}: q={q} over n={n} must be the exact rank-{rank} statistic"
            );
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, n as u64);
        assert_eq!(snap.min, Some(values[0]));
        assert_eq!(snap.max, Some(values[n - 1]));
    }
}

#[test]
fn percentiles_clamp_to_the_observed_maximum_off_bounds() {
    // Off-bound values still never report a percentile above the true max.
    let mut rng = Rng(0xBEEF);
    for _ in 0..50 {
        let n = 1 + (rng.next() % 100) as usize;
        let values: Vec<f64> = (0..n).map(|_| (rng.next() % 10_000_000) as f64 / 13.0).collect();
        let mut hist = Histogram::latency_us();
        for &v in &values {
            hist.record(v);
        }
        let max = values.iter().copied().fold(f64::MIN, f64::max);
        for q in [0.5, 0.95, 0.99, 1.0] {
            assert!(hist.percentile(q).unwrap() <= max);
        }
    }
}

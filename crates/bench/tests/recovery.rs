//! Crash recovery's two load-bearing guarantees, end-to-end through the
//! bench harness:
//!
//! 1. **Recovery never corrupts the machine.** Killing the controller just
//!    before *any* tick and warm-restarting via `OsmlScheduler::recover`
//!    leaves the layout invariants (valid allocations, no core
//!    double-assignment) intact at every subsequent tick — including kills
//!    before the first checkpoint, which degrade to cold adoption.
//! 2. **The durable-state wiring is bit-transparent.** With no kill, a run
//!    under continuous journaling + periodic snapshots takes exactly the
//!    decisions an unwired run takes: snapshots are read-only, the journal
//!    is write-only, so fig10/fig18 outputs cannot shift.

use osml_bench::chaos::{run_crash_recovery, RestartPlan};
use osml_bench::run_colocation;
use osml_bench::suite::{trained_suite, SuiteConfig};
use osml_core::RecoveryMode;
use osml_workloads::{LaunchSpec, Service};

fn specs() -> [LaunchSpec; 2] {
    [
        LaunchSpec::at_percent_load(Service::Moses, 30.0),
        LaunchSpec::at_percent_load(Service::ImgDnn, 30.0),
    ]
}

#[test]
fn warm_recovery_holds_layout_invariants_at_every_kill_tick() {
    const TOTAL: usize = 16;
    const CHECKPOINT_EVERY: usize = 4;
    let template = trained_suite(SuiteConfig::Standard);
    for kill in 0..TOTAL {
        let out = run_crash_recovery(
            &template,
            &specs(),
            TOTAL,
            7,
            CHECKPOINT_EVERY,
            RestartPlan::KillThenWarm(kill),
        );
        assert!(out.all_placed, "kill {kill}: placement failed");
        assert!(
            out.layout_always_valid,
            "kill {kill}: recovery left an invalid layout on the machine"
        );
        let rec = out.recovery.expect("killed run must produce a recovery report");
        if kill >= CHECKPOINT_EVERY {
            // A checkpoint existed: the restart must be warm and restore
            // every service from its snapshot record.
            assert!(
                matches!(rec.mode, RecoveryMode::Warm),
                "kill {kill}: expected warm restart, got {:?}",
                rec.mode
            );
            assert_eq!(rec.restored, 2, "kill {kill}: {rec:?}");
            assert_eq!(rec.adopted + rec.dropped, 0, "kill {kill}: {rec:?}");
        } else {
            // Killed before the first checkpoint: no snapshot exists yet,
            // so recovery degrades gracefully to cold adoption.
            assert!(
                matches!(rec.mode, RecoveryMode::Cold { .. }),
                "kill {kill}: expected cold fallback, got {:?}",
                rec.mode
            );
            assert_eq!(rec.adopted, 2, "kill {kill}: {rec:?}");
        }
    }
}

#[test]
fn warm_recovery_is_no_worse_than_cold_restart() {
    const TOTAL: usize = 40;
    const KILL: usize = 12;
    let template = trained_suite(SuiteConfig::Standard);
    let warm =
        run_crash_recovery(&template, &specs(), TOTAL, 7, 10, RestartPlan::KillThenWarm(KILL));
    let cold =
        run_crash_recovery(&template, &specs(), TOTAL, 7, 10, RestartPlan::KillThenCold(KILL));
    assert!(warm.layout_always_valid && cold.layout_always_valid);
    assert!(
        warm.qos_fraction >= cold.qos_fraction,
        "warm {} vs cold {}",
        warm.qos_fraction,
        cold.qos_fraction
    );
    // The warm arm resumes the snapshotted action count and replays the
    // journal suffix; the cold arm starts counting from zero again.
    assert!(matches!(warm.recovery.as_ref().unwrap().mode, RecoveryMode::Warm));
    assert!(matches!(cold.recovery.as_ref().unwrap().mode, RecoveryMode::Cold { .. }));
    assert!(
        warm.actions > cold.actions,
        "warm restart must carry the pre-crash action count ({} vs {})",
        warm.actions,
        cold.actions
    );
}

#[test]
fn recovery_wiring_without_a_kill_is_bit_transparent() {
    let template = trained_suite(SuiteConfig::Standard);

    let mut plain = template.clone();
    let plain_out = run_colocation(&mut plain, &specs(), 30, 7);

    let wired = run_crash_recovery(&template, &specs(), 30, 7, 10, RestartPlan::NeverKilled);

    assert!(wired.layout_always_valid);
    assert!(wired.recovery.is_none(), "no kill, no recovery report");
    assert_eq!(wired.actions, plain_out.actions, "wiring changed the decision count");
    assert_eq!(wired.apps.len(), plain_out.apps.len());
    for (a, b) in plain_out.apps.iter().zip(&wired.apps) {
        assert_eq!(a.cores, b.cores, "wiring changed an allocation");
        assert_eq!(a.ways, b.ways, "wiring changed an allocation");
        assert_eq!(a.p95_ms, b.p95_ms, "wiring changed the latency trajectory");
    }
}

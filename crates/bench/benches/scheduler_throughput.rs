//! Scheduler and simulator throughput: how fast the substrate ticks, the
//! ground-truth sweeps run, and the schedulers decide — the quantities that
//! make the training corpus and the grid experiments tractable.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use osml_baselines::{Parties, Unmanaged};
use osml_bench::grid::colocation_grid_jobs;
use osml_bench::scenario::bootstrap_allocation;
use osml_platform::{Scheduler, Substrate, Topology};
use osml_workloads::oaa::LatencyGrid;
use osml_workloads::{LaunchSpec, Service, SimConfig, SimServer};
use std::hint::black_box;

fn loaded_server(n: usize) -> SimServer {
    let mut server =
        SimServer::new(SimConfig { noise_sigma: 0.0, seed: 1, ..SimConfig::default() });
    let mix = [
        (Service::Moses, 30.0),
        (Service::ImgDnn, 25.0),
        (Service::Xapian, 20.0),
        (Service::MongoDb, 15.0),
        (Service::Login, 10.0),
        (Service::Specjbb, 20.0),
    ];
    for &(svc, pct) in mix.iter().take(n) {
        let spec = LaunchSpec::at_percent_load(svc, pct);
        let alloc = bootstrap_allocation(&mut server, spec.threads);
        server.launch(spec, alloc).expect("valid bootstrap");
    }
    server
}

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate");
    for n in [1usize, 4, 6] {
        group.bench_function(format!("sim_tick_{n}_apps"), |b| {
            let mut server = loaded_server(n);
            b.iter(|| {
                server.advance(1.0);
                black_box(server.now())
            })
        });
    }
    let topo = Topology::xeon_e5_2697_v4();
    group.bench_function("latency_grid_sweep_720_cells", |b| {
        b.iter(|| black_box(LatencyGrid::sweep(&topo, Service::Moses, 16, 2200.0)))
    });
    group.finish();

    let mut group = c.benchmark_group("scheduler");
    group.bench_function("parties_tick_4_apps", |b| {
        b.iter_batched(
            || {
                let mut server = loaded_server(4);
                let mut sched = Parties::new();
                for id in server.apps() {
                    sched.on_arrival(&mut server, id);
                }
                server.advance(1.0);
                (server, sched)
            },
            |(mut server, mut sched)| {
                sched.tick(&mut server);
                black_box(sched.action_count())
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// A small co-location grid, sequential vs parallel — the shape of work the
/// figure suite spends its wall-clock on.
fn bench_grid(c: &mut Criterion) {
    let steps = [20usize, 60];
    let run = |jobs: usize| {
        colocation_grid_jobs(
            jobs,
            "unmanaged",
            Unmanaged::new,
            Service::ImgDnn,
            Service::Xapian,
            Service::Moses,
            &[],
            &steps,
            10,
        )
    };
    let workers = osml_ml::par::jobs_from_env().max(2);
    let mut group = c.benchmark_group("grid");
    group.bench_function("colocation_2x2_jobs_1", |b| b.iter(|| black_box(run(1).cells)));
    group.bench_function(format!("colocation_2x2_jobs_{workers}"), |b| {
        b.iter(|| black_box(run(workers).cells))
    });
    group.finish();
}

criterion_group!(benches, bench_throughput, bench_grid);
criterion_main!(benches);

//! Model inference latency (paper §VI-D-3: the authors measure 0.23 s per
//! round trip to their GPU-hosted models; the from-scratch CPU
//! implementation answers in microseconds).

use criterion::{criterion_group, criterion_main, Criterion};
use osml_models::{features, ModelA, ModelB, ModelBPrime, ModelC};
use osml_platform::CounterSample;
use std::hint::black_box;

fn sample() -> CounterSample {
    CounterSample {
        ipc: 1.1,
        llc_misses_per_sec: 5.0e7,
        mbl_gbps: 8.0,
        cpu_usage: 9.5,
        memory_util_gb: 4.0,
        virt_memory_gb: 6.4,
        res_memory_gb: 4.0,
        llc_occupancy_mb: 18.0,
        allocated_cores: 12,
        allocated_ways: 8,
        frequency_ghz: 2.3,
        response_latency_ms: 7.5,
    }
}

fn bench_inference(c: &mut Criterion) {
    let s = sample();
    let model_a = ModelA::new(36, 20, 1);
    let model_b = ModelB::new(36, 20, 2);
    let model_bp = ModelBPrime::new(3);
    let model_c = ModelC::new(4);

    let mut group = c.benchmark_group("inference");
    group.bench_function("model_a_predict", |b| {
        b.iter(|| black_box(model_a.predict(black_box(&s))))
    });
    group.bench_function("model_b_predict", |b| {
        b.iter(|| black_box(model_b.predict(black_box(&s), 0.10)))
    });
    group.bench_function("model_b_prime_predict", |b| {
        b.iter(|| black_box(model_bp.predict(black_box(&s), 2, 1)))
    });
    group.bench_function("model_c_q_values", |b| {
        b.iter(|| black_box(model_c.q_values(black_box(&s))))
    });
    group.bench_function("feature_extraction", |b| {
        b.iter(|| black_box(features::model_a_input(black_box(&s))))
    });
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);

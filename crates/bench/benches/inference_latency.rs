//! Model inference latency (paper §VI-D-3: the authors measure 0.23 s per
//! round trip to their GPU-hosted models; the from-scratch CPU
//! implementation answers in microseconds).

use criterion::{criterion_group, criterion_main, Criterion};
use osml_ml::{loss::Mse, Adam, Matrix, Mlp, MlpConfig};
use osml_models::{features, ModelA, ModelB, ModelBPrime, ModelC};
use osml_platform::CounterSample;
use std::hint::black_box;

fn sample() -> CounterSample {
    CounterSample {
        ipc: 1.1,
        llc_misses_per_sec: 5.0e7,
        mbl_gbps: 8.0,
        cpu_usage: 9.5,
        memory_util_gb: 4.0,
        virt_memory_gb: 6.4,
        res_memory_gb: 4.0,
        llc_occupancy_mb: 18.0,
        allocated_cores: 12,
        allocated_ways: 8,
        frequency_ghz: 2.3,
        response_latency_ms: 7.5,
    }
}

fn bench_inference(c: &mut Criterion) {
    let s = sample();
    let model_a = ModelA::new(36, 20, 1);
    let model_b = ModelB::new(36, 20, 2);
    let model_bp = ModelBPrime::new(3);
    let model_c = ModelC::new(4);

    let mut group = c.benchmark_group("inference");
    group.bench_function("model_a_predict", |b| {
        b.iter(|| black_box(model_a.predict(black_box(&s))))
    });
    group.bench_function("model_b_predict", |b| {
        b.iter(|| black_box(model_b.predict(black_box(&s), 0.10)))
    });
    group.bench_function("model_b_prime_predict", |b| {
        b.iter(|| black_box(model_bp.predict(black_box(&s), 2, 1)))
    });
    group.bench_function("model_c_q_values", |b| {
        b.iter(|| black_box(model_c.q_values(black_box(&s))))
    });
    group.bench_function("feature_extraction", |b| {
        b.iter(|| black_box(features::model_a_input(black_box(&s))))
    });
    group.finish();
}

/// Deterministic pseudo-random matrix for kernel benchmarks.
fn filled(rows: usize, cols: usize, seed: u32) -> Matrix {
    let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
    let mut m = Matrix::zeros(rows, cols);
    for v in m.as_mut_slice() {
        state = state.wrapping_mul(1664525).wrapping_add(1013904223);
        *v = (state >> 8) as f32 / (1 << 24) as f32 - 0.5;
    }
    m
}

/// The matrix and MLP kernels on the shapes the training loop actually
/// runs: batch 128 through the paper's [36, 40, 40, 40, 20] network.
fn bench_kernels(c: &mut Criterion) {
    let a = filled(128, 36, 1);
    let w = filled(36, 40, 2);
    let bias = vec![0.1f32; 40];
    let mlp = Mlp::new(&MlpConfig::paper_mlp(36, 20, 7));
    let x = filled(128, 36, 3);
    let y = filled(128, 20, 4);

    let mut group = c.benchmark_group("kernels");
    group.bench_function("matmul_128x36x40", |b| b.iter(|| black_box(a.matmul(black_box(&w)))));
    group.bench_function("matmul_bias_relu_into_128x36x40", |b| {
        let mut out = Matrix::zeros(0, 0);
        b.iter(|| {
            a.matmul_bias_act_into(black_box(&w), &bias, true, &mut out);
            black_box(out.as_slice()[0])
        })
    });
    group.bench_function("transpose_matmul_128x36x40", |b| {
        let delta = filled(128, 40, 5);
        b.iter(|| black_box(a.transpose_matmul(black_box(&delta))))
    });
    group.bench_function("forward_batch_128", |b| {
        b.iter(|| black_box(mlp.forward_batch(black_box(&x))))
    });
    group.bench_function("gradients_128", |b| {
        b.iter(|| black_box(mlp.gradients(black_box(&x), &y, &Mse).1))
    });
    group.bench_function("train_batch_128", |b| {
        let mut net = mlp.clone();
        let mut adam = Adam::with_defaults(&net);
        b.iter(|| black_box(net.train_batch(black_box(&x), &y, &Mse, &mut adam)))
    });
    group.finish();
}

criterion_group!(benches, bench_inference, bench_kernels);
criterion_main!(benches);

//! Golden-thread recording harness: the overload driver instrumented to
//! emit world facts into the scheduler's unified event log, so one JSONL
//! stream captures the whole run — what the world did (layer 1), what the
//! controller decided (layer 2), and what the plumbing observed (layer 3).
//!
//! Three consumers build on the recording:
//!
//! * **Replay-equals-live** — `osml_core::replay` folds the recorded log
//!   back into a [`ReplayState`] that must equal the live scheduler's
//!   [`OsmlScheduler::live_replay_state`] bit-for-bit (integration tests,
//!   the `replay_divergence` binary).
//! * **Crash recovery** — with `restart_mid_brownout`, the controller is
//!   killed mid-brownout and warm-restarted; the restored log (snapshot
//!   prefix + durable journal suffix + restart events) must still fold to
//!   the recovered state.
//! * **A/B divergence** — [`world_script_from_log`] reconstructs the
//!   exogenous arrival script from the world-fact layer alone, so one
//!   recorded world can be re-run under a different controller config and
//!   the two decision streams diffed at their first divergence.

use osml_core::{
    first_divergence, Divergence, LaunchCause, OsmlConfig, OsmlScheduler, OverloadConfig,
    RecoveryStore, RemovalCause, ReplayState, UnifiedLog, WorldFact,
};
use osml_platform::{AppId, FaultPlan, FaultySubstrate, Placement, Scheduler, SloClass, Substrate};
use osml_workloads::loadgen::{ArrivalEvent, ArrivalScript, LoadSchedule};
use osml_workloads::{LaunchSpec, SimConfig, SimServer};

use crate::overload::slo_class_of;

/// What one recorded run produced: the unified log and the live scheduler
/// state it must replay to.
#[derive(Debug)]
pub struct RecordedRun {
    /// The full unified event log (all three layers).
    pub log: UnifiedLog,
    /// The live scheduler's observable state at the end of the run.
    pub live: ReplayState,
    /// Whether the controller was killed and warm-restarted mid-brownout.
    pub restarted: bool,
    /// For the restart arm: whether queue depth, brownout flag and ledger
    /// sizes survived the crash (mirrors the fig19/fig20 assertion).
    pub restart_resumed_state: Option<bool>,
    /// Faults the substrate injected.
    pub faults_injected: usize,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Slot {
    Pending,
    Live(AppId),
    Waiting(u64),
    Done,
}

/// Runs one overload timeline with world-fact recording. The driver loop is
/// the same shape as `overload::run_overload_detailed`; every exogenous
/// occurrence (scripted arrival/departure coming due, load change, injected
/// fault) and every process the driver launches or removes is recorded into
/// the scheduler's unified log alongside the decisions the scheduler emits
/// itself.
pub fn run_recorded(
    template: &OsmlScheduler,
    script: &ArrivalScript,
    seed: u64,
    overload: OverloadConfig,
    plan: FaultPlan,
    restart_mid_brownout: bool,
    base: OsmlConfig,
) -> RecordedRun {
    let config = OsmlConfig { overload: overload.clone(), strict_layout: true, ..base };
    let inner = SimServer::new(SimConfig { noise_sigma: 0.0, seed, ..SimConfig::default() });
    let mut server = FaultySubstrate::new(inner, plan);
    let mut scheduler = template.clone().with_config(config.clone());

    let store = restart_mid_brownout.then(|| {
        let dir =
            std::env::temp_dir().join(format!("osml-replay-restart-{}-{seed}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        RecoveryStore::open(&dir).expect("open recovery store")
    });
    if let Some(store) = store.as_ref() {
        scheduler.attach_unified_journal(&store.unified_path()).expect("attach unified journal");
    }

    let n = script.events.len();
    let mut slots: Vec<Slot> = vec![Slot::Pending; n];
    let mut departure_due = vec![false; n];
    let mut last_rps = vec![f64::NAN; n];
    let mut fault_mark = 0usize;
    let mut first_brownout_tick: Option<u64> = None;
    let mut restarted = false;
    let mut restart_resumed_state: Option<bool> = None;
    let mut harness_tick: u64 = 0;

    let class_of = |idx: usize| slo_class_of(script.events[idx].service);
    let mut t = 0.0f64;
    while t <= script.duration_s {
        // Crash mid-brownout, two ticks after entry (see the overload
        // harness for the timing rationale: the pre-kill state matches the
        // last end-of-tick snapshot exactly).
        if let (Some(store), Some(entered)) = (store.as_ref(), first_brownout_tick) {
            if !restarted && harness_tick == entered + 2 {
                let pre = (
                    scheduler.queue_depth(),
                    scheduler.in_brownout(),
                    scheduler.overload_state().shaved.len(),
                    scheduler.overload_state().shed.len(),
                );
                drop(scheduler);
                let (recovered, _report) = OsmlScheduler::recover(
                    template.models().clone(),
                    config.clone(),
                    store,
                    &mut server,
                );
                scheduler = recovered;
                let post = (
                    scheduler.queue_depth(),
                    scheduler.in_brownout(),
                    scheduler.overload_state().shaved.len(),
                    scheduler.overload_state().shed.len(),
                );
                restart_resumed_state = Some(pre == post);
                restarted = true;
            }
        }
        // Scripted departures coming due.
        for (idx, slot) in slots.iter_mut().enumerate() {
            if t < script.events[idx].depart_s {
                continue;
            }
            if !departure_due[idx] && *slot != Slot::Pending {
                departure_due[idx] = true;
                scheduler.record_world(t, None, WorldFact::DepartureDue { workload: idx as u64 });
            }
            match *slot {
                Slot::Live(id) => {
                    let _ = server.remove(id);
                    scheduler.on_departure(id);
                    scheduler.record_world(
                        t,
                        Some(id),
                        WorldFact::Removed { cause: RemovalCause::ScriptedDeparture },
                    );
                    *slot = Slot::Done;
                }
                Slot::Waiting(ticket) => {
                    scheduler.cancel_ticket(ticket);
                    *slot = Slot::Done;
                }
                _ => {}
            }
        }
        // Scripted arrivals coming due.
        for idx in 0..n {
            let event = &script.events[idx];
            if slots[idx] != Slot::Pending || t < event.arrive_s || t >= event.depart_s {
                continue;
            }
            let rps = event.load.rps_at(t).max(1e-3);
            scheduler.record_world(
                t,
                None,
                WorldFact::ArrivalDue {
                    workload: idx as u64,
                    service: event.service,
                    class: class_of(idx),
                    threads: event.threads,
                    offered_rps: rps,
                },
            );
            last_rps[idx] = rps;
            slots[idx] = launch_and_submit(
                &mut scheduler,
                &mut server,
                idx as u64,
                event.service,
                event.threads,
                rps,
                class_of(idx),
                LaunchCause::Scripted,
            );
        }
        // Load updates for running services (only actual changes are
        // world facts; constant-load scripts record none).
        for idx in 0..n {
            if let Slot::Live(id) = slots[idx] {
                let rps = script.events[idx].load.rps_at(t).max(1e-3);
                if rps != last_rps[idx] {
                    last_rps[idx] = rps;
                    let _ = server.inner_mut().set_load(id, rps);
                    scheduler.record_world(
                        t,
                        Some(id),
                        WorldFact::LoadChanged { offered_rps: rps },
                    );
                }
            }
        }

        server.advance(1.0);
        t = server.now();
        harness_tick += 1;

        scheduler.tick(&mut server);

        // Controller-initiated sheds: withdraw the process, park the ticket.
        for id in scheduler.take_shed() {
            let Some(idx) = slots.iter().position(|s| *s == Slot::Live(id)) else { continue };
            let _ = server.remove(id);
            scheduler.record_world(
                t,
                Some(id),
                WorldFact::Removed { cause: RemovalCause::ShedWithdrawal },
            );
            slots[idx] = Slot::Waiting(id.0);
        }
        // Admission retries.
        while let Some(ticket) = scheduler.poll_admission() {
            let Some(idx) = slots.iter().position(|s| *s == Slot::Waiting(ticket)) else {
                scheduler.cancel_ticket(ticket);
                continue;
            };
            let event = &script.events[idx];
            let rps = event.load.rps_at(t).max(1e-3);
            last_rps[idx] = rps;
            slots[idx] = launch_and_submit(
                &mut scheduler,
                &mut server,
                idx as u64,
                event.service,
                event.threads,
                rps,
                class_of(idx),
                LaunchCause::AdmissionRetry,
            );
        }
        // Timeouts: tickets the scheduler no longer tracks were expired.
        for slot in slots.iter_mut() {
            if let Slot::Waiting(ticket) = *slot {
                if !scheduler.is_waiting(ticket) {
                    *slot = Slot::Done;
                }
            }
        }
        // Injected faults are part of the world: drain the substrate's
        // fault records past the watermark into the world-fact layer.
        let records = server.records();
        for rec in &records[fault_mark..] {
            scheduler.record_world(
                rec.time_s,
                rec.app,
                WorldFact::FaultInjected { call: rec.call, fault: rec.fault },
            );
        }
        fault_mark = records.len();

        if first_brownout_tick.is_none() && scheduler.in_brownout() {
            first_brownout_tick = Some(harness_tick);
        }
        if let Some(store) = store.as_ref() {
            store.save_snapshot(&scheduler.snapshot(&server)).expect("save snapshot");
        }
    }

    if let Some(store) = store.as_ref() {
        let _ = std::fs::remove_dir_all(store.dir());
    }

    RecordedRun {
        log: scheduler.unified_log().clone(),
        live: scheduler.live_replay_state(&server),
        restarted,
        restart_resumed_state,
        faults_injected: server.fault_count(),
    }
}

/// Launches a process with its bootstrap allocation, records the
/// [`WorldFact::Launched`] fact, submits it to the scheduler, and applies
/// the driver's fixed withdrawal policy to the placement outcome
/// (recording the matching [`WorldFact::Removed`] when it withdraws).
#[allow(clippy::too_many_arguments)]
fn launch_and_submit(
    scheduler: &mut OsmlScheduler,
    server: &mut FaultySubstrate<SimServer>,
    workload: u64,
    service: osml_workloads::Service,
    threads: usize,
    offered_rps: f64,
    class: SloClass,
    cause: LaunchCause,
) -> Slot {
    let t = server.now();
    let alloc = osml_core::bootstrap_allocation(server, threads);
    let spec = LaunchSpec { service, threads, offered_rps };
    let id = server.inner_mut().launch(spec, alloc).expect("bootstrap allocation is valid");
    scheduler.record_world(
        t,
        Some(id),
        WorldFact::Launched {
            workload,
            service,
            class,
            threads,
            offered_rps,
            bootstrap: alloc,
            cause,
        },
    );
    match scheduler.on_arrival_classed(server, id, class) {
        Placement::Placed => Slot::Live(id),
        Placement::Deferred { ticket } => {
            let _ = server.remove(id);
            scheduler.on_departure(id);
            scheduler.record_world(
                server.now(),
                Some(id),
                WorldFact::Removed { cause: RemovalCause::DeferredWithdrawal },
            );
            Slot::Waiting(ticket)
        }
        Placement::Rejected(_) => {
            let _ = server.remove(id);
            scheduler.on_departure(id);
            scheduler.record_world(
                server.now(),
                Some(id),
                WorldFact::Removed { cause: RemovalCause::RejectedWithdrawal },
            );
            Slot::Done
        }
    }
}

/// Reconstructs the exogenous arrival script from a recorded log's
/// world-fact layer alone: each [`WorldFact::ArrivalDue`] becomes an
/// arrival at its recorded due time, each [`WorldFact::DepartureDue`] sets
/// that workload's departure; a workload with no departure fact runs
/// forever.
///
/// Load-varying worlds reconstruct too: every recorded load witness — the
/// arrival's offered rate, each (re)launch's rate ([`WorldFact::Launched`]
/// binds the envelope's app id to its workload, and a retry launch
/// witnesses the schedule while the workload was waiting), and each
/// [`WorldFact::LoadChanged`] — becomes a step of a piecewise-constant
/// [`LoadSchedule::Steps`]. The driver only evaluates schedules at recorded
/// event times and only records *changes*, so replaying the step schedule
/// reproduces the original rate at every query time: between witnesses the
/// recorded world's rate was constant by construction. A workload whose
/// only witness is its arrival keeps the plain
/// [`LoadSchedule::Constant`].
///
/// # Errors
///
/// A human-readable reason when the log cannot be turned back into a
/// script (a departure or load change for an unknown workload, no tick
/// heartbeats).
pub fn world_script_from_log(log: &UnifiedLog) -> Result<ArrivalScript, String> {
    let mut arrivals: Vec<(u64, ArrivalEvent)> = Vec::new();
    // Per-workload load witnesses `(time_s, rps)`, in log order.
    let mut loads: std::collections::BTreeMap<u64, Vec<(f64, f64)>> =
        std::collections::BTreeMap::new();
    // Envelope app id -> workload, from Launched facts (a workload can
    // launch more than once across retries; each launch gets a fresh id).
    let mut app_to_workload: std::collections::BTreeMap<u64, u64> =
        std::collections::BTreeMap::new();
    // The driver loop runs `while t <= duration`; to make a re-run execute
    // exactly as many ticks as the recording, the duration must sit between
    // the loop's last entry time and its exit time. The tick heartbeats
    // record the post-advance times, so the second-largest heartbeat IS the
    // last entry time.
    let mut tick_times: Vec<f64> = Vec::new();
    for ev in log.events() {
        let osml_core::EventBody::World(fact) = &ev.body else { continue };
        match fact {
            WorldFact::ArrivalDue { workload, service, threads, offered_rps, .. } => {
                arrivals.push((
                    *workload,
                    ArrivalEvent {
                        service: *service,
                        arrive_s: ev.time_s,
                        depart_s: f64::INFINITY,
                        threads: *threads,
                        load: LoadSchedule::Constant { rps: *offered_rps },
                    },
                ));
                loads.entry(*workload).or_default().push((ev.time_s, *offered_rps));
            }
            WorldFact::DepartureDue { workload } => {
                let slot = arrivals
                    .iter_mut()
                    .find(|(w, _)| w == workload)
                    .ok_or_else(|| format!("departure for unknown workload {workload}"))?;
                slot.1.depart_s = ev.time_s;
            }
            WorldFact::Launched { workload, offered_rps, .. } => {
                if let Some(app) = ev.app {
                    app_to_workload.insert(app, *workload);
                }
                loads.entry(*workload).or_default().push((ev.time_s, *offered_rps));
            }
            WorldFact::LoadChanged { offered_rps } => {
                let app =
                    ev.app.ok_or_else(|| format!("load change without an app (seq {})", ev.seq))?;
                let workload = *app_to_workload
                    .get(&app)
                    .ok_or_else(|| format!("load change for unknown app#{app}"))?;
                loads.entry(workload).or_default().push((ev.time_s, *offered_rps));
            }
            WorldFact::TickElapsed => tick_times.push(ev.time_s),
            _ => {}
        }
    }
    let duration = match tick_times.len() {
        0 => return Err("no tick heartbeats recorded".into()),
        1 => 0.0, // one iteration: it entered at t = 0
        n => tick_times[n - 2],
    };
    arrivals.sort_by_key(|&(w, _)| w);
    for (w, event) in arrivals.iter_mut() {
        let Some(points) = loads.get(w) else { continue };
        // Collapse witnesses to one step per time (last in log order wins;
        // an arrival and its launch at the same instant agree anyway).
        let mut steps: Vec<(f64, f64)> = Vec::with_capacity(points.len());
        for &(at, rps) in points {
            match steps.iter_mut().find(|(t, _)| *t == at) {
                Some(step) => step.1 = rps,
                None => steps.push((at, rps)),
            }
        }
        steps.sort_by(|a, b| a.0.total_cmp(&b.0));
        // A consecutive repeat of the in-effect rate adds nothing.
        steps.dedup_by(|next, prev| next.1 == prev.1);
        if steps.len() > 1 {
            event.load = LoadSchedule::Steps { steps };
        }
    }
    Ok(ArrivalScript::new(arrivals.into_iter().map(|(_, e)| e).collect(), duration))
}

/// Replays one recorded world through two controller configs and diffs the
/// decision streams. Returns the two runs' logs and the first divergence
/// (`None` when the controllers decided identically).
#[allow(clippy::too_many_arguments)]
pub fn ab_compare(
    template: &OsmlScheduler,
    script: &ArrivalScript,
    seed: u64,
    overload: OverloadConfig,
    plan: FaultPlan,
    base_a: OsmlConfig,
    base_b: OsmlConfig,
) -> (RecordedRun, RecordedRun, Option<Divergence>) {
    let a = run_recorded(template, script, seed, overload.clone(), plan.clone(), false, base_a);
    let b = run_recorded(template, script, seed, overload, plan, false, base_b);
    let divergence = first_divergence(&a.log, &b.log);
    (a, b, divergence)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overload::{overload_script, varying_load_script};
    use crate::suite::{trained_suite, SuiteConfig};
    use osml_platform::FaultProfile;

    #[test]
    fn recorded_run_replays_to_live_state() {
        let template = trained_suite(SuiteConfig::Standard);
        let script = overload_script(0.6);
        let run = run_recorded(
            &template,
            &script,
            11,
            OverloadConfig::enabled(),
            FaultPlan::none(),
            false,
            OsmlConfig::default(),
        );
        let replayed = run.log.replay().expect("log is replay-sufficient");
        assert_eq!(replayed, run.live, "replayed state must equal live state bit-for-bit");
        let (world, decisions, _telemetry) = run.log.layer_counts();
        assert!(world > 0, "world facts recorded");
        assert!(decisions > 0, "decisions recorded");
    }

    /// The scan-vs-event A/B that gated the default-engine flip: on a
    /// recorded Fig. 20-anchor world — fault-free and under a chaos plan —
    /// the two engines must produce identical decision streams. The chaos
    /// arm additionally pins fault-stream alignment: the event engine's
    /// speculative reads go through `peek_sample`, so per-call fault
    /// injection lands on the same calls in both engines.
    #[test]
    fn scan_and_event_engines_decide_identically_on_recorded_worlds() {
        let template = trained_suite(SuiteConfig::Standard);
        let script = overload_script(1.0);
        for (world, plan) in [
            ("fault-free", FaultPlan::none()),
            ("chaos", FaultPlan::new(0xAB, FaultProfile::chaos_default())),
        ] {
            let (_, _, divergence) = ab_compare(
                &template,
                &script,
                9,
                OverloadConfig::enabled(),
                plan,
                OsmlConfig { event_driven: false, ..OsmlConfig::default() },
                OsmlConfig { event_driven: true, ..OsmlConfig::default() },
            );
            assert_eq!(
                divergence, None,
                "scan and event engines diverged on the {world} fig20-anchor world"
            );
        }
    }

    #[test]
    fn reconstructed_script_reproduces_the_decision_stream() {
        let template = trained_suite(SuiteConfig::Standard);
        let script = overload_script(0.6);
        let first = run_recorded(
            &template,
            &script,
            13,
            OverloadConfig::enabled(),
            FaultPlan::none(),
            false,
            OsmlConfig::default(),
        );
        let rebuilt = world_script_from_log(&first.log).expect("world reconstructs");
        let second = run_recorded(
            &template,
            &rebuilt,
            13,
            OverloadConfig::enabled(),
            FaultPlan::none(),
            false,
            OsmlConfig::default(),
        );
        assert_eq!(
            first_divergence(&first.log, &second.log),
            None,
            "same world + same config must decide identically"
        );
    }

    /// A load-varying world (ramps, steps, a diurnal swing) round-trips
    /// through the log: the reconstructed piecewise-constant script re-runs
    /// to an identical decision stream, load changes included.
    #[test]
    fn varying_load_world_round_trips_through_the_log() {
        let template = trained_suite(SuiteConfig::Standard);
        let script = varying_load_script();
        assert!(
            script.events.iter().any(|e| !matches!(e.load, LoadSchedule::Constant { .. })),
            "the scenario must actually vary its load"
        );
        let first = run_recorded(
            &template,
            &script,
            17,
            OverloadConfig::enabled(),
            FaultPlan::none(),
            false,
            OsmlConfig::default(),
        );
        let load_changes = first
            .log
            .events()
            .iter()
            .filter(|ev| {
                matches!(ev.body, osml_core::EventBody::World(WorldFact::LoadChanged { .. }))
            })
            .count();
        assert!(load_changes > 0, "the recording must contain load-change facts");
        let rebuilt = world_script_from_log(&first.log).expect("varying-load world reconstructs");
        assert!(
            rebuilt.events.iter().any(|e| matches!(e.load, LoadSchedule::Steps { .. })),
            "reconstruction must produce step schedules for the varying workloads"
        );
        let second = run_recorded(
            &template,
            &rebuilt,
            17,
            OverloadConfig::enabled(),
            FaultPlan::none(),
            false,
            OsmlConfig::default(),
        );
        assert_eq!(
            first_divergence(&first.log, &second.log),
            None,
            "a reconstructed varying-load world must decide identically"
        );
    }
}

//! Co-location scenarios: launch a set of services, let a scheduler settle
//! them, and judge the steady state.

pub use osml_core::bootstrap_allocation;
use osml_platform::{AppId, Placement, Scheduler, Substrate};
use osml_workloads::{LaunchSpec, Service, SimConfig, SimServer};
use serde::{Deserialize, Serialize};

/// Steady-state report for one service.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppReport {
    /// The service.
    pub service: Service,
    /// Offered load, RPS.
    pub offered_rps: f64,
    /// Final p95 latency, ms.
    pub p95_ms: f64,
    /// QoS target, ms.
    pub qos_ms: f64,
    /// Whether QoS was met at steady state.
    pub qos_met: bool,
    /// Final core count.
    pub cores: usize,
    /// Final way count.
    pub ways: usize,
}

/// Outcome of a co-location scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// Whether every service was accepted (no migration requests at
    /// placement time).
    pub all_placed: bool,
    /// Whether every placed service met QoS at steady state.
    pub qos_ok: bool,
    /// Total scheduling actions the policy took.
    pub actions: usize,
    /// Per-service detail.
    pub apps: Vec<AppReport>,
}

impl ScenarioOutcome {
    /// Whether the co-location fully succeeded (all placed, all within QoS).
    pub fn success(&self) -> bool {
        self.all_placed && self.qos_ok
    }
}

/// Runs one co-location: services arrive in order, the scheduler places
/// each (rejected services are migrated away, failing the scenario), then
/// the machine runs for `settle_ticks` seconds of 1 Hz monitoring. The
/// machine is noiseless, making grid cells deterministic; use
/// [`run_colocation_with_noise`] for robustness studies.
pub fn run_colocation<Sched: Scheduler>(
    scheduler: &mut Sched,
    specs: &[LaunchSpec],
    settle_ticks: usize,
    seed: u64,
) -> ScenarioOutcome {
    run_colocation_with_noise(scheduler, specs, settle_ticks, seed, 0.0)
}

/// [`run_colocation`] on a machine with trace noise (and the cache-warmup
/// transients that come with it).
pub fn run_colocation_with_noise<Sched: Scheduler>(
    scheduler: &mut Sched,
    specs: &[LaunchSpec],
    settle_ticks: usize,
    seed: u64,
    noise_sigma: f64,
) -> ScenarioOutcome {
    let mut server = SimServer::new(SimConfig { noise_sigma, seed, ..SimConfig::default() });
    let mut ids: Vec<AppId> = Vec::new();
    let mut all_placed = true;
    for &spec in specs {
        let alloc = bootstrap_allocation(&mut server, spec.threads);
        let id = server.launch(spec, alloc).expect("bootstrap allocation is valid");
        server.advance(1.0);
        match scheduler.on_arrival(&mut server, id) {
            Placement::Placed => ids.push(id),
            Placement::Rejected(_) | Placement::Deferred { .. } => {
                // The upper-level scheduler migrates it elsewhere.
                let _ = server.remove(id);
                scheduler.on_departure(id);
                all_placed = false;
            }
        }
    }
    for _ in 0..settle_ticks {
        server.advance(1.0);
        scheduler.tick(&mut server);
    }
    server.advance(1.0);

    let apps: Vec<AppReport> = ids
        .iter()
        .filter_map(|&id| {
            let lat = server.latency(id)?;
            let alloc = server.allocation(id)?;
            let spec = server.spec_of(id)?;
            Some(AppReport {
                service: spec.service,
                offered_rps: spec.offered_rps,
                p95_ms: lat.p95_ms,
                qos_ms: lat.qos_target_ms,
                qos_met: !lat.violates_qos(),
                cores: alloc.cores.count(),
                ways: alloc.ways.count(),
            })
        })
        .collect();
    let qos_ok = apps.iter().all(|a| a.qos_met);
    ScenarioOutcome { all_placed, qos_ok, actions: scheduler.action_count(), apps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osml_baselines::{Parties, Unmanaged};

    #[test]
    fn light_colocation_succeeds_under_parties() {
        let specs = [
            LaunchSpec::at_percent_load(Service::Moses, 20.0),
            LaunchSpec::at_percent_load(Service::Login, 20.0),
        ];
        let mut p = Parties::new();
        let out = run_colocation(&mut p, &specs, 80, 1);
        assert!(out.all_placed);
        assert!(out.qos_ok, "{:?}", out.apps);
        assert_eq!(out.apps.len(), 2);
        assert!(out.actions >= 2);
    }

    #[test]
    fn unmanaged_fails_where_isolation_matters() {
        // Heavy cache-contending pair: unmanaged sharing should violate at
        // least one QoS where a partitioned policy can succeed.
        let specs = [
            LaunchSpec::at_percent_load(Service::Moses, 70.0),
            LaunchSpec::at_percent_load(Service::Specjbb, 70.0),
        ];
        let mut unmanaged = Unmanaged::new();
        let shared = run_colocation(&mut unmanaged, &specs, 30, 2);
        let mut parties = Parties::new();
        let managed = run_colocation(&mut parties, &specs, 150, 2);
        assert!(
            managed.qos_ok as u8 >= shared.qos_ok as u8,
            "managed {:?} vs unmanaged {:?}",
            managed.qos_ok,
            shared.qos_ok
        );
    }

    #[test]
    fn bootstrap_allocation_is_always_valid() {
        let mut server = SimServer::deterministic();
        for i in 0..6 {
            let alloc = bootstrap_allocation(&mut server, 16);
            assert!(alloc.validate(server.topology()).is_ok());
            server
                .launch(LaunchSpec::at_percent_load(Service::Login, 10.0 + i as f64), alloc)
                .unwrap();
        }
    }
}

//! Scheduler-core throughput benchmark: the event-driven engine vs the
//! legacy scan loop at 10/100/1k/10k co-located services.
//!
//! The substrate here is deliberately synthetic: every query the scheduler
//! makes ([`Substrate::sample`], [`Substrate::latency`], the idle-resource
//! views) is O(1) via per-resource refcounts, so the measurement isolates
//! the *scheduler's* per-tick cost — timer bookkeeping, Model-A refresh
//! inference, and the per-service control loop — instead of the simulator's.
//! Counters are synthesized from a seeded hash of `(service, window)`, so a
//! run is a pure function of `(services, ticks, seed)` and both engines see
//! bit-identical inputs; the harness asserts their event logs match.
//!
//! Workload shape: services never violate QoS (wide slack), so the tick is
//! the steady-state hot path — refresh Model-A, check surplus, occasionally
//! reclaim toward the predicted cliff. This is where a co-located box spends
//! almost all of its life, and exactly the path the event-driven core
//! optimizes.

use osml_core::{Models, OsmlConfig, OsmlScheduler};
use osml_models::{ModelA, ModelB, ModelBPrime, ModelC};
use osml_platform::{
    Allocation, AppId, CoreSet, CounterSample, LatencyStats, MbaThrottle, Placement, PlatformError,
    Scheduler, Substrate, Topology, WayMask,
};
use serde::Serialize;
use std::time::Instant;

/// SplitMix64: cheap, well-distributed, and stable across platforms.
fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A uniform draw in `[0, 1)` from a hash of `(seed, id, window, salt)`.
fn frac(seed: u64, id: u64, window: u64, salt: u64) -> f64 {
    let h = hash64(seed ^ hash64(id ^ hash64(window ^ salt)));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// In-memory substrate with O(1) scheduler-facing queries.
///
/// Core and way occupancy are tracked as per-unit refcounts, so the
/// idle-resource views the allocator leans on cost O(machine width), not
/// O(services) — at 10k co-located services the default trait
/// implementations would otherwise dominate the measurement.
pub struct BenchSubstrate {
    topo: Topology,
    seed: u64,
    clock: f64,
    apps: Vec<AppId>,
    /// Dense by raw id (ids are handed out 0..n).
    allocs: Vec<Option<Allocation>>,
    core_refs: [u32; 64],
    way_refs: [u32; 32],
}

impl BenchSubstrate {
    /// A machine on the paper's testbed topology, synthesizing counters
    /// from `seed`.
    pub fn new(seed: u64) -> Self {
        BenchSubstrate {
            topo: Topology::xeon_e5_2697_v4(),
            seed,
            clock: 0.0,
            apps: Vec::new(),
            allocs: Vec::new(),
            core_refs: [0; 64],
            way_refs: [0; 32],
        }
    }

    fn track(&mut self, alloc: Allocation, add: bool) {
        for core in alloc.cores.iter() {
            let r = &mut self.core_refs[core];
            *r = if add { *r + 1 } else { r.saturating_sub(1) };
        }
        for way in 0..self.topo.llc_ways() {
            if alloc.ways.bits() & (1 << way) != 0 {
                let r = &mut self.way_refs[way];
                *r = if add { *r + 1 } else { r.saturating_sub(1) };
            }
        }
    }

    /// Places the next service on a small shared bootstrap allocation and
    /// returns its id.
    pub fn place_next(&mut self) -> AppId {
        let id = AppId(self.allocs.len() as u64);
        let alloc = Allocation::new(
            CoreSet::first_n(4),
            WayMask::first_n(4.min(self.topo.llc_ways())),
            MbaThrottle::unthrottled(),
        );
        self.allocs.push(Some(alloc));
        self.apps.push(id);
        self.track(alloc, true);
        id
    }

    /// Profiling-window index the synthetic counters are keyed on. OSML's
    /// profiling module aggregates hardware counters over a ~2 s sampling
    /// window (§V-B), so at 1 s ticks a service's observed counters are
    /// stable across consecutive ticks within a window and only step at
    /// window boundaries. Re-randomizing every tick — as an earlier version
    /// of this substrate did — models a workload no real profiler reports:
    /// one whose counters never repeat, which structurally starves any
    /// steady-state optimization (the event engine's dirty-set memo keys on
    /// sample equality) of the windows it exists to exploit.
    fn window(&self) -> u64 {
        (self.clock / 2.0) as u64
    }
}

impl Substrate for BenchSubstrate {
    fn topology(&self) -> &Topology {
        &self.topo
    }

    fn reallocate(&mut self, id: AppId, alloc: Allocation) -> Result<(), PlatformError> {
        alloc.validate(&self.topo)?;
        let slot = self
            .allocs
            .get_mut(id.0 as usize)
            .and_then(Option::as_mut)
            .ok_or(PlatformError::UnknownApp { id: id.0 })?;
        let old = *slot;
        *slot = alloc;
        self.track(old, false);
        self.track(alloc, true);
        Ok(())
    }

    fn remove(&mut self, id: AppId) -> Result<(), PlatformError> {
        let old = self
            .allocs
            .get_mut(id.0 as usize)
            .and_then(Option::take)
            .ok_or(PlatformError::UnknownApp { id: id.0 })?;
        self.track(old, false);
        self.apps.retain(|&a| a != id);
        Ok(())
    }

    fn advance(&mut self, seconds: f64) {
        self.clock += seconds;
    }

    fn now(&self) -> f64 {
        self.clock
    }

    fn apps(&self) -> Vec<AppId> {
        self.apps.clone()
    }

    fn allocation(&self, id: AppId) -> Option<Allocation> {
        self.allocs.get(id.0 as usize).copied().flatten()
    }

    fn sample(&self, id: AppId) -> Option<CounterSample> {
        let alloc = self.allocation(id)?;
        let (s, i, w) = (self.seed, id.0, self.window());
        Some(CounterSample {
            ipc: 0.5 + 1.5 * frac(s, i, w, 1),
            llc_misses_per_sec: 1e6 * frac(s, i, w, 2),
            mbl_gbps: 10.0 * frac(s, i, w, 3),
            cpu_usage: alloc.cores.count() as f64 * frac(s, i, w, 4),
            memory_util_gb: 4.0 * frac(s, i, w, 5),
            virt_memory_gb: 8.0 * frac(s, i, w, 6),
            res_memory_gb: 4.0 * frac(s, i, w, 7),
            llc_occupancy_mb: 20.0 * frac(s, i, w, 8),
            allocated_cores: alloc.cores.count(),
            allocated_ways: alloc.ways.count(),
            frequency_ghz: 2.3,
            response_latency_ms: 1.0 + frac(s, i, w, 9),
        })
    }

    fn latency(&self, id: AppId) -> Option<LatencyStats> {
        self.allocation(id)?;
        // Wide slack, never violating: the benchmark measures the
        // steady-state path, not violation recovery.
        Some(LatencyStats {
            mean_ms: 1.0,
            p95_ms: 2.0,
            achieved_rps: 100.0,
            offered_rps: 100.0,
            qos_target_ms: 10.0,
        })
    }

    fn idle_cores(&self) -> CoreSet {
        let mut idle = CoreSet::new();
        for core in 0..self.topo.logical_cores() {
            if self.core_refs[core] == 0 {
                idle.insert(core);
            }
        }
        idle
    }

    fn idle_way_count(&self) -> usize {
        (0..self.topo.llc_ways()).filter(|&w| self.way_refs[w] == 0).count()
    }

    fn occupied_ways(&self, except: Option<AppId>) -> u32 {
        let mut used = 0u32;
        for way in 0..self.topo.llc_ways() {
            if self.way_refs[way] > 0 {
                used |= 1 << way;
            }
        }
        if let Some(ex) = except {
            if let Some(alloc) = self.allocation(ex) {
                // Ways only `except` holds are not occupied from its view.
                for way in 0..self.topo.llc_ways() {
                    if alloc.ways.bits() & (1 << way) != 0 && self.way_refs[way] == 1 {
                        used &= !(1 << way);
                    }
                }
            }
        }
        used
    }
}

/// Wall-clock and throughput of one engine at one fleet size.
#[derive(Debug, Clone, Serialize)]
pub struct EngineRun {
    /// Seconds spent inside the tick loop.
    pub wall_secs: f64,
    /// Scheduled service-ticks per second (`services * ticks / wall`).
    pub service_ticks_per_sec: f64,
    /// Model forward passes (scheduling decisions) per second.
    pub decisions_per_sec: f64,
    /// Model forward passes observed during the loop.
    pub decisions: u64,
}

/// Scan-vs-event comparison at one fleet size.
#[derive(Debug, Clone, Serialize)]
pub struct SizePoint {
    /// Co-located services.
    pub services: usize,
    /// Measured scheduler ticks.
    pub ticks: usize,
    /// Legacy scan engine.
    pub scan: EngineRun,
    /// Event-driven + batched engine.
    pub event: EngineRun,
    /// `event.service_ticks_per_sec / scan.service_ticks_per_sec`.
    pub speedup: f64,
}

/// The untrained-but-structurally-valid model suite the benchmark runs
/// with: weights are a pure function of the seeds, so both engines (and
/// repeated runs) execute identical inference.
pub fn bench_models() -> Models {
    Models {
        model_a: ModelA::new(36, 20, 1),
        model_b: ModelB::new(36, 20, 2),
        model_b_prime: ModelBPrime::new(3),
        model_c: ModelC::new(4),
    }
}

fn run_engine(event_driven: bool, services: usize, ticks: usize, seed: u64) -> (EngineRun, u64) {
    let config = OsmlConfig {
        placement_via_models: false,
        manage_bandwidth: false,
        online_learning: false,
        event_driven,
        ..OsmlConfig::default()
    };
    let mut scheduler = OsmlScheduler::new(bench_models(), config);
    let mut server = BenchSubstrate::new(seed);
    for _ in 0..services {
        let id = server.place_next();
        assert_eq!(
            scheduler.on_arrival(&mut server, id),
            Placement::Placed,
            "bench placement is unconditional under placement_via_models: false"
        );
    }
    let decisions_before = scheduler.decision_count();
    let start = Instant::now();
    for _ in 0..ticks {
        server.advance(1.0);
        scheduler.tick(&mut server);
    }
    let wall_secs = start.elapsed().as_secs_f64().max(1e-9);
    let decisions = scheduler.decision_count() - decisions_before;
    let log_fingerprint = fingerprint(&scheduler);
    (
        EngineRun {
            wall_secs,
            service_ticks_per_sec: (services * ticks) as f64 / wall_secs,
            decisions_per_sec: decisions as f64 / wall_secs,
            decisions,
        },
        log_fingerprint,
    )
}

/// A cheap structural fingerprint of the run's event log: both engines must
/// schedule identically, and hashing keeps the comparison allocation-light
/// at 10k services.
fn fingerprint(scheduler: &OsmlScheduler) -> u64 {
    let mut acc = 0u64;
    for entry in scheduler.log().entries() {
        let line = format!("{:?}", entry);
        for b in line.as_bytes() {
            acc = hash64(acc ^ u64::from(*b));
        }
    }
    acc
}

/// Timing repetitions per engine: small fleets finish a whole run in
/// microseconds, where one scheduler hiccup (page fault, frequency ramp)
/// swamps the signal. Best-of-N with interleaved engines keeps both arms
/// exposed to the same machine state.
const TIMING_REPS: usize = 3;

/// Measures both engines at one fleet size — best of [`TIMING_REPS`]
/// interleaved repetitions per engine — asserting they produced identical
/// event logs on every repetition.
pub fn measure(services: usize, ticks: usize, seed: u64) -> SizePoint {
    let mut scan: Option<EngineRun> = None;
    let mut event: Option<EngineRun> = None;
    for _ in 0..TIMING_REPS {
        let (s, scan_log) = run_engine(false, services, ticks, seed);
        let (e, event_log) = run_engine(true, services, ticks, seed);
        assert_eq!(
            scan_log, event_log,
            "scan and event engines diverged at {services} services (seed {seed})"
        );
        if scan.as_ref().is_none_or(|best| s.wall_secs < best.wall_secs) {
            scan = Some(s);
        }
        if event.as_ref().is_none_or(|best| e.wall_secs < best.wall_secs) {
            event = Some(e);
        }
    }
    let (scan, event) = (scan.expect("at least one rep"), event.expect("at least one rep"));
    let speedup = event.service_ticks_per_sec / scan.service_ticks_per_sec.max(1e-9);
    SizePoint { services, ticks, scan, event, speedup }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_substrate_tracks_occupancy() {
        let mut s = BenchSubstrate::new(7);
        let a = s.place_next();
        let b = s.place_next();
        assert_eq!(s.apps(), vec![a, b]);
        assert_eq!(s.idle_cores().count(), s.topology().logical_cores() - 4);
        assert_eq!(s.idle_way_count(), s.topology().llc_ways() - 4);
        // Both services share the bootstrap ways, so from either's view the
        // ways stay occupied; after a move apart they free up.
        assert_ne!(s.occupied_ways(Some(a)), 0);
        let moved = Allocation::new(
            CoreSet::from_cores([10, 11]),
            WayMask::contiguous(10, 2).unwrap(),
            MbaThrottle::unthrottled(),
        );
        s.reallocate(b, moved).unwrap();
        assert_eq!(s.occupied_ways(Some(a)) & 0b1111, 0);
        s.remove(b).unwrap();
        assert_eq!(s.apps(), vec![a]);
        assert_eq!(s.idle_way_count(), s.topology().llc_ways() - 4);
    }

    #[test]
    fn sample_is_deterministic_and_valid() {
        let mut s = BenchSubstrate::new(42);
        let id = s.place_next();
        let one = s.sample(id).unwrap();
        assert!(one.is_valid());
        assert_eq!(s.sample(id), Some(one), "same window must resample identically");
        s.advance(1.0);
        assert_eq!(
            s.sample(id),
            Some(one),
            "counters hold steady across ticks inside one profiling window"
        );
        s.advance(1.0);
        assert_ne!(s.sample(id), Some(one), "new window must vary the counters");
    }

    #[test]
    fn engines_agree_at_small_scale() {
        let point = measure(8, 25, 0xbeef);
        assert_eq!(point.services, 8);
        assert!(point.scan.service_ticks_per_sec > 0.0);
        assert!(point.event.service_ticks_per_sec > 0.0);
    }
}

//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§VI). See `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! The harness is scheduler-agnostic: the same scenario code drives OSML,
//! PARTIES and the unmanaged baseline through the
//! [`osml_platform::Scheduler`] trait, and the Oracle through its offline
//! search. Each figure binary in `src/bin/` prints a human-readable table
//! and writes machine-readable JSON under `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod cluster;
pub mod control;
pub mod grid;
pub mod overload;
pub mod perf;
pub mod replay;
pub mod report;
pub mod scenario;
pub mod suite;
pub mod timeline;

pub use scenario::{run_colocation, AppReport, ScenarioOutcome};
pub use suite::{trained_suite, SuiteConfig};

//! One-stop construction of a trained OSML scheduler for experiments.

use osml_core::{Models, OsmlConfig, OsmlScheduler};
use osml_dataset::{SweepConfig, TrainedModels, TrainingConfig};
use osml_ml::TrainerConfig;
use serde::{Deserialize, Serialize};

/// How thoroughly to train the model suite before an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SuiteConfig {
    /// Laptop-scale sweep (seconds); the default for figure regeneration.
    Standard,
    /// The paper's full sweep density (minutes of CPU).
    Paper,
}

/// Trains the model suite and wraps it in an [`OsmlScheduler`].
///
/// Training is deterministic, so repeated calls (e.g. one per grid cell
/// runner) produce identical schedulers; clone the returned scheduler
/// instead where possible — it is cheap (a few thousand `f32`s).
pub fn trained_suite(config: SuiteConfig) -> OsmlScheduler {
    let sweep = match config {
        SuiteConfig::Standard => SweepConfig::default(),
        SuiteConfig::Paper => SweepConfig::paper(),
    };
    let training = TrainingConfig {
        sweep,
        trainer: TrainerConfig { epochs: 160, batch_size: 256, ..TrainerConfig::default() },
        dqn_steps: 400,
        seed: 0x05_11,
    };
    let trained = TrainedModels::train(&training);
    let models = Models {
        model_a: trained.model_a,
        model_b: trained.model_b,
        model_b_prime: trained.model_b_prime,
        model_c: trained.model_c,
    };
    OsmlScheduler::new(models, OsmlConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_colocation;
    use osml_workloads::{LaunchSpec, Service};

    #[test]
    fn standard_suite_schedules_a_light_colocation() {
        let mut osml = trained_suite(SuiteConfig::Standard);
        let specs = [
            LaunchSpec::at_percent_load(Service::Moses, 30.0),
            LaunchSpec::at_percent_load(Service::ImgDnn, 30.0),
        ];
        let out = run_colocation(&mut osml, &specs, 30, 3);
        assert!(out.all_placed, "{out:?}");
        assert!(out.qos_ok, "{:?}", out.apps);
    }
}

//! Table 1 + Table 2: per-service maximum load at the 95th-percentile QoS
//! target, measured on the simulated testbed, against the paper's numbers;
//! plus the platform spec.

use osml_bench::report;
use osml_platform::{ServerSpec, Topology};
use osml_workloads::{oaa, Service, ALL_SERVICES};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    service: String,
    domain: String,
    table1_max_rps: f64,
    measured_max_rps: f64,
    ratio: f64,
    qos_ms: f64,
}

fn main() {
    let topo = Topology::xeon_e5_2697_v4();
    println!("== Table 2: platform specification ==");
    for spec in [ServerSpec::xeon_e5_2697_v4(), ServerSpec::i7_860()] {
        println!(
            "{}: {} physical / {} logical cores @ {} GHz, {} MB {}-way LLC, {} GB/s, {} GB DRAM",
            spec.cpu_model,
            spec.physical_cores,
            spec.physical_cores * spec.threads_per_core,
            spec.frequency_ghz,
            spec.llc_mb,
            spec.llc_ways,
            spec.memory_bw_gbps,
            spec.memory_gb
        );
    }
    println!();
    println!("== Table 1: max load (RPS) with the 95th-percentile QoS target ==");
    let rows: Vec<Row> = ALL_SERVICES
        .into_iter()
        .filter(|s| Service::table1().contains(s))
        .map(|s| {
            let p = s.params();
            let measured = oaa::max_load(&topo, s);
            Row {
                service: s.name().to_owned(),
                domain: p.domain.to_owned(),
                table1_max_rps: p.nominal_max_rps(),
                measured_max_rps: measured,
                ratio: measured / p.nominal_max_rps(),
                qos_ms: p.qos_ms,
            }
        })
        .collect();
    let table = report::render_table(
        &["service", "domain", "paper max", "measured max", "ratio", "QoS (ms)"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.service.clone(),
                    r.domain.clone(),
                    format!("{:.0}", r.table1_max_rps),
                    format!("{:.0}", r.measured_max_rps),
                    format!("{:.2}", r.ratio),
                    format!("{:.1}", r.qos_ms),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    let path = report::save_json("table1_max_load", &rows);
    println!("saved {}", path.display());
}

//! Fig. 15: OSML's headline numbers — higher EMU (effective machine
//! utilization) than PARTIES and roughly 1/5 the scheduling actions.

use osml_baselines::{Parties, Unmanaged};
use osml_bench::grid::colocation_grid;
use osml_bench::report;
use osml_bench::suite::{trained_suite, SuiteConfig};
use osml_bench::timeline::{run_timeline, TimelineSummary};
use osml_workloads::loadgen::ArrivalScript;
use osml_workloads::Service;
use serde::Serialize;

#[derive(Serialize)]
struct Fig15 {
    emu: Vec<(String, f64)>,
    actions: Vec<(String, usize)>,
    action_ratio_parties_over_osml: f64,
}

fn main() {
    println!("== Fig. 15: EMU and scheduling overhead ==\n");
    // EMU over a coarse Fig. 10-style grid (25 cells keeps this quick).
    let steps: Vec<usize> = vec![20, 40, 60, 80, 100];
    let settle = 60;
    let (x, y, probe) = (Service::ImgDnn, Service::Xapian, Service::Moses);
    let osml_template = trained_suite(SuiteConfig::Standard);

    let mut emu = Vec::new();
    let unmanaged = colocation_grid("unmanaged", Unmanaged::new, x, y, probe, &[], &steps, settle);
    emu.push(("unmanaged".to_owned(), unmanaged.mean_emu()));
    let parties = colocation_grid("parties", Parties::new, x, y, probe, &[], &steps, settle);
    emu.push(("parties".to_owned(), parties.mean_emu()));
    let osml = colocation_grid("osml", || osml_template.clone(), x, y, probe, &[], &steps, settle);
    emu.push(("osml".to_owned(), osml.mean_emu()));

    for (name, v) in &emu {
        println!("EMU[{name}] = {v:.3}");
    }

    // Scheduling overhead: total actions over the Fig. 14 dynamic scenario.
    let script = ArrivalScript::fig14();
    let mut parties_sched = Parties::new();
    let parties_actions =
        TimelineSummary::from_records("parties", &run_timeline(&mut parties_sched, &script, 0x15))
            .total_actions;
    let mut osml_sched = osml_template.clone();
    let osml_actions =
        TimelineSummary::from_records("osml", &run_timeline(&mut osml_sched, &script, 0x15))
            .total_actions;
    let ratio = parties_actions as f64 / osml_actions.max(1) as f64;
    println!("\nscheduling actions over the Fig. 14 scenario:");
    println!("  parties: {parties_actions}");
    println!("  osml:    {osml_actions}");
    println!("  ratio:   {ratio:.1}x (paper: OSML needs ~1/5 of PARTIES' actions)");

    let out = Fig15 {
        emu,
        actions: vec![("parties".into(), parties_actions), ("osml".into(), osml_actions)],
        action_ratio_parties_over_osml: ratio,
    };
    let path = report::save_json("fig15_emu_overhead", &out);
    println!("saved {}", path.display());
}

//! Fig. 23 (this reproduction's extension): cluster QoS compliance when
//! the *control plane itself* fails — messages between the upper scheduler
//! and its nodes dropped, delayed, duplicated, and whole nodes partitioned
//! away mid-run — comparing the full partition-tolerant protocol (sequence
//! dedup, epoch-fenced placement, heartbeat suspicion with heal
//! reconciliation) against a no-fencing ablation and the perfect-channel
//! reference.
//!
//! Each cell runs the same service mix as Fig. 22 on a small fleet, sweeps
//! per-message loss against a mid-run partition of node 0, and accounts
//! demand-based compliance. Three invariants are asserted at every cell:
//! no service is ever silently lost (conservation ledger), every arm's
//! golden-thread log folds through `replay()` without error, and the full
//! protocol never loses to its own ablation on the same channel.
//!
//! `--smoke` runs a 2-point sweep (CI).

use osml_bench::cluster::failover_workload;
use osml_bench::control::{run_control_plane, ControlArm};
use osml_bench::report;
use osml_bench::suite::{trained_suite, SuiteConfig};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (losses, partitions, duration_s): (&[f64], &[f64], f64) = if smoke {
        (&[0.0, 0.10], &[20.0], 60.0)
    } else {
        (&[0.0, 0.05, 0.10, 0.20], &[0.0, 20.0], 120.0)
    };
    let nodes = 3usize;
    let specs = failover_workload(2 * nodes);
    let template = trained_suite(SuiteConfig::Standard);

    println!("== Fig. 23: control-plane faults, suspicion and epoch fencing ==\n");
    println!(
        "{:>6}  {:>7}  {:>16}  {:>10}  {:>7}  {:>7}  {:>7}  {:>7}  {:>7}  {:>6}",
        "loss",
        "part_s",
        "arm",
        "compliance",
        "suspic",
        "false",
        "readopt",
        "fenced",
        "ghosts",
        "fold"
    );
    let mut outcomes = Vec::new();
    for &partition_s in partitions {
        for &loss in losses {
            let mut per_arm = Vec::new();
            for arm in ControlArm::ALL {
                let out = run_control_plane(
                    &template,
                    nodes,
                    &specs,
                    duration_s,
                    loss,
                    partition_s,
                    0xF23 ^ ((partition_s as u64) << 16) ^ ((loss * 100.0) as u64),
                    arm,
                );
                println!(
                    "{:>6.2}  {:>7.0}  {:>16}  {:>10.3}  {:>7}  {:>7}  {:>7}  {:>7}  {:>7}  {:>6}",
                    loss,
                    partition_s,
                    arm.label(),
                    out.qos_compliance,
                    out.suspicions,
                    out.false_suspicions,
                    out.readopted,
                    out.fenced_ghosts,
                    out.ghost_replicas_end,
                    if out.replay_ok { "ok" } else { "BROKEN" },
                );
                assert_eq!(out.lost_silently, 0, "conservation ledger must stay exact");
                per_arm.push(out);
            }
            let ablated = per_arm
                .iter()
                .find(|o| o.arm == ControlArm::LossyNoFencing)
                .unwrap()
                .qos_compliance;
            let full =
                per_arm.iter().find(|o| o.arm == ControlArm::LossyFull).unwrap().qos_compliance;
            assert!(
                full >= ablated - 1e-9,
                "loss={loss} partition={partition_s}: the full protocol ({full:.3}) must not \
                 lose to its no-fencing ablation ({ablated:.3})"
            );
            outcomes.extend(per_arm);
        }
    }

    println!("\nExpected shape: all arms tie on a clean channel; as loss and partitions");
    println!("grow, the ablation accumulates ghost replicas and permanently evicts");
    println!("falsely suspected services, while the full protocol dedups, fences, and");
    println!("re-adopts — holding compliance at or above the ablation everywhere.");
    let path = report::save_json("fig23_control_plane", &outcomes);
    println!("saved {}", path.display());
}

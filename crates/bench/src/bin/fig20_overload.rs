//! Fig. 20 (this reproduction's extension): admitted service-seconds vs
//! offered load as demand sweeps past the machine's co-location capacity,
//! comparing OSML with overload management (typed admission queue +
//! brownout) against the same controller with binary rejection.
//!
//! Built-in asserts:
//! * layout invariants hold at every tick of every arm;
//! * the shed policy never touches a non-best-effort service;
//! * with the queue enabled, admitted service-seconds are never below the
//!   binary-rejection baseline at any level;
//! * a controller killed mid-brownout and warm-restarted from its durable
//!   snapshot resumes with its queue, brownout flag and shave ledger;
//! * overload composes with fault injection (chaos arm stays invariant-clean).
//!
//! `--smoke` runs a two-level sweep (CI).

use osml_bench::overload::{overload_script, run_overload, OverloadOutcome};
use osml_bench::report;
use osml_bench::suite::{trained_suite, SuiteConfig};
use osml_core::OverloadConfig;
use osml_platform::{FaultPlan, FaultProfile};
use serde::Serialize;

#[derive(Serialize)]
struct Fig20Level {
    level: f64,
    queued: OverloadOutcome,
    binary: OverloadOutcome,
}

#[derive(Serialize)]
struct Fig20Report {
    levels: Vec<Fig20Level>,
    restart_mid_brownout: OverloadOutcome,
    chaos_compose: OverloadOutcome,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let levels: &[f64] = if smoke { &[0.6, 1.6] } else { &[0.4, 0.8, 1.2, 1.6, 2.0] };
    let seed = 20;
    let template = trained_suite(SuiteConfig::Standard);

    println!("== Fig. 20: admitted service-seconds vs offered load ==\n");
    println!(
        "{:>6}  {:>9}  {:>10}  {:>10}  {:>7}  {:>7}  {:>8}  {:>6}  {:>6}",
        "level", "offered", "queued", "binary", "defers", "admits", "timeouts", "shed", "brown"
    );
    let mut rows: Vec<Fig20Level> = Vec::new();
    for &level in levels {
        let script = overload_script(level);
        let queued = run_overload(
            &template,
            &script,
            seed,
            OverloadConfig::enabled(),
            FaultPlan::none(),
            false,
        );
        let binary = run_overload(
            &template,
            &script,
            seed,
            OverloadConfig::default(),
            FaultPlan::none(),
            false,
        );
        println!(
            "{:>6.1}  {:>9.0}  {:>10.0}  {:>10.0}  {:>7}  {:>7}  {:>8}  {:>6}  {:>6}",
            level,
            queued.offered_service_seconds,
            queued.admitted_service_seconds,
            binary.admitted_service_seconds,
            queued.deferrals,
            queued.queue_admissions,
            queued.timeouts,
            queued.sheds,
            queued.brownout_entries,
        );
        assert!(queued.layout_always_valid, "level {level}: queued arm broke layout invariants");
        assert!(binary.layout_always_valid, "level {level}: binary arm broke layout invariants");
        assert_eq!(
            queued.non_best_effort_sheds, 0,
            "level {level}: a non-best-effort service was shed"
        );
        assert!(
            queued.admitted_service_seconds >= binary.admitted_service_seconds,
            "level {level}: the queue admitted less than binary rejection \
             ({} < {})",
            queued.admitted_service_seconds,
            binary.admitted_service_seconds,
        );
        rows.push(Fig20Level { level, queued, binary });
    }

    // Crash mid-brownout: the durable overload state must survive.
    let restart_level = *levels.last().expect("at least one level");
    let script = overload_script(restart_level);
    let restart =
        run_overload(&template, &script, seed, OverloadConfig::enabled(), FaultPlan::none(), true);
    assert!(restart.layout_always_valid, "restart arm broke layout invariants");
    assert!(
        restart.brownout_entries > 0,
        "restart arm never entered brownout; raise the sweep level"
    );
    assert!(restart.restarted, "the controller was never killed mid-brownout");
    assert_eq!(
        restart.restart_resumed_state,
        Some(true),
        "warm restart lost queue/brownout/shave state"
    );
    println!(
        "\nrestart arm: killed mid-brownout, resumed with queue depth intact \
         (admitted {:.0} service-seconds)",
        restart.admitted_service_seconds
    );

    // Overload composes with fault injection: same sweep point, chaos mix.
    let chaos = run_overload(
        &template,
        &script,
        seed,
        OverloadConfig::enabled(),
        FaultPlan::new(0xFA_20, FaultProfile::chaos_default()),
        false,
    );
    assert!(chaos.layout_always_valid, "chaos-compose arm broke layout invariants");
    assert_eq!(chaos.non_best_effort_sheds, 0);
    assert!(chaos.faults_injected > 0, "the chaos plan injected nothing");
    println!(
        "chaos-compose arm: {} faults injected, layout clean, admitted {:.0} service-seconds",
        chaos.faults_injected, chaos.admitted_service_seconds
    );

    let report_data =
        Fig20Report { levels: rows, restart_mid_brownout: restart, chaos_compose: chaos };
    let path = report::save_json("fig20_overload", &report_data);
    println!("saved {}", path.display());
}

//! Fig. 16: the scheduling case study — at one disturbance OSML reaches its
//! OAA in a single action where PARTIES needs several, and a PARTIES
//! deprivation pushes Img-dnn over its RCliff.

use osml_baselines::Parties;
use osml_bench::report;
use osml_bench::suite::{trained_suite, SuiteConfig};
use osml_bench::timeline::{run_timeline, TimelineRecord};
use osml_workloads::loadgen::{ArrivalEvent, ArrivalScript, LoadSchedule};
use osml_workloads::Service;
use serde::Serialize;

/// Img-dnn runs steadily; Xapian arrives mid-run and ramps, forcing the
/// scheduler to rebalance — the disturbance of Fig. 16.
fn script() -> ArrivalScript {
    let pct = |s: Service, p: f64| s.params().nominal_max_rps() * p / 100.0;
    ArrivalScript::new(
        vec![
            ArrivalEvent {
                service: Service::ImgDnn,
                arrive_s: 0.0,
                depart_s: f64::INFINITY,
                threads: Service::ImgDnn.params().default_threads,
                load: LoadSchedule::Constant { rps: pct(Service::ImgDnn, 50.0) },
            },
            ArrivalEvent {
                service: Service::Xapian,
                arrive_s: 40.0,
                depart_s: f64::INFINITY,
                threads: Service::Xapian.params().default_threads,
                load: LoadSchedule::Steps {
                    steps: vec![
                        (40.0, pct(Service::Xapian, 30.0)),
                        (56.0, pct(Service::Xapian, 50.0)),
                    ],
                },
            },
        ],
        120.0,
    )
}

#[derive(Serialize)]
struct CaseStudy {
    policy: String,
    /// Actions spent in the window right after each disturbance.
    actions_after_arrival: usize,
    actions_after_step: usize,
    /// Worst Img-dnn latency/target after the load step (the RCliff
    /// incident).
    imgdnn_peak_after_step: f64,
    records: Vec<TimelineRecord>,
}

fn analyze(policy: &str, records: Vec<TimelineRecord>) -> CaseStudy {
    let actions_at = |t: f64| -> usize {
        records.iter().rfind(|r| r.time_s <= t).map(|r| r.actions).unwrap_or(0)
    };
    let actions_after_arrival = actions_at(50.0).saturating_sub(actions_at(39.0));
    let actions_after_step = actions_at(70.0).saturating_sub(actions_at(55.0));
    let imgdnn_peak_after_step = records
        .iter()
        .filter(|r| r.time_s >= 56.0)
        .flat_map(|r| r.services.iter())
        .filter(|s| s.service == Service::ImgDnn)
        .map(|s| s.latency_over_target)
        .fold(0.0f64, f64::max);
    CaseStudy {
        policy: policy.to_owned(),
        actions_after_arrival,
        actions_after_step,
        imgdnn_peak_after_step,
        records,
    }
}

fn main() {
    println!(
        "== Fig. 16: scheduling case study (img-dnn steady, xapian arrives @40s, steps @56s) ==\n"
    );
    let s = script();
    let mut parties = Parties::new();
    let parties_case = analyze("parties", run_timeline(&mut parties, &s, 0x16));
    let mut osml = trained_suite(SuiteConfig::Standard);
    let osml_case = analyze("osml", run_timeline(&mut osml, &s, 0x16));

    for case in [&parties_case, &osml_case] {
        println!(
            "{:<8} actions after arrival: {:>3}   after load step: {:>3}   img-dnn peak after step: {:.1}x target",
            case.policy, case.actions_after_arrival, case.actions_after_step, case.imgdnn_peak_after_step
        );
    }
    println!("\nExpected shape (paper): at the arrival OSML uses ~1 action vs PARTIES' ~5;");
    println!("after the load step PARTIES deprives img-dnn over its RCliff (latency spike),");
    println!("while OSML stays clear of the cliff.");
    let path = report::save_json("fig16_case_study", &vec![parties_case, osml_case]);
    println!("saved {}", path.display());
}

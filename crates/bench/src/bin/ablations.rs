//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! ```sh
//! cargo run -p osml-bench --release --bin ablations              # all studies
//! cargo run -p osml-bench --release --bin ablations -- margin    # just one
//! ```
//!
//! Studies: `margin` (OAA safety margin), `model-c-only` (§IV-D),
//! `withdrawal` (trial withdrawal of ineffective actions), `interval`
//! (sampling window), `bpoint-depth` (Model-B matching width).

use osml_bench::report;
use osml_bench::scenario::run_colocation_with_noise;
use osml_bench::suite::{trained_suite, SuiteConfig};
use osml_core::OsmlConfig;
use osml_platform::Topology;
use osml_workloads::oaa::LatencyGrid;
use osml_workloads::{LaunchSpec, Service};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    study: String,
    setting: String,
    metric: String,
    value: f64,
}

fn mix() -> Vec<LaunchSpec> {
    vec![
        LaunchSpec::at_percent_load(Service::Moses, 40.0),
        LaunchSpec::at_percent_load(Service::ImgDnn, 40.0),
        LaunchSpec::at_percent_load(Service::Xapian, 20.0),
    ]
}

/// A crowded five-service mix where newcomers must be funded by neighbours.
fn crowded() -> Vec<LaunchSpec> {
    vec![
        LaunchSpec::at_percent_load(Service::Moses, 30.0),
        LaunchSpec::at_percent_load(Service::ImgDnn, 25.0),
        LaunchSpec::at_percent_load(Service::MongoDb, 15.0),
        LaunchSpec::at_percent_load(Service::Login, 15.0),
        LaunchSpec::at_percent_load(Service::Xapian, 25.0),
    ]
}

/// OAA margin: QoS-safety vs resource waste. For each margin, place the OAA
/// and bump the load 10 % — a margin-less OAA sits on the cliff and breaks.
fn margin(rows: &mut Vec<Row>) {
    println!("--- ablation: OAA safety margin ---");
    let topo = Topology::xeon_e5_2697_v4();
    let services = [Service::Moses, Service::Xapian, Service::Specjbb, Service::Masstree];
    for m in 0..=3usize {
        let mut survived = 0usize;
        let mut total = 0usize;
        let mut extra_resources = 0usize;
        for s in services {
            for frac in [0.3, 0.5, 0.7] {
                let rps = s.params().nominal_max_rps() * frac;
                let grid = LatencyGrid::sweep(&topo, s, s.params().default_threads, rps);
                let (Some(oaa), Some(cliff)) = (grid.oaa_with_margin(m), grid.rcliff()) else {
                    continue;
                };
                total += 1;
                extra_resources += oaa.total() - cliff.total();
                // Does the allocation survive a 10 % load bump?
                let bumped = LatencyGrid::sweep(&topo, s, s.params().default_threads, rps * 1.10);
                if bumped.meets_qos(oaa) {
                    survived += 1;
                }
            }
        }
        let survival = survived as f64 / total.max(1) as f64;
        let waste = extra_resources as f64 / total.max(1) as f64;
        println!(
            "margin {m}: survives a +10% load bump in {:.0}% of cases, costs {:.1} extra units",
            survival * 100.0,
            waste
        );
        rows.push(Row {
            study: "margin".into(),
            setting: m.to_string(),
            metric: "bump_survival".into(),
            value: survival,
        });
        rows.push(Row {
            study: "margin".into(),
            setting: m.to_string(),
            metric: "extra_units".into(),
            value: waste,
        });
    }
}

/// §IV-D: Model-C alone (no Model-A/B placement) vs the full collaboration,
/// on a crowded noisy machine within a tight convergence window.
fn model_c_only(rows: &mut Vec<Row>) {
    println!("--- ablation: Model-C without Model-A/B ---");
    let template = trained_suite(SuiteConfig::Standard);
    for (name, via_models) in [("full osml", true), ("model-c only", false)] {
        let mut ok = 0usize;
        let mut actions = 0usize;
        for seed in 0..5u64 {
            let mut sched = template.clone().with_config(OsmlConfig {
                placement_via_models: via_models,
                ..OsmlConfig::default()
            });
            let out = run_colocation_with_noise(&mut sched, &crowded(), 100, 0xAB1 + seed, 0.02);
            ok += out.qos_ok as usize;
            actions += out.actions;
        }
        println!(
            "{name}: qos_ok {ok}/5, {:.1} mean actions (paper: Model-C alone wastes exploration time)",
            actions as f64 / 5.0
        );
        rows.push(Row {
            study: "model-c-only".into(),
            setting: name.into(),
            metric: "mean_actions".into(),
            value: actions as f64 / 5.0,
        });
        rows.push(Row {
            study: "model-c-only".into(),
            setting: name.into(),
            metric: "qos_rate".into(),
            value: ok as f64 / 5.0,
        });
    }
}

/// Trial withdrawal: the paper says ineffective actions "will be
/// withdrawn"; in this reproduction that mechanism (plus the ε-greedy
/// exploration it replaces on the decision path) is what keeps Model-C from
/// repeating a fruitless growth. Disable it and watch resources leak.
fn withdrawal(rows: &mut Vec<Row>) {
    println!("--- ablation: withdrawal of ineffective growth actions ---");
    let template = trained_suite(SuiteConfig::Standard);
    for (name, on) in [("withdrawal on", true), ("withdrawal off", false)] {
        let mut ok = 0usize;
        let mut actions = 0usize;
        for seed in 0..5u64 {
            let mut sched = template.clone().with_config(OsmlConfig {
                withdraw_ineffective_growth: on,
                ..OsmlConfig::default()
            });
            let out = run_colocation_with_noise(&mut sched, &crowded(), 100, 0xAB2 + seed, 0.02);
            ok += out.qos_ok as usize;
            actions += out.actions;
        }
        println!("{name}: qos_ok {ok}/5, {:.1} mean actions", actions as f64 / 5.0);
        rows.push(Row {
            study: "withdrawal".into(),
            setting: name.into(),
            metric: "mean_actions".into(),
            value: actions as f64 / 5.0,
        });
        rows.push(Row {
            study: "withdrawal".into(),
            setting: name.into(),
            metric: "qos_rate".into(),
            value: ok as f64 / 5.0,
        });
    }
}

/// Sampling window before Model-A runs (§V-B: 2 s default; shorter windows
/// sample cache-warmup transients).
fn interval(rows: &mut Vec<Row>) {
    println!("--- ablation: profiling window before Model-A ---");
    let template = trained_suite(SuiteConfig::Standard);
    for window in [0.5f64, 1.0, 2.0, 4.0] {
        let mut qos_ok = 0usize;
        let mut actions = 0usize;
        const SEEDS: [u64; 5] = [1, 2, 3, 4, 5];
        for seed in SEEDS {
            let mut sched = template
                .clone()
                .with_config(OsmlConfig { sampling_window_s: window, ..OsmlConfig::default() });
            // Noise on: short windows sample cache-warmup transients, which
            // corrupts Model-A's inputs (§V-B's rationale for 2 s).
            let out = run_colocation_with_noise(&mut sched, &mix(), 60, 0xAB3 + seed, 0.02);
            qos_ok += out.qos_ok as usize;
            actions += out.actions;
        }
        println!(
            "window {window:.1}s: qos_ok {qos_ok}/5 runs, {:.1} mean actions",
            actions as f64 / 5.0
        );
        rows.push(Row {
            study: "interval".into(),
            setting: format!("{window}"),
            metric: "mean_actions".into(),
            value: actions as f64 / SEEDS.len() as f64,
        });
    }
}

/// Model-B matching width (Algorithm 1 line 17: at most 3 apps involved).
fn bpoint_depth(rows: &mut Vec<Row>) {
    println!("--- ablation: B-point matching width ---");
    let template = trained_suite(SuiteConfig::Standard);
    for depth in [1usize, 2, 3] {
        let mut ok = 0usize;
        let mut actions = 0usize;
        for seed in 0..5u64 {
            let mut sched = template
                .clone()
                .with_config(OsmlConfig { max_deprived_apps: depth, ..OsmlConfig::default() });
            let out = run_colocation_with_noise(&mut sched, &crowded(), 120, 0xAB4 + seed, 0.02);
            ok += out.qos_ok as usize;
            actions += out.actions;
        }
        println!("depth {depth}: qos_ok {ok}/5, {:.1} mean actions", actions as f64 / 5.0);
        rows.push(Row {
            study: "bpoint-depth".into(),
            setting: depth.to_string(),
            metric: "qos_rate".into(),
            value: ok as f64 / 5.0,
        });
    }
}

fn main() {
    let which = std::env::args().nth(1);
    let mut rows = Vec::new();
    let all = which.is_none();
    let is = |name: &str| all || which.as_deref() == Some(name);
    if is("margin") {
        margin(&mut rows);
    }
    if is("model-c-only") {
        model_c_only(&mut rows);
    }
    if is("withdrawal") {
        withdrawal(&mut rows);
    }
    if is("interval") {
        interval(&mut rows);
    }
    if is("bpoint-depth") {
        bpoint_depth(&mut rows);
    }
    let path = report::save_json("ablations", &rows);
    println!("saved {}", path.display());
}

//! Fig. 22 (this reproduction's extension): cluster QoS compliance vs
//! node-failure rate and fleet size, comparing the full failover stack
//! (interference-aware re-placement of services stranded by dead nodes)
//! against a score-only tier (better placement, no failover), the legacy
//! first-fit tier (no failover at all) and a seeded random-placement
//! baseline (the null hypothesis for the placement policy).
//!
//! Each cell churns a fleet under a seeded [`NodeFaultPlan`] for the run's
//! duration and accounts demand-based compliance: evicted and rejected
//! services keep demanding service-seconds, so shedding services on node
//! death is paid for rather than hidden. Two invariants are asserted at
//! every cell: no service is ever silently lost (every submitted id keeps
//! a typed disposition), and the cluster's golden-thread log folds through
//! `replay()` without error.
//!
//! `--smoke` runs a 2-point sweep on the small fleet (CI).

use osml_bench::cluster::{failover_workload, run_cluster_failover, FailoverArm};
use osml_bench::report;
use osml_bench::suite::{trained_suite, SuiteConfig};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (rates, fleets, duration_s): (&[f64], &[usize], f64) =
        if smoke { (&[0.0, 0.20], &[3], 60.0) } else { (&[0.0, 0.05, 0.10, 0.20], &[3, 6], 120.0) };
    let template = trained_suite(SuiteConfig::Standard);

    println!("== Fig. 22: cluster failover under node churn ==\n");
    println!(
        "{:>6}  {:>6}  {:>14}  {:>10}  {:>8}  {:>9}  {:>9}  {:>8}  {:>6}",
        "nodes", "rate", "arm", "compliance", "evicted", "failovers", "failures", "migrate", "fold"
    );
    let mut outcomes = Vec::new();
    for &nodes in fleets {
        // Two services per node: survivors have headroom for failovers.
        let specs = failover_workload(2 * nodes);
        for &rate in rates {
            let mut per_arm = Vec::new();
            for arm in FailoverArm::ALL {
                let out = run_cluster_failover(
                    &template,
                    nodes,
                    &specs,
                    duration_s,
                    rate,
                    0xF22 ^ (nodes as u64) << 8,
                    arm,
                );
                println!(
                    "{:>6}  {:>6.2}  {:>14}  {:>10.3}  {:>8}  {:>9}  {:>9}  {:>8}  {:>6}",
                    nodes,
                    rate,
                    arm.label(),
                    out.qos_compliance,
                    out.evicted,
                    out.failovers,
                    out.node_failures,
                    out.migrations,
                    if out.replay_ok { "ok" } else { "BROKEN" },
                );
                assert_eq!(out.lost_silently, 0, "no-loss invariant");
                per_arm.push(out);
            }
            let no_failover =
                per_arm.iter().find(|o| o.arm == FailoverArm::NoFailover).unwrap().qos_compliance;
            let full =
                per_arm.iter().find(|o| o.arm == FailoverArm::OsmlFailover).unwrap().qos_compliance;
            assert!(
                full >= no_failover - 1e-9,
                "nodes={nodes} rate={rate}: failover ({full:.3}) must not lose to \
                 no-failover ({no_failover:.3})"
            );
            outcomes.extend(per_arm);
        }
    }

    println!("\nExpected shape: all arms tie near rate 0; as churn grows, the no-failover");
    println!("tier sheds services on every node death while the failover stack re-places");
    println!("them on survivors, holding compliance strictly higher at every rate.");
    let path = report::save_json("fig22_cluster_failover", &outcomes);
    println!("saved {}", path.display());
}

//! Fig. 3: the OAA exists regardless of the number of concurrent threads.
//! More threads raise overall latency (context switching, §III-B) but
//! barely move the optimal allocation area.

use osml_bench::report;
use osml_platform::Topology;
use osml_workloads::oaa::{AllocPoint, LatencyGrid};
use osml_workloads::Service;
use serde::Serialize;

#[derive(Serialize)]
struct ThreadCase {
    service: String,
    offered_rps: f64,
    threads: usize,
    oaa: Option<AllocPoint>,
    /// p95 at the thread-invariant reference allocation, ms.
    p95_at_reference_ms: f64,
}

fn main() {
    let topo = Topology::xeon_e5_2697_v4();
    let cases = [(Service::Moses, 1800.0), (Service::Xapian, 4400.0), (Service::ImgDnn, 4000.0)];
    let thread_counts = [8usize, 16, 20, 28, 36];
    println!("== Fig. 3: OAA vs number of launched threads ==\n");
    let mut out = Vec::new();
    let mut rows = Vec::new();
    for (service, rps) in cases {
        // Reference allocation: the OAA of the default thread count.
        let reference = LatencyGrid::sweep(&topo, service, service.params().default_threads, rps)
            .oaa()
            .expect("case is feasible");
        for &threads in &thread_counts {
            let grid = LatencyGrid::sweep(&topo, service, threads, rps);
            let oaa = grid.oaa();
            let p95 = grid.p95(reference);
            rows.push(vec![
                service.name().to_owned(),
                threads.to_string(),
                oaa.map(|p| format!("({}, {})", p.cores, p.ways)).unwrap_or("-".into()),
                format!("{p95:.2}"),
            ]);
            out.push(ThreadCase {
                service: service.name().to_owned(),
                offered_rps: rps,
                threads,
                oaa,
                p95_at_reference_ms: p95,
            });
        }
    }
    println!(
        "{}",
        report::render_table(
            &["service", "threads", "OAA (cores, ways)", "p95 @ reference alloc (ms)"],
            &rows
        )
    );
    println!("Expected shape: per service, the OAA column is nearly constant while the");
    println!("latency column rises gently with thread count (context-switch overhead).");
    let path = report::save_json("fig3_oaa_threads", &out);
    println!("saved {}", path.display());
}

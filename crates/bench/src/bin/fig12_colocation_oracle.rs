//! Fig. 12: co-location of Masstree (x), Specjbb (y) and Xapian (probe) with
//! MongoDB at 50 % of max load in the background — including the Oracle
//! panel. The paper's claim: OSML behaves close to the Oracle, reaching
//! ~90 % of it in the highlighted cells.

use osml_baselines::{Parties, Unmanaged};
use osml_bench::grid::{colocation_grid, oracle_grid, ColocationGrid};
use osml_bench::report;
use osml_bench::suite::{trained_suite, SuiteConfig};
use osml_workloads::Service;

fn main() {
    let steps: Vec<usize> = (1..=10).map(|i| i * 10).collect();
    let settle = 60;
    let (x, y, probe) = (Service::Masstree, Service::Specjbb, Service::Xapian);
    let background = [(Service::MongoDb, 50.0)];

    println!("== Fig. 12: masstree, specjbb, xapian + mongodb@50% background ==\n");
    let unmanaged =
        colocation_grid("unmanaged", Unmanaged::new, x, y, probe, &background, &steps, settle);
    println!("{}", report::render_grid(&unmanaged));

    let parties =
        colocation_grid("parties", Parties::new, x, y, probe, &background, &steps, settle);
    println!("{}", report::render_grid(&parties));

    let osml_template = trained_suite(SuiteConfig::Standard);
    let osml =
        colocation_grid("osml", || osml_template.clone(), x, y, probe, &background, &steps, settle);
    println!("{}", report::render_grid(&osml));

    let oracle = oracle_grid(x, y, probe, &background, &steps);
    println!("{}", report::render_grid(&oracle));

    let grids: Vec<&ColocationGrid> = vec![&unmanaged, &parties, &osml, &oracle];
    for g in &grids {
        println!("EMU[{}] = {:.3}", g.policy, g.mean_emu());
    }
    // OSML-vs-Oracle ratio over cells where the oracle is feasible.
    let mut ratio_sum = 0.0;
    let mut n = 0usize;
    for (orow, srow) in oracle.cells.iter().zip(&osml.cells) {
        for (&o, &s) in orow.iter().zip(srow) {
            if o > 0 {
                ratio_sum += s as f64 / o as f64;
                n += 1;
            }
        }
    }
    if n > 0 {
        println!(
            "\nOSML achieves {:.0}% of the Oracle on average over feasible cells (paper: ~90% in the highlighted cells)",
            100.0 * ratio_sum / n as f64
        );
    }
    let path = report::save_json("fig12_colocation_oracle", &grids);
    println!("saved {}", path.display());
}

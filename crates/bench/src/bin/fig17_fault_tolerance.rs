//! Fig. 17 (this reproduction's extension): QoS compliance vs platform
//! fault rate for the 3-service co-location of Fig. 10, proving the
//! resilient controller degrades gracefully rather than cliff-shaped.
//!
//! Each point replays the co-location with a seeded fault plan scaled
//! around the default chaos mix (5 % transient actuation failures + 2 %
//! counter dropout at rate 0.05): actuations fail transiently at the given
//! probability, counter windows drop/stale/corrupt proportionally, and the
//! controller's retry/rollback/fallback machinery has to keep every
//! service converging back to QoS.
//!
//! `--smoke` runs a two-point sweep with a short settle phase (CI).

use osml_bench::chaos::{run_chaos_colocation, ChaosOutcome};
use osml_bench::report;
use osml_bench::suite::{trained_suite, SuiteConfig};
use osml_platform::{FaultPlan, FaultProfile};
use osml_workloads::{LaunchSpec, Service};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (rates, settle): (&[f64], usize) =
        if smoke { (&[0.0, 0.05], 40) } else { (&[0.0, 0.01, 0.02, 0.05, 0.10, 0.20], 120) };
    let specs = [
        LaunchSpec::at_percent_load(Service::Xapian, 30.0),
        LaunchSpec::at_percent_load(Service::ImgDnn, 30.0),
        LaunchSpec::at_percent_load(Service::Moses, 30.0),
    ];
    let template = trained_suite(SuiteConfig::Standard);

    println!("== Fig. 17: QoS compliance vs platform fault rate ==\n");
    println!(
        "{:>6}  {:>9}  {:>10}  {:>7}  {:>7}  {:>9}  {:>9}  {:>9}  {:>6}",
        "rate",
        "compliance",
        "converged",
        "faults",
        "retries",
        "rollbacks",
        "fallbacks",
        "recovered",
        "layout"
    );
    let mut outcomes: Vec<ChaosOutcome> = Vec::new();
    for &rate in rates {
        let profile = if (rate - 0.05).abs() < 1e-12 {
            // The default chaos point uses the canonical 5 % + 2 % mix.
            FaultProfile::chaos_default()
        } else {
            FaultProfile::at_rate(rate)
        };
        let mut osml = template.clone();
        let out =
            run_chaos_colocation(&mut osml, &specs, settle, 17, FaultPlan::new(0xFA_17, profile));
        println!(
            "{:>6.2}  {:>9.3}  {:>10}  {:>7}  {:>7}  {:>9}  {:>9}  {:>9}  {:>6}",
            rate,
            out.qos_compliance_over_time,
            out.converged,
            out.faults_injected,
            out.retries,
            out.rollbacks,
            out.fallbacks_engaged,
            out.recoveries,
            if out.layout_always_valid { "ok" } else { "BROKEN" },
        );
        assert!(
            out.layout_always_valid,
            "rate {rate}: a half-applied layout escaped the transactional controller"
        );
        outcomes.push(out);
    }

    let zero = &outcomes[0];
    assert!(zero.faults_injected == 0 && zero.retries == 0 && zero.rollbacks == 0);
    println!("\nExpected shape: compliance ~1.0 at rate 0 and degrading smoothly; every");
    println!("service converges back to QoS at the default chaos point (rate 0.05).");
    let path = report::save_json("fig17_fault_tolerance", &outcomes);
    println!("saved {}", path.display());
}

//! Wall-clock of the pipeline's expensive stages, sequential (`jobs = 1`)
//! vs parallel (`OSML_JOBS` or the machine), recorded to
//! `results/parallel_speedup.json`. Each stage is also checked bit-identical
//! across the two runs — the parallel layer's core guarantee.

use osml_baselines::Unmanaged;
use osml_bench::grid::colocation_grid_jobs;
use osml_bench::report::{render_table, save_json};
use osml_dataset::{model_a_corpus, SweepConfig, TrainedModels, TrainingConfig};
use osml_ml::TrainerConfig;
use osml_workloads::Service;
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct StageTiming {
    stage: String,
    sequential_secs: f64,
    parallel_secs: f64,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct SpeedupReport {
    jobs: usize,
    /// Physical parallelism actually available when the numbers were taken —
    /// a speedup near 1.0x on a 1-core box is expected, not a regression.
    detected_cores: usize,
    stages: Vec<StageTiming>,
}

/// Times `run` at `jobs = 1` and `jobs = n`, asserting identical output.
fn time_stage<T: PartialEq>(
    stage: &str,
    jobs: usize,
    mut run: impl FnMut(usize) -> T,
) -> StageTiming {
    let start = Instant::now();
    let sequential = run(1);
    let sequential_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let parallel = run(jobs);
    let parallel_secs = start.elapsed().as_secs_f64();
    assert!(sequential == parallel, "stage {stage} diverged between job counts");
    StageTiming {
        stage: stage.to_owned(),
        sequential_secs,
        parallel_secs,
        speedup: sequential_secs / parallel_secs.max(1e-9),
    }
}

fn main() {
    let jobs = osml_ml::par::jobs_from_env().max(2);
    let detected_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut stages = Vec::new();

    let steps = [20usize, 50, 80];
    stages.push(time_stage("colocation_grid_3x3", jobs, |j| {
        colocation_grid_jobs(
            j,
            "unmanaged",
            Unmanaged::new,
            Service::ImgDnn,
            Service::Xapian,
            Service::Moses,
            &[],
            &steps,
            20,
        )
        .cells
    }));

    stages.push(time_stage("model_a_corpus_standard", jobs, |j| {
        model_a_corpus(&SweepConfig { jobs: Some(j), ..SweepConfig::default() })
    }));

    stages.push(time_stage("train_suite_quick", jobs, |j| {
        let cfg = TrainingConfig {
            sweep: SweepConfig {
                jobs: Some(j),
                services: vec![Service::Moses, Service::Xapian],
                ..SweepConfig::default()
            },
            trainer: TrainerConfig { epochs: 30, batch_size: 256, ..TrainerConfig::default() },
            dqn_steps: 100,
            seed: 0x05_11,
        };
        let trained = TrainedModels::train(&cfg);
        // Compare through the reports (models have no PartialEq; the
        // training losses pin the numerics just as tightly).
        (
            trained.report_a.epoch_losses,
            trained.report_b.epoch_losses,
            trained.report_b_prime.epoch_losses,
        )
    }));

    let rows: Vec<Vec<String>> = stages
        .iter()
        .map(|s| {
            vec![
                s.stage.clone(),
                format!("{:.2}", s.sequential_secs),
                format!("{:.2}", s.parallel_secs),
                format!("{:.2}x", s.speedup),
            ]
        })
        .collect();
    println!("parallel speedup at {jobs} jobs on {detected_cores} detected core(s) (bit-identical outputs):");
    println!(
        "{}",
        render_table(&["stage", "jobs=1 (s)", &format!("jobs={jobs} (s)"), "speedup"], &rows)
    );

    let report = SpeedupReport { jobs, detected_cores, stages };
    let path = save_json("parallel_speedup", &report);
    println!("wrote {}", path.display());
}

//! Fig. 4: a heuristic (PARTIES-style) scheduler untangling three co-located
//! services by fine-grained trial and error — latency spikes of hundreds of
//! times the target and a long convergence tail, because the scheduler is
//! blind to RCliffs.

use osml_baselines::Parties;
use osml_bench::report;
use osml_bench::timeline::{run_timeline, TimelineSummary};
use osml_workloads::loadgen::ArrivalScript;

fn main() {
    let script = ArrivalScript::fig4();
    let mut parties = Parties::new();
    let records = run_timeline(&mut parties, &script, 0x04);
    println!("== Fig. 4: heuristic scheduling of img-dnn + xapian + moses (40% load each) ==\n");
    println!("time  actions  idle-cores  per-service latency/target");
    for r in records.iter().step_by(5) {
        let lat: Vec<String> = r
            .services
            .iter()
            .map(|s| format!("{}={:.1}x", s.service, s.latency_over_target))
            .collect();
        println!("{:>4.0}  {:>7}  {:>10}  {}", r.time_s, r.actions, r.idle_cores, lat.join("  "));
    }
    let summary = TimelineSummary::from_records("parties", &records);
    println!("\nsummary: {summary:?}");
    println!("\nExpected shape (paper): latency spiking to hundreds of times the target during");
    println!("exploration, convergence only after tens of seconds, many scheduling actions.");
    let path = report::save_json("fig4_heuristic_trace", &records);
    println!("saved {}", path.display());
}

//! Fig. 13: resource usage while scheduling the Fig. 10 workloads — OSML
//! converges with fewer actions and leaves more idle cores/ways than
//! PARTIES.

use osml_baselines::Parties;
use osml_bench::report;
use osml_bench::suite::{trained_suite, SuiteConfig};
use osml_bench::timeline::{run_timeline, TimelineSummary};
use osml_platform::Scheduler;
use osml_workloads::loadgen::ArrivalScript;
use serde::Serialize;

#[derive(Serialize)]
struct UsageSeries {
    policy: String,
    time_s: Vec<f64>,
    idle_cores: Vec<usize>,
    idle_ways: Vec<usize>,
    actions: Vec<usize>,
}

fn run<Sched: Scheduler>(name: &str, sched: &mut Sched) -> (UsageSeries, TimelineSummary) {
    let script = ArrivalScript::fig4(); // the Fig. 10 workloads
    let records = run_timeline(sched, &script, 0x13);
    let series = UsageSeries {
        policy: name.to_owned(),
        time_s: records.iter().map(|r| r.time_s).collect(),
        idle_cores: records.iter().map(|r| r.idle_cores).collect(),
        idle_ways: records.iter().map(|r| r.idle_ways).collect(),
        actions: records.iter().map(|r| r.actions).collect(),
    };
    let summary = TimelineSummary::from_records(name, &records);
    (series, summary)
}

fn main() {
    println!("== Fig. 13: resource usage during scheduling (img-dnn + xapian + moses @40%) ==\n");
    let mut parties = Parties::new();
    let (parties_series, parties_summary) = run("parties", &mut parties);
    let mut osml = trained_suite(SuiteConfig::Standard);
    let (osml_series, osml_summary) = run("osml", &mut osml);

    println!("time   parties: idle-c idle-w actions | osml: idle-c idle-w actions");
    for i in (0..parties_series.time_s.len().min(osml_series.time_s.len())).step_by(10) {
        println!(
            "{:>4.0}   {:>14} {:>6} {:>7} | {:>11} {:>6} {:>7}",
            parties_series.time_s[i],
            parties_series.idle_cores[i],
            parties_series.idle_ways[i],
            parties_series.actions[i],
            osml_series.idle_cores[i],
            osml_series.idle_ways[i],
            osml_series.actions[i],
        );
    }
    println!("\nparties: {parties_summary:?}");
    println!("osml:    {osml_summary:?}");
    println!("\nExpected shape (paper): OSML reaches its steady allocation in a handful of");
    println!("actions and keeps more cores/ways idle for future services; PARTIES keeps");
    println!("trialing units for tens of seconds.");
    let path = report::save_json("fig13_resource_usage", &vec![parties_series, osml_series]);
    println!("saved {}", path.display());
}

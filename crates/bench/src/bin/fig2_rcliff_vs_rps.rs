//! Fig. 2: sensitivity of the RCliff to the offered load. The cliff persists
//! at every Table-1 RPS and shifts outward as load grows; the paper reports
//! an average positional variation of 8.80 % (Moses max 15.0 %, MongoDB min
//! 2.77 %).

use osml_bench::report;
use osml_platform::Topology;
use osml_workloads::oaa::{rcliff_shift, AllocPoint};
use osml_workloads::Service;
use serde::Serialize;

#[derive(Serialize)]
struct ServiceShift {
    service: String,
    points: Vec<(f64, Option<AllocPoint>)>,
    /// Mean relative step of the cliff's total resources between adjacent
    /// loads (the paper's "variation").
    mean_variation_pct: f64,
}

fn main() {
    let topo = Topology::xeon_e5_2697_v4();
    let services = [
        Service::Moses,
        Service::ImgDnn,
        Service::Xapian,
        Service::Specjbb,
        Service::Sphinx,
        Service::MongoDb,
    ];
    println!("== Fig. 2: RCliff position across Table-1 loads ==\n");
    let mut out = Vec::new();
    let mut rows = Vec::new();
    for service in services {
        let points = rcliff_shift(&topo, service);
        let feasible: Vec<(f64, AllocPoint)> =
            points.iter().filter_map(|&(rps, p)| p.map(|p| (rps, p))).collect();
        let mut variations = Vec::new();
        for pair in feasible.windows(2) {
            let (a, b) = (pair[0].1, pair[1].1);
            let step = (b.total() as f64 - a.total() as f64).abs() / a.total() as f64;
            variations.push(step * 100.0);
        }
        let mean_variation = if variations.is_empty() {
            0.0
        } else {
            variations.iter().sum::<f64>() / variations.len() as f64
        };
        rows.push(vec![
            service.name().to_owned(),
            feasible
                .iter()
                .map(|(rps, p)| format!("{rps:.0}:({},{})", p.cores, p.ways))
                .collect::<Vec<_>>()
                .join("  "),
            format!("{mean_variation:.1}%"),
        ]);
        out.push(ServiceShift {
            service: service.name().to_owned(),
            points,
            mean_variation_pct: mean_variation,
        });
    }
    println!(
        "{}",
        report::render_table(&["service", "rps:(cliff cores, ways)", "mean shift/step"], &rows)
    );
    let grand = out.iter().map(|s| s.mean_variation_pct).sum::<f64>() / out.len() as f64;
    println!(
        "mean per-step cliff variation across services: {grand:.1}% (paper reports 8.80% average)"
    );
    let path = report::save_json("fig2_rcliff_vs_rps", &out);
    println!("saved {}", path.display());
}

//! Table 3: the model input features and which model consumes each.

use osml_bench::report;
use osml_platform::CounterSample;

fn main() {
    println!("== Table 3: the involved parameters ==");
    let descriptions = [
        "Instructions per clock",
        "LLC misses per second",
        "Local memory bandwidth",
        "The sum of each core's utilization",
        "The memory footprint of an app",
        "Virtual memory in use by an app",
        "Resident memory in use by an app",
        "LLC footprint of an app",
        "The number of allocated cores",
        "The number of allocated LLC ways",
        "Core frequency at runtime",
    ];
    let used_in = [
        "A/B/C", "A/B/C", "A/B/C", "A/B/C", "A/B/C", "A/B", "A/B", "A/B/C", "A/B/C", "A/B/C",
        "A/B/C",
    ];
    let mut rows: Vec<Vec<String>> = CounterSample::feature_names()
        .iter()
        .zip(descriptions.iter())
        .zip(used_in.iter())
        .map(|((name, desc), used)| {
            vec![(*name).to_owned(), (*desc).to_owned(), (*used).to_owned()]
        })
        .collect();
    rows.push(vec!["QoS Slowdown".into(), "Percentage of QoS slowdown".into(), "B".into()]);
    rows.push(vec!["Resp. Latency".into(), "Average latency of a microservice".into(), "C".into()]);
    println!("{}", report::render_table(&["Feature", "Description", "Used in Model"], &rows));
    let path = report::save_json("table3_features", &rows);
    println!("saved {}", path.display());
}

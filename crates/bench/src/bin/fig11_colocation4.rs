//! Fig. 11: co-location of four services — Moses (x), Specjbb (y), Xapian
//! (probe), with Sphinx in the background at 10 % of its max load.

use osml_baselines::{Parties, Unmanaged};
use osml_bench::grid::{colocation_grid, ColocationGrid};
use osml_bench::report;
use osml_bench::suite::{trained_suite, SuiteConfig};
use osml_workloads::Service;

fn main() {
    let steps: Vec<usize> = (1..=10).map(|i| i * 10).collect();
    let settle = 60;
    let (x, y, probe) = (Service::Moses, Service::Specjbb, Service::Xapian);
    let background = [(Service::Sphinx, 10.0)];

    println!("== Fig. 11: moses, specjbb, xapian + sphinx@10% background ==\n");
    let unmanaged =
        colocation_grid("unmanaged", Unmanaged::new, x, y, probe, &background, &steps, settle);
    println!("{}", report::render_grid(&unmanaged));

    let parties =
        colocation_grid("parties", Parties::new, x, y, probe, &background, &steps, settle);
    println!("{}", report::render_grid(&parties));

    let osml_template = trained_suite(SuiteConfig::Standard);
    let osml =
        colocation_grid("osml", || osml_template.clone(), x, y, probe, &background, &steps, settle);
    println!("{}", report::render_grid(&osml));

    let grids: Vec<&ColocationGrid> = vec![&unmanaged, &parties, &osml];
    for g in &grids {
        println!("EMU[{}] = {:.3}", g.policy, g.mean_emu());
    }
    println!("\nExpected shape (paper): same ordering as Fig. 10; OSML additionally reaches");
    println!("cells PARTIES cannot (blue boxes in Fig. 11-c, e.g. xapian@10% with moses@90%).");
    let path = report::save_json("fig11_colocation4", &grids);
    println!("saved {}", path.display());
}

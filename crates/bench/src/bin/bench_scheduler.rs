//! Scheduler-core throughput trajectory: event-driven + batched engine vs
//! the legacy scan loop at 10/100/1k/10k co-located services, written to
//! `BENCH_scheduler.json` at the repository root (committed, asserted in
//! CI).
//!
//! `--smoke` runs a reduced matrix (two sizes, few ticks) for CI: fast
//! enough for every push, still exercising both engines, the equivalence
//! assertion, and the JSON schema.

use osml_bench::perf::{measure, SizePoint};
use serde::Serialize;
use std::path::PathBuf;

#[derive(Debug, Serialize)]
struct BenchReport {
    /// What produced this file.
    generated_by: &'static str,
    /// Whether this is the reduced CI matrix.
    smoke: bool,
    /// Fixed seed feeding the synthetic counter streams.
    seed: u64,
    /// One scan-vs-event comparison per fleet size.
    sizes: Vec<SizePoint>,
}

const SEED: u64 = 0x0511_2023;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Tick counts scale inversely with fleet size so every point costs
    // comparable wall time; the smoke matrix stays under a few seconds.
    let matrix: &[(usize, usize)] = if smoke {
        &[(10, 50), (100, 20)]
    } else {
        &[(10, 1000), (100, 400), (1000, 100), (10000, 20)]
    };

    let mut sizes = Vec::new();
    println!("scheduler core throughput (scan vs event-driven+batched):");
    println!(
        "{:>9} {:>7} {:>16} {:>16} {:>9} {:>14}",
        "services", "ticks", "scan st/s", "event st/s", "speedup", "event dec/s"
    );
    for &(services, ticks) in matrix {
        let point = measure(services, ticks, SEED);
        println!(
            "{:>9} {:>7} {:>16.0} {:>16.0} {:>8.2}x {:>14.0}",
            point.services,
            point.ticks,
            point.scan.service_ticks_per_sec,
            point.event.service_ticks_per_sec,
            point.speedup,
            point.event.decisions_per_sec,
        );
        sizes.push(point);
    }

    let report =
        BenchReport { generated_by: "osml-bench/bench_scheduler", smoke, seed: SEED, sizes };
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_scheduler.json");
    let json = serde_json::to_string_pretty(&report).expect("serialize bench report");
    osml_ml::store::write_atomic(&path, &json).expect("write BENCH_scheduler.json");
    println!("wrote {}", path.display());
}

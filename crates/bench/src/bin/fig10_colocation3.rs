//! Fig. 10: co-location of Xapian, Img-dnn and Moses. Heatmap cells are the
//! maximum Moses load (% of max) supported without any QoS violation, as a
//! function of Img-dnn (x) and Xapian (y) loads, for Unmanaged, PARTIES and
//! OSML.

use osml_baselines::{Parties, Unmanaged};
use osml_bench::grid::{colocation_grid, ColocationGrid};
use osml_bench::report;
use osml_bench::suite::{trained_suite, SuiteConfig};
use osml_workloads::Service;

fn main() {
    let steps: Vec<usize> = (1..=10).map(|i| i * 10).collect();
    let settle = 60;
    let (x, y, probe) = (Service::ImgDnn, Service::Xapian, Service::Moses);

    println!("== Fig. 10: co-location of xapian, img-dnn, moses ==\n");
    let unmanaged = colocation_grid("unmanaged", Unmanaged::new, x, y, probe, &[], &steps, settle);
    println!("{}", report::render_grid(&unmanaged));

    let parties = colocation_grid("parties", Parties::new, x, y, probe, &[], &steps, settle);
    println!("{}", report::render_grid(&parties));

    let osml_template = trained_suite(SuiteConfig::Standard);
    let osml = colocation_grid("osml", || osml_template.clone(), x, y, probe, &[], &steps, settle);
    println!("{}", report::render_grid(&osml));

    let grids: Vec<&ColocationGrid> = vec![&unmanaged, &parties, &osml];
    for g in &grids {
        println!("EMU[{}] = {:.3}", g.policy, g.mean_emu());
    }
    println!("\nExpected shape (paper): PARTIES > Unmanaged, OSML >= PARTIES, with OSML");
    println!("supporting strictly higher Moses loads in several cells (red boxes in Fig. 10-c).");
    let path = report::save_json("fig10_colocation3", &grids);
    println!("saved {}", path.display());
}

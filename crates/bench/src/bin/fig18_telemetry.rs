//! Fig. 18 (this reproduction's extension): the scheduler's own
//! observability plane. Replays the Fig. 14 dynamic-load timeline with the
//! telemetry pipeline attached and emits:
//!
//! * `results/fig18_telemetry.json` — the metrics snapshot: per-model
//!   inference timing histograms (p50/p95/p99 µs), actuation timings,
//!   retry/fault counters and harness gauges;
//! * `results/fig18_trace.jsonl` — the structured decision trace, one JSON
//!   record per scheduler decision (grants, deprivations, reclaims,
//!   rollbacks, fallback transitions, retries) with pre/post allocations
//!   and model provenance.
//!
//! The run asserts the observability contract: the number of trace records
//! marked `counts_as_action` equals the scheduler's reported
//! `action_count()` exactly — the trace is complete, not a sample.
//!
//! `--smoke` replays a short two-service script instead (CI).

use osml_baselines::Parties;
use osml_bench::report;
use osml_bench::suite::{trained_suite, SuiteConfig};
use osml_bench::timeline::{run_timeline_traced, TimelineSummary};
use osml_platform::Scheduler;
use osml_telemetry::{
    FileSink, MetricsSnapshot, RingBufferSink, Telemetry, TelemetrySink, TraceRecord,
};
use osml_workloads::loadgen::{ArrivalEvent, ArrivalScript, LoadSchedule};
use osml_workloads::Service;
use serde::Serialize;
use std::collections::BTreeMap;

/// Everything Fig. 18 persists as JSON.
#[derive(Debug, Serialize)]
struct Fig18Output {
    osml: TimelineSummary,
    parties: TimelineSummary,
    osml_trace_actions: u64,
    osml_trace_records: u64,
    parties_trace_actions: u64,
    actions_by_kind: BTreeMap<String, usize>,
    metrics: MetricsSnapshot,
}

fn smoke_script() -> ArrivalScript {
    ArrivalScript::new(
        vec![
            ArrivalEvent {
                service: Service::Login,
                arrive_s: 0.0,
                depart_s: f64::INFINITY,
                threads: 8,
                load: LoadSchedule::Constant { rps: 300.0 },
            },
            ArrivalEvent {
                service: Service::Ads,
                arrive_s: 5.0,
                depart_s: 30.0,
                threads: 8,
                load: LoadSchedule::Constant { rps: 100.0 },
            },
        ],
        40.0,
    )
}

fn kind_histogram(records: &[TraceRecord]) -> BTreeMap<String, usize> {
    let mut by_kind: BTreeMap<String, usize> = BTreeMap::new();
    for r in records.iter().filter(|r| r.counts_as_action) {
        *by_kind.entry(format!("{:?}", r.kind)).or_insert(0) += 1;
    }
    by_kind
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let script = if smoke { smoke_script() } else { ArrivalScript::fig14() };

    let trace_path = report::results_dir().join("fig18_trace.jsonl");
    let sinks: Vec<Box<dyn TelemetrySink>> = vec![
        Box::new(RingBufferSink::new(65_536)),
        Box::new(FileSink::create(&trace_path).expect("create trace file")),
    ];
    let telemetry = Telemetry::with_sinks(sinks);

    println!("== Fig. 18: scheduler observability (metrics + decision trace) ==\n");
    let mut osml = trained_suite(SuiteConfig::Standard).with_telemetry(telemetry.clone());
    let records = run_timeline_traced(&mut osml, &script, 18, &telemetry);
    let osml_summary = TimelineSummary::from_records("osml", &records);
    telemetry.flush();

    // The observability contract: every counted action left a trace record.
    assert_eq!(
        telemetry.action_trace_count() as usize,
        osml.action_count(),
        "decision trace must cover every scheduling action"
    );

    // The baseline emits through its own pipeline (in-memory only).
    let parties_telemetry = Telemetry::enabled();
    let mut parties = Parties::new().with_telemetry(parties_telemetry.clone());
    let parties_records = run_timeline_traced(&mut parties, &script, 18, &parties_telemetry);
    let parties_summary = TimelineSummary::from_records("parties", &parties_records);
    assert_eq!(
        parties_telemetry.action_trace_count() as usize,
        parties.action_count(),
        "baseline trace must cover every scheduling action too"
    );

    let snapshot = telemetry.snapshot();
    println!("span timings (µs):");
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (name, h) in &snapshot.histograms {
        rows.push(vec![
            name.clone(),
            h.count.to_string(),
            h.p50.map(|v| format!("{v:.1}")).unwrap_or_default(),
            h.p95.map(|v| format!("{v:.1}")).unwrap_or_default(),
            h.p99.map(|v| format!("{v:.1}")).unwrap_or_default(),
            h.max.map(|v| format!("{v:.1}")).unwrap_or_default(),
        ]);
    }
    print!("{}", report::render_table(&["span", "count", "p50", "p95", "p99", "max"], &rows));

    // Model-A runs every tick and actuation fires at placement, so those
    // spans are structural. Model-C only engages on QoS violations or
    // surplus reclaim, which the short smoke script never provokes.
    let required: &[&str] = if smoke {
        &["model.a.predict_us", "actuation.reallocate_us", "harness.tick_us"]
    } else {
        &["model.a.predict_us", "model.c.infer_us", "actuation.reallocate_us", "harness.tick_us"]
    };
    for span in required {
        let h = snapshot.histograms.get(*span);
        assert!(h.is_some_and(|h| h.count > 0), "expected span timings to be populated: {span}");
    }

    let trace = telemetry.trace_records();
    let actions_by_kind = kind_histogram(&trace);
    println!(
        "\ndecision trace: {} records, {} actions",
        trace.len(),
        telemetry.action_trace_count()
    );
    for (kind, n) in &actions_by_kind {
        println!("  {kind:<12} {n}");
    }
    println!(
        "\nosml:    {} actions over {:.0} s (qos fraction {:.3})",
        osml_summary.total_actions, script.duration_s, osml_summary.qos_fraction
    );
    println!(
        "parties: {} actions over {:.0} s (qos fraction {:.3})",
        parties_summary.total_actions, script.duration_s, parties_summary.qos_fraction
    );

    let output = Fig18Output {
        osml_trace_actions: telemetry.action_trace_count(),
        osml_trace_records: telemetry.trace_record_count(),
        parties_trace_actions: parties_telemetry.action_trace_count(),
        osml: osml_summary,
        parties: parties_summary,
        actions_by_kind,
        metrics: snapshot,
    };
    let path = report::save_json("fig18_telemetry", &output);
    println!("\nsaved {}", path.display());
    println!("saved {}", trace_path.display());
}

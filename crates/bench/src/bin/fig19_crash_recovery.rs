//! Fig. 19 (this reproduction's extension): QoS impact of controller
//! crashes, and what durable state buys back. The 3-service co-location of
//! Fig. 10 runs with the controller write-ahead journaling every committed
//! action and checkpointing its full snapshot (plus Model-C's agent state)
//! every 10 ticks; at a seeded sweep of kill ticks the controller is
//! killed and restarted, either **warm** (snapshot + journal replay +
//! Model-C checkpoint via `OsmlScheduler::recover`) or **cold** (durable
//! store lost, every service adopted from the live substrate).
//!
//! The acceptance bar this binary asserts: at **every** kill tick the
//! layout invariants hold across the restart, and warm recovery ends the
//! run with QoS compliance no worse than a cold restart.
//!
//! `--smoke` runs a three-point kill sweep with a shorter timeline (CI).

use osml_bench::chaos::{run_crash_recovery, RecoveryOutcome, RestartPlan};
use osml_bench::report;
use osml_bench::suite::{trained_suite, SuiteConfig};
use osml_core::RecoveryMode;
use osml_workloads::{LaunchSpec, Service};
use serde::Serialize;

/// One kill tick's warm-vs-cold comparison.
#[derive(Serialize)]
struct KillPoint {
    kill_tick: usize,
    warm: RecoveryOutcome,
    cold: RecoveryOutcome,
}

/// The full figure: the never-killed reference arm plus the kill sweep.
#[derive(Serialize)]
struct Fig19 {
    total_ticks: usize,
    checkpoint_every: usize,
    baseline: RecoveryOutcome,
    points: Vec<KillPoint>,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (total, kills): (usize, &[usize]) =
        if smoke { (60, &[3, 17, 40]) } else { (120, &[3, 10, 25, 45, 70, 100]) };
    let checkpoint_every = 10;
    let specs = [
        LaunchSpec::at_percent_load(Service::Xapian, 30.0),
        LaunchSpec::at_percent_load(Service::ImgDnn, 30.0),
        LaunchSpec::at_percent_load(Service::Moses, 30.0),
    ];
    let template = trained_suite(SuiteConfig::Standard);

    println!("== Fig. 19: crash recovery — warm restart vs cold restart ==\n");
    let baseline = run_crash_recovery(
        &template,
        &specs,
        total,
        19,
        checkpoint_every,
        RestartPlan::NeverKilled,
    );
    assert!(baseline.all_placed, "reference arm must place every service");
    assert!(baseline.layout_always_valid, "reference arm broke layout invariants");
    println!(
        "never killed: compliance {:.3}, final QoS fraction {:.2}, {} actions\n",
        baseline.qos_compliance_over_time, baseline.qos_fraction, baseline.actions
    );

    println!(
        "{:>5}  {:>6}  {:>10}  {:>8}  {:>11}  {:>9}  {:>8}  {:>8}  {:>6}",
        "kill",
        "arm",
        "compliance",
        "finalQoS",
        "reconverge",
        "restored",
        "adopted",
        "replayed",
        "layout"
    );
    let mut points: Vec<KillPoint> = Vec::new();
    for &kill in kills {
        let warm = run_crash_recovery(
            &template,
            &specs,
            total,
            19,
            checkpoint_every,
            RestartPlan::KillThenWarm(kill),
        );
        let cold = run_crash_recovery(
            &template,
            &specs,
            total,
            19,
            checkpoint_every,
            RestartPlan::KillThenCold(kill),
        );
        for (arm, out) in [("warm", &warm), ("cold", &cold)] {
            let rec = out.recovery.as_ref().expect("killed arm has a recovery report");
            println!(
                "{:>5}  {:>6}  {:>10.3}  {:>8.2}  {:>11}  {:>9}  {:>8}  {:>8}  {:>6}",
                kill,
                arm,
                out.qos_compliance_over_time,
                out.qos_fraction,
                out.reconverge_ticks.map(|t| t.to_string()).unwrap_or_else(|| "-".into()),
                rec.restored,
                rec.adopted,
                rec.journal_replayed,
                if out.layout_always_valid { "ok" } else { "BROKEN" },
            );
            assert!(
                out.layout_always_valid,
                "kill {kill} ({arm}): layout invariants broke across the restart"
            );
        }
        assert!(
            warm.qos_fraction >= cold.qos_fraction,
            "kill {kill}: warm recovery ended below cold restart \
             ({} vs {})",
            warm.qos_fraction,
            cold.qos_fraction
        );
        let warm_rec = warm.recovery.as_ref().unwrap();
        if kill >= checkpoint_every {
            assert!(
                matches!(warm_rec.mode, RecoveryMode::Warm),
                "kill {kill}: a checkpoint existed but recovery went cold: {:?}",
                warm_rec.mode
            );
            assert!(warm_rec.restored > 0, "warm restart must restore snapshot records");
        }
        let cold_rec = cold.recovery.as_ref().unwrap();
        assert!(
            matches!(cold_rec.mode, RecoveryMode::Cold { .. }),
            "cold arm must take the cold path"
        );
        points.push(KillPoint { kill_tick: kill, warm, cold });
    }

    println!("\nExpected shape: warm restarts resume the snapshotted state (restored = 3,");
    println!("journal suffix replayed) and match or beat cold adoption at every kill tick;");
    println!("early kills (before the first checkpoint) degrade gracefully to cold adoption.");
    let fig = Fig19 { total_ticks: total, checkpoint_every, baseline, points };
    let path = report::save_json("fig19_crash_recovery", &fig);
    println!("saved {}", path.display());
}

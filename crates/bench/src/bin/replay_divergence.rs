//! Fig. 21 (this reproduction's extension): golden-thread replay. One
//! unified event log per run — world facts, controller decisions,
//! operational telemetry — folded back into scheduler state and diffed
//! across controller configurations.
//!
//! Built-in asserts:
//! * replay == live: the recorded log folds to the live scheduler's state
//!   bit-for-bit at every sweep level, including the chaos arm;
//! * stripping the telemetry layer never changes the fold;
//! * the JSONL encoding round-trips losslessly;
//! * A/B on recorded worlds (the Fig. 20 anchor, deep overload, and a
//!   chaos run): the event-driven engine decides identically to the scan
//!   engine — zero divergence, fault streams aligned call-for-call — while
//!   the `placement_via_models` ablation diverges — and the harness prints
//!   exactly where;
//! * the world-fact layer alone reconstructs a script that reproduces the
//!   decision stream under the same config, including piecewise-constant
//!   step schedules for load-varying workloads.
//!
//! `--smoke` runs a two-level sweep (CI).

use osml_bench::overload::{overload_script, varying_load_script};
use osml_bench::replay::{ab_compare, run_recorded, world_script_from_log, RecordedRun};
use osml_bench::report;
use osml_bench::suite::{trained_suite, SuiteConfig};
use osml_core::{first_divergence, Divergence, OsmlConfig, OverloadConfig, UnifiedLog};
use osml_platform::{FaultPlan, FaultProfile};
use osml_workloads::loadgen::LoadSchedule;
use serde::Serialize;

#[derive(Serialize)]
struct Fig21Level {
    level: f64,
    world_events: usize,
    decision_events: usize,
    telemetry_events: usize,
    jsonl_bytes: usize,
    replay_matches_live: bool,
    faults_injected: usize,
}

#[derive(Serialize)]
struct Fig21Ab {
    label: String,
    decisions_a: usize,
    decisions_b: usize,
    divergence: Option<Divergence>,
}

#[derive(Serialize)]
struct Fig21Report {
    smoke: bool,
    levels: Vec<Fig21Level>,
    chaos: Fig21Level,
    ab: Vec<Fig21Ab>,
    reconstruction_divergence: Option<Divergence>,
}

/// Replay == live plus the two log invariants, with first-mismatch
/// diagnostics on failure. Returns the per-run stats row.
fn check_run(label: &str, level: f64, run: &RecordedRun) -> Fig21Level {
    let replayed = run.log.replay().unwrap_or_else(|e| {
        panic!("{label}: log is not replay-sufficient: {e:?}");
    });
    assert_eq!(
        replayed, run.live,
        "{label}: replayed state diverged from live state\n\
         replayed: {replayed:?}\nlive: {:?}",
        run.live
    );
    let stripped = run.log.stripped().replay().expect("stripped log replays");
    assert_eq!(stripped, replayed, "{label}: telemetry strip changed the fold");
    let text = run.log.to_jsonl();
    let (decoded, loss) = UnifiedLog::from_jsonl_tolerant(&text).expect("own encoding parses back");
    assert_eq!(loss.bytes_dropped, 0, "{label}: clean encoding reported tail loss");
    assert_eq!(&decoded, &run.log, "{label}: JSONL round-trip lost events");
    let (world, decisions, telemetry) = run.log.layer_counts();
    Fig21Level {
        level,
        world_events: world,
        decision_events: decisions,
        telemetry_events: telemetry,
        jsonl_bytes: text.len(),
        replay_matches_live: true,
        faults_injected: run.faults_injected,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let levels: &[f64] = if smoke { &[0.6, 1.6] } else { &[0.4, 0.8, 1.2, 1.6, 2.0] };
    let seed = 21;
    let template = trained_suite(SuiteConfig::Standard);

    println!("== Fig. 21: golden-thread replay — record, fold, diff ==\n");
    println!(
        "{:>6}  {:>7}  {:>9}  {:>9}  {:>9}  {:>8}",
        "level", "world", "decision", "telem", "bytes", "replay"
    );
    let mut rows: Vec<Fig21Level> = Vec::new();
    for &level in levels {
        let script = overload_script(level);
        let run = run_recorded(
            &template,
            &script,
            seed,
            OverloadConfig::enabled(),
            FaultPlan::none(),
            false,
            OsmlConfig::default(),
        );
        let row = check_run("sweep", level, &run);
        println!(
            "{:>6.1}  {:>7}  {:>9}  {:>9}  {:>9}  {:>8}",
            level,
            row.world_events,
            row.decision_events,
            row.telemetry_events,
            row.jsonl_bytes,
            "ok"
        );
        rows.push(row);
    }

    // Chaos arm: injected faults land in the world-fact layer and the log
    // still folds to the live state.
    let chaos_level = *levels.last().expect("at least one level");
    let chaos_run = run_recorded(
        &template,
        &overload_script(chaos_level),
        seed,
        OverloadConfig::enabled(),
        FaultPlan::new(0xFA_21, FaultProfile::chaos_default()),
        false,
        OsmlConfig::default(),
    );
    assert!(chaos_run.faults_injected > 0, "the chaos plan injected nothing");
    let chaos = check_run("chaos", chaos_level, &chaos_run);
    println!(
        "\nchaos arm: {} faults recorded as world facts, replay still bit-identical",
        chaos.faults_injected
    );

    // A/B: recorded worlds, two controller configs, decision streams
    // diffed at their first divergence.
    let ab_script = overload_script(chaos_level);
    let mut ab_rows: Vec<Fig21Ab> = Vec::new();

    // Engines must agree on every recorded world the default flip leans on
    // (the equivalence suite pins this property-wise; here the same fact
    // falls out of the decision streams): the Fig. 20 anchor at the
    // co-location frontier, the deep-overload sweep extreme, and a chaos
    // run where the fault stream must line up call-for-call.
    let engine_worlds: &[(&str, f64, FaultPlan)] = &[
        ("fig20 anchor", 1.0, FaultPlan::none()),
        ("overload", chaos_level, FaultPlan::none()),
        ("chaos", chaos_level, FaultPlan::new(0xFA_21, FaultProfile::chaos_default())),
    ];
    println!();
    for (world, level, plan) in engine_worlds {
        let (a, b, engines) = ab_compare(
            &template,
            &overload_script(*level),
            seed,
            OverloadConfig::enabled(),
            plan.clone(),
            OsmlConfig { event_driven: false, ..OsmlConfig::default() },
            OsmlConfig { event_driven: true, ..OsmlConfig::default() },
        );
        if let Some(d) = &engines {
            println!("UNEXPECTED engine divergence ({world}):\n{d}");
        }
        assert!(engines.is_none(), "scan and event-driven engines diverged on the {world} world");
        println!(
            "A/B scan vs event-driven ({world}): zero divergence over {} decisions",
            a.log.decisions().count()
        );
        ab_rows.push(Fig21Ab {
            label: format!("event_driven: off vs on ({world})"),
            decisions_a: a.log.decisions().count(),
            decisions_b: b.log.decisions().count(),
            divergence: engines,
        });
    }

    // The placement ablation must diverge — and the harness names the first
    // decision where the two controllers part ways.
    let (a, b, ablation) = ab_compare(
        &template,
        &ab_script,
        seed,
        OverloadConfig::enabled(),
        FaultPlan::none(),
        OsmlConfig::default(),
        OsmlConfig { placement_via_models: false, ..OsmlConfig::default() },
    );
    let d = ablation.clone().expect("the placement ablation must change some decision");
    println!("A/B models vs bootstrap-only placement:\n{d}");
    ab_rows.push(Fig21Ab {
        label: "placement_via_models: on vs off".into(),
        decisions_a: a.log.decisions().count(),
        decisions_b: b.log.decisions().count(),
        divergence: ablation,
    });

    // World reconstruction: the world-fact layer alone rebuilds a script
    // that reproduces the decision stream under the same config — on a
    // world whose offered load actually moves (ramps, steps, a diurnal
    // swing), so the rebuilt script must carry piecewise-constant
    // step schedules, not just launch-time rates.
    let recon_script = varying_load_script();
    let first = run_recorded(
        &template,
        &recon_script,
        seed,
        OverloadConfig::enabled(),
        FaultPlan::none(),
        false,
        OsmlConfig::default(),
    );
    let rebuilt = world_script_from_log(&first.log).expect("varying-load world reconstructs");
    assert!(
        rebuilt.events.iter().any(|e| matches!(e.load, LoadSchedule::Steps { .. })),
        "reconstruction must carry step schedules for the varying workloads"
    );
    let second = run_recorded(
        &template,
        &rebuilt,
        seed,
        OverloadConfig::enabled(),
        FaultPlan::none(),
        false,
        OsmlConfig::default(),
    );
    let reconstruction = first_divergence(&first.log, &second.log);
    if let Some(d) = &reconstruction {
        println!("\nUNEXPECTED reconstruction divergence:\n{d}");
    }
    assert!(reconstruction.is_none(), "reconstructed world changed the decision stream");
    println!(
        "world reconstruction: recorded facts alone reproduce the decision stream \
         (varying-load world, step schedules rebuilt)"
    );

    let report_data =
        Fig21Report { smoke, levels: rows, chaos, ab: ab_rows, reconstruction_divergence: None };
    let path = report::save_json("fig21_replay", &report_data);
    println!("saved {}", path.display());
}

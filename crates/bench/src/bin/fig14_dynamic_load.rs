//! Fig. 14: the dynamic-load timeline — Moses arrives at 50 %, Img-dnn and
//! Xapian at 40 %, MongoDB joins at t=80 s, Login at t=160 s, the unseen
//! Txt-index at t=190 s, and Xapian's load steps up at t=224 s. OSML should
//! re-stabilize quickly after each disturbance; PARTIES lags and may have to
//! migrate services away.

use osml_baselines::Parties;
use osml_bench::report;
use osml_bench::suite::{trained_suite, SuiteConfig};
use osml_bench::timeline::{run_timeline, TimelineRecord, TimelineSummary};
use osml_workloads::loadgen::ArrivalScript;

fn print_trace(name: &str, records: &[TimelineRecord]) {
    println!("--- {name} ---");
    println!("time  actions  service=latency/target (cores,ways)");
    for r in records.iter().step_by(20) {
        let svc: Vec<String> = r
            .services
            .iter()
            .map(|s| format!("{}={:.1}x({},{})", s.service, s.latency_over_target, s.cores, s.ways))
            .collect();
        let migrated = if r.migrated.is_empty() {
            String::new()
        } else {
            format!(
                "  [migrated: {}]",
                r.migrated.iter().map(|s| s.to_string()).collect::<Vec<_>>().join(",")
            )
        };
        println!("{:>4.0}  {:>7}  {}{}", r.time_s, r.actions, svc.join("  "), migrated);
    }
    println!();
}

fn main() {
    let script = ArrivalScript::fig14();
    println!("== Fig. 14: dynamic load timeline ==\n");

    let mut parties = Parties::new();
    let parties_records = run_timeline(&mut parties, &script, 0x14);
    print_trace("parties", &parties_records);

    let mut osml = trained_suite(SuiteConfig::Standard);
    let osml_records = run_timeline(&mut osml, &script, 0x14);
    print_trace("osml", &osml_records);

    let summaries = vec![
        TimelineSummary::from_records("parties", &parties_records),
        TimelineSummary::from_records("osml", &osml_records),
    ];
    for s in &summaries {
        println!("{s:?}");
    }
    println!("\nExpected shape (paper): OSML re-stabilizes within a few actions after each");
    println!("arrival/load change and handles the unseen txt-index; PARTIES churns through");
    println!("many more actions and keeps Moses in violation until it is migrated.");
    report::save_json("fig14_dynamic_load_parties", &parties_records);
    report::save_json("fig14_dynamic_load_osml", &osml_records);
    let path = report::save_json("fig14_summaries", &summaries);
    println!("saved {}", path.display());
}

//! §IV / §VI-D(1): model accuracy — how close Model-A's OAA/RCliff
//! predictions land to ground truth on held-out loads, and Model-B′'s
//! slowdown pricing error.

use osml_bench::report;
use osml_dataset::{train_model_a, train_model_b_prime, FeatureProbe, TrainingConfig};
use osml_platform::Topology;
use osml_workloads::oaa::LatencyGrid;
use osml_workloads::Service;
use serde::Serialize;

#[derive(Serialize)]
struct AccuracyRow {
    service: String,
    held_out_rps: f64,
    truth_oaa: (usize, usize),
    predicted_oaa: (usize, usize),
    cores_error: i64,
    ways_error: i64,
}

fn main() {
    println!("== Model accuracy on held-out loads ==\n");
    let cfg = TrainingConfig::default();
    let (model_a, report_a) = train_model_a(&cfg);
    println!(
        "model-a training: {} epochs, final val metrics {:?}",
        report_a.epoch_losses.len(),
        report_a.validation_metrics
    );
    let (model_bp, report_bp) = train_model_b_prime(&cfg);
    println!("model-b' training: final val metrics {:?}\n", report_bp.validation_metrics);

    let topo = Topology::xeon_e5_2697_v4();
    // Held-out loads: Table-1 indices 1 and 3 were never in the default
    // sweep (which uses 0, 2, 4 plus fractions).
    let mut rows = Vec::new();
    for service in Service::table1() {
        for &idx in &[1usize, 3] {
            let Some(&rps) = service.params().table1_rps.get(idx) else { continue };
            let threads = service.params().default_threads;
            let grid = LatencyGrid::sweep(&topo, *service, threads, rps);
            let Some(truth) = grid.oaa() else { continue };
            let mut probe = FeatureProbe::new(*service, threads, rps, 0.0, 0xACC);
            let sample = probe.sample_at(12, 10);
            let pred = model_a.predict(&sample);
            rows.push(AccuracyRow {
                service: service.name().to_owned(),
                held_out_rps: rps,
                truth_oaa: (truth.cores, truth.ways),
                predicted_oaa: (pred.oaa.cores, pred.oaa.ways),
                cores_error: pred.oaa.cores as i64 - truth.cores as i64,
                ways_error: pred.oaa.ways as i64 - truth.ways as i64,
            });
        }
    }
    println!(
        "{}",
        report::render_table(
            &["service", "rps", "truth OAA", "predicted OAA", "Δcores", "Δways"],
            &rows
                .iter()
                .map(|r| vec![
                    r.service.clone(),
                    format!("{:.0}", r.held_out_rps),
                    format!("{:?}", r.truth_oaa),
                    format!("{:?}", r.predicted_oaa),
                    r.cores_error.to_string(),
                    r.ways_error.to_string(),
                ])
                .collect::<Vec<_>>()
        )
    );
    let n = rows.len() as f64;
    let mae_c = rows.iter().map(|r| r.cores_error.abs() as f64).sum::<f64>() / n;
    let mae_w = rows.iter().map(|r| r.ways_error.abs() as f64).sum::<f64>() / n;
    let within2 =
        rows.iter().filter(|r| r.cores_error.abs() <= 2 && r.ways_error.abs() <= 2).count() as f64
            / n;
    println!(
        "OAA MAE: {mae_c:.2} cores, {mae_w:.2} ways; within +/-2 of truth: {:.0}%",
        within2 * 100.0
    );

    // Model-B' spot check: pricing a known deprivation for Moses.
    let grid = LatencyGrid::sweep(&topo, Service::Moses, 16, 2400.0);
    if let Some(oaa) = grid.oaa() {
        let mut probe = FeatureProbe::new(Service::Moses, 16, 2400.0, 0.0, 0xACD);
        let sample = probe.sample_at(oaa.cores, oaa.ways);
        for (dc, dw) in [(1usize, 0usize), (2, 1), (4, 2)] {
            let truth_p = osml_workloads::oaa::AllocPoint::new(
                oaa.cores.saturating_sub(dc).max(1),
                oaa.ways.saturating_sub(dw).max(1),
            );
            let truth = (grid.p95(truth_p) / grid.p95(oaa) - 1.0).clamp(0.0, 2.0);
            let pred = model_bp.predict(&sample, dc, dw);
            println!(
                "model-b' moses deprive ({dc},{dw}): predicted slowdown {pred:.3}, ground truth {truth:.3}"
            );
        }
    }
    let path = report::save_json("model_accuracy", &rows);
    println!("saved {}", path.display());
}

//! Fig. 1: sensitivity to resource allocation — p95 latency over the
//! (cores, ways) plane with the RCliff frontier and OAA marked, for the six
//! services the paper showcases.

use osml_bench::report;
use osml_platform::Topology;
use osml_workloads::oaa::{AllocPoint, LatencyGrid};
use osml_workloads::Service;
use serde::Serialize;

#[derive(Serialize)]
struct Panel {
    service: String,
    offered_rps: f64,
    threads: usize,
    rcliff: Option<AllocPoint>,
    oaa: Option<AllocPoint>,
    cliff_magnitude: f64,
    /// p95 (ms) for cores 1..=36 x ways 1..=20, row-major by cores.
    p95_ms: Vec<f64>,
}

fn render_panel(grid: &LatencyGrid) {
    let qos = grid.service.params().qos_ms;
    let frontier = grid.rcliff_frontier();
    println!(
        "--- {} @ {:.0} RPS (QoS {} ms) — rcliff {:?}, OAA {:?}, cliff magnitude {:.0}x ---",
        grid.service,
        grid.offered_rps,
        qos,
        grid.rcliff(),
        grid.oaa(),
        grid.cliff_magnitude()
    );
    // Compact glyph heatmap: rows = cores (descending, subsampled), cols =
    // ways. '#': > 100x QoS (deep cliff), 'x': violating, '.': within QoS,
    // 'O': the OAA cell, '|': the cliff frontier cell of that row.
    let oaa = grid.oaa();
    print!("cores\\ways ");
    for w in 1..=grid.max_ways {
        print!("{}", if w % 5 == 0 { (w / 5).to_string() } else { " ".into() });
    }
    println!("  (way tens-digit ruler)");
    for cores in (1..=grid.max_cores).rev().step_by(2) {
        print!("{cores:>10} ");
        for ways in 1..=grid.max_ways {
            let p = AllocPoint::new(cores, ways);
            let v = grid.p95(p);
            let is_oaa = oaa == Some(p);
            let is_frontier = frontier[cores - 1] == Some(ways);
            let c = if is_oaa {
                'O'
            } else if is_frontier {
                '|'
            } else if v > 100.0 * qos {
                '#'
            } else if v > qos {
                'x'
            } else {
                '.'
            };
            print!("{c}");
        }
        println!();
    }
    println!();
}

fn main() {
    let topo = Topology::xeon_e5_2697_v4();
    // The services and loads of Fig. 1's panels (moderate Table-1 loads).
    let cases = [
        (Service::Moses, 2200.0),
        (Service::ImgDnn, 4000.0),
        (Service::Xapian, 4400.0),
        (Service::Sphinx, 8.0),
        (Service::Masstree, 3400.0),
        (Service::MongoDb, 5000.0),
    ];
    let mut panels = Vec::new();
    println!("== Fig. 1: RCliff heatmaps ('#' = >100x QoS, 'x' = violating, '.' = ok, '|' = cliff frontier, 'O' = OAA) ==\n");
    for (service, rps) in cases {
        let grid = LatencyGrid::sweep(&topo, service, service.params().default_threads, rps);
        render_panel(&grid);
        panels.push(Panel {
            service: service.name().to_owned(),
            offered_rps: rps,
            threads: service.params().default_threads,
            rcliff: grid.rcliff(),
            oaa: grid.oaa(),
            cliff_magnitude: grid.cliff_magnitude(),
            p95_ms: grid.p95_ms.clone(),
        });
    }
    // The paper's headline example: Moses at 6 cores loses one way.
    let moses = LatencyGrid::sweep(&topo, Service::Moses, 16, 2200.0);
    if let Some(cliff) = moses.rcliff() {
        let on = moses.p95(cliff);
        let off = moses.p95(AllocPoint::new(cliff.cores, cliff.ways.saturating_sub(1).max(1)));
        println!(
            "Moses at its cliff <{} cores, {} ways>: {:.0} ms -> {:.0} ms when one way is deprived (paper: 34 -> 4644 ms)",
            cliff.cores, cliff.ways, on, off
        );
    }
    let path = report::save_json("fig1_rcliff_heatmap", &panels);
    println!("saved {}", path.display());
}

//! Human-readable tables and machine-readable JSON output for the figure
//! binaries.

use crate::grid::ColocationGrid;
use serde::Serialize;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Renders a co-location heatmap the way the paper's Figs. 10–12 panels
/// read: rows are the y service's load, columns the x service's load, cells
/// the probe service's max supported load ("." = infeasible).
pub fn render_grid(grid: &ColocationGrid) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "[{}] max load of {} (%) vs x={} / y={}{}",
        grid.policy,
        grid.probe,
        grid.x_service,
        grid.y_service,
        if grid.background.is_empty() {
            String::new()
        } else {
            format!(
                " (background: {})",
                grid.background
                    .iter()
                    .map(|(s, p)| format!("{s}@{p:.0}%"))
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        }
    );
    let _ = write!(out, "{:>6} |", format!("y\\x"));
    for &x in &grid.steps {
        let _ = write!(out, "{x:>5}");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "{}", "-".repeat(8 + 5 * grid.steps.len()));
    for (yi, &y) in grid.steps.iter().enumerate() {
        let _ = write!(out, "{y:>6} |");
        for cell in &grid.cells[yi] {
            if *cell == 0 {
                let _ = write!(out, "{:>5}", ".");
            } else {
                let _ = write!(out, "{cell:>5}");
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// The directory figure outputs land in: `$OSML_RESULTS_DIR` when set,
/// otherwise `<workspace root>/results`. Resolving against the workspace
/// root (two levels above this crate's manifest) instead of the current
/// working directory means `cargo run -p osml-bench` writes the same place
/// no matter where it is invoked from.
pub fn results_dir() -> PathBuf {
    results_dir_from(std::env::var_os("OSML_RESULTS_DIR"))
}

/// [`results_dir`] with the environment override injected (testable without
/// mutating the process environment).
fn results_dir_from(env_override: Option<std::ffi::OsString>) -> PathBuf {
    if let Some(dir) = env_override {
        return PathBuf::from(dir);
    }
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate lives two levels under the workspace root")
        .join("results")
}

/// Writes `value` as pretty JSON to `<results_dir()>/<name>.json` (creating
/// the directory), returning the path. The write is crash-atomic (temp file
/// plus rename via [`osml_ml::store::write_atomic`]): a kill mid-write
/// leaves the previous result intact rather than a torn JSON. Panics on
/// I/O errors, since figure binaries have nothing useful to do without
/// their output.
pub fn save_json<T: Serialize>(name: &str, value: &T) -> PathBuf {
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results directory");
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize result");
    osml_ml::store::write_atomic(&path, &json).expect("write result file");
    path
}

/// Renders a simple aligned table from rows of strings. Rows may be wider
/// than the header row; the extra columns get empty headers instead of
/// being dropped or panicking.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let columns = rows.iter().map(Vec::len).chain([headers.len()]).max().unwrap_or(0);
    let mut widths = vec![0usize; columns];
    for (i, h) in headers.iter().enumerate() {
        widths[i] = h.len();
    }
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (i, &w) in widths.iter().enumerate() {
        let _ = write!(out, "{:<w$}  ", headers.get(i).copied().unwrap_or(""), w = w);
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            let _ = write!(out, "{:<w$}  ", cell, w = widths[i]);
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use osml_workloads::Service;

    #[test]
    fn grid_rendering_marks_infeasible_cells() {
        let grid = ColocationGrid {
            policy: "osml".into(),
            x_service: Service::ImgDnn,
            y_service: Service::Xapian,
            probe: Service::Moses,
            background: vec![],
            steps: vec![10, 50],
            cells: vec![vec![50, 10], vec![10, 0]],
        };
        let text = render_grid(&grid);
        assert!(text.contains("osml"));
        assert!(text.contains('.'), "infeasible cell must render as a dot:\n{text}");
        assert!(text.contains("50"));
    }

    #[test]
    fn table_aligns_columns() {
        let text = render_table(
            &["service", "rps"],
            &[vec!["moses".into(), "3000".into()], vec!["memcached".into(), "1280000".into()]],
        );
        assert!(text.lines().count() >= 4);
        assert!(text.contains("memcached"));
    }

    #[test]
    fn table_keeps_cells_beyond_the_header_count() {
        let text = render_table(
            &["service"],
            &[vec!["moses".into(), "3000".into(), "extra-wide-cell".into()]],
        );
        assert!(text.contains("3000"), "cell beyond headers must render:\n{text}");
        assert!(text.contains("extra-wide-cell"), "all extra cells must render:\n{text}");
    }

    #[test]
    fn results_dir_honours_env_override_and_defaults_to_workspace() {
        // Default: anchored at the workspace root, not the CWD.
        let default_dir = results_dir();
        assert!(default_dir.is_absolute(), "must not depend on the CWD: {default_dir:?}");
        assert!(default_dir.ends_with("results"));
        assert!(default_dir.parent().unwrap().join("Cargo.toml").exists());
        // The env override redirects wholesale (injected rather than via
        // set_var, which is unsound with parallel tests).
        let overridden = results_dir_from(Some("/tmp/osml-results-override".into()));
        assert_eq!(overridden, PathBuf::from("/tmp/osml-results-override"));
    }
}

//! Human-readable tables and machine-readable JSON output for the figure
//! binaries.

use crate::grid::ColocationGrid;
use serde::Serialize;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Renders a co-location heatmap the way the paper's Figs. 10–12 panels
/// read: rows are the y service's load, columns the x service's load, cells
/// the probe service's max supported load ("." = infeasible).
pub fn render_grid(grid: &ColocationGrid) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "[{}] max load of {} (%) vs x={} / y={}{}",
        grid.policy,
        grid.probe,
        grid.x_service,
        grid.y_service,
        if grid.background.is_empty() {
            String::new()
        } else {
            format!(
                " (background: {})",
                grid.background
                    .iter()
                    .map(|(s, p)| format!("{s}@{p:.0}%"))
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        }
    );
    let _ = write!(out, "{:>6} |", format!("y\\x"));
    for &x in &grid.steps {
        let _ = write!(out, "{x:>5}");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "{}", "-".repeat(8 + 5 * grid.steps.len()));
    for (yi, &y) in grid.steps.iter().enumerate() {
        let _ = write!(out, "{y:>6} |");
        for cell in &grid.cells[yi] {
            if *cell == 0 {
                let _ = write!(out, "{:>5}", ".");
            } else {
                let _ = write!(out, "{cell:>5}");
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Writes `value` as pretty JSON to `results/<name>.json` (creating the
/// directory), returning the path. Panics on I/O errors — figure binaries
/// have nothing useful to do without their output.
pub fn save_json<T: Serialize>(name: &str, value: &T) -> PathBuf {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir).expect("create results directory");
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize result");
    std::fs::write(&path, json).expect("write result file");
    path
}

/// Renders a simple aligned table from rows of strings.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    for (i, h) in headers.iter().enumerate() {
        let _ = write!(out, "{:<w$}  ", h, w = widths[i]);
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            let _ = write!(out, "{:<w$}  ", cell, w = widths[i]);
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use osml_workloads::Service;

    #[test]
    fn grid_rendering_marks_infeasible_cells() {
        let grid = ColocationGrid {
            policy: "osml".into(),
            x_service: Service::ImgDnn,
            y_service: Service::Xapian,
            probe: Service::Moses,
            background: vec![],
            steps: vec![10, 50],
            cells: vec![vec![50, 10], vec![10, 0]],
        };
        let text = render_grid(&grid);
        assert!(text.contains("osml"));
        assert!(text.contains('.'), "infeasible cell must render as a dot:\n{text}");
        assert!(text.contains("50"));
    }

    #[test]
    fn table_aligns_columns() {
        let text = render_table(
            &["service", "rps"],
            &[vec!["moses".into(), "3000".into()], vec!["memcached".into(), "1280000".into()]],
        );
        assert!(text.lines().count() >= 4);
        assert!(text.contains("memcached"));
    }
}

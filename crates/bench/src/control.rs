//! Control-plane fault experiments (Fig. 23): a fleet of OSML nodes
//! behind a lossy, partitionable command channel, swept over message-loss
//! rate and partition duration, comparing the full partition-tolerant
//! protocol (sequence dedup, epoch fencing, heal reconciliation) against
//! a no-fencing ablation and the perfect-channel reference.
//!
//! The accounting is the same demand-based compliance as Fig. 22: every
//! submitted service demands one service-second per elapsed second, and
//! supplies a compliant one only while running within QoS. A protocol
//! that loses services to false suspicions — or bloats nodes with ghost
//! replicas — pays for it in compliance. Two invariants are asserted at
//! every cell: the conservation ledger is exact (no submitted id ever
//! loses its typed disposition), and the golden-thread log folds through
//! `replay()` without error, transport faults and all.

use osml_core::{
    Cluster, ClusterConfig, ClusterPlacement, OsmlConfig, OsmlScheduler, ServiceDisposition,
};
use osml_platform::{ChannelPlan, PartitionWindow};
use osml_workloads::LaunchSpec;
use serde::{Deserialize, Serialize};

/// Which control-plane protocol tier a run exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ControlArm {
    /// Reliable management network: the pre-protocol reference. Ignores
    /// the loss and partition axes (there is nothing to inject).
    Perfect,
    /// Lossy channel with the protocol ablated: no sequence dedup, no
    /// epoch fencing, no heal reconciliation — at-least-once retries only.
    LossyNoFencing,
    /// Lossy channel under the full partition-tolerant protocol.
    LossyFull,
}

impl ControlArm {
    /// All arms, in ablation order.
    pub const ALL: [ControlArm; 3] =
        [ControlArm::Perfect, ControlArm::LossyNoFencing, ControlArm::LossyFull];

    /// Short label for tables and JSON.
    pub fn label(self) -> &'static str {
        match self {
            ControlArm::Perfect => "perfect",
            ControlArm::LossyNoFencing => "lossy-no-fencing",
            ControlArm::LossyFull => "lossy-full",
        }
    }

    fn config(self, channel: ChannelPlan) -> ClusterConfig {
        // A failure detector provisioned for a noisy management network:
        // suspicion takes 8 s of continuous silence rather than the
        // default 3 — at 20 % per-message loss a 3 s timeout cries wolf
        // every few minutes, which measures detector tuning, not the
        // protocol. All arms share the tuning so the sweep isolates
        // dedup/fencing/reconciliation.
        let base = ClusterConfig { heartbeat_timeout_s: 8.0, ..ClusterConfig::failover_enabled() };
        match self {
            ControlArm::Perfect => base,
            ControlArm::LossyNoFencing => ClusterConfig { channel, fencing: false, ..base },
            ControlArm::LossyFull => ClusterConfig { channel, ..base },
        }
    }
}

/// One `(arm, loss rate, partition duration)` cell of the Fig. 23 sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ControlRunOutcome {
    /// Which protocol tier ran.
    pub arm: ControlArm,
    /// Per-message loss rate of the channel plan (drop probability;
    /// duplicates at half, delays at the same rate).
    pub loss_rate: f64,
    /// Seconds the mid-run partition isolates node 0 (0 = no partition).
    pub partition_s: f64,
    /// Fleet size.
    pub nodes: usize,
    /// Services submitted.
    pub services: usize,
    /// Simulated seconds.
    pub duration_s: f64,
    /// Compliant service-seconds over demanded service-seconds.
    pub qos_compliance: f64,
    /// Services that ended the run evicted.
    pub evicted: usize,
    /// Services rejected at submission.
    pub rejected: usize,
    /// Submitted ids with no disposition — must always be zero.
    pub lost_silently: usize,
    /// Node-death/suspicion failovers committed.
    pub failovers: usize,
    /// QoS-violation migrations committed.
    pub migrations: usize,
    /// Suspicion transitions raised by heartbeat timeout.
    pub suspicions: usize,
    /// Suspicions against nodes that were in fact alive.
    pub false_suspicions: usize,
    /// Services re-adopted from a reconnecting node instead of fenced.
    pub readopted: usize,
    /// Stale replicas destroyed by epoch fencing.
    pub fenced_ghosts: usize,
    /// Unaccounted live replicas at end of run (0 under the full
    /// protocol once links heal; the ablation accumulates them).
    pub ghost_replicas_end: usize,
    /// Messages sent across both channel directions.
    pub messages_sent: u64,
    /// Messages randomly dropped (partition drops excluded).
    pub messages_dropped: u64,
    /// Messages duplicated in flight.
    pub messages_duplicated: u64,
    /// Messages swallowed by scripted partition windows.
    pub messages_partitioned: u64,
    /// Simulated backoff charged to command-level retries, ms.
    pub command_backoff_ms: f64,
    /// Whether the unified log folded without error after the run.
    pub replay_ok: bool,
}

/// Runs one cell of the control-plane sweep: `specs` services on `nodes`
/// nodes for `duration_s` seconds, with per-message loss at `loss_rate`
/// and node 0 partitioned for `partition_s` seconds starting mid-run.
///
/// # Panics
///
/// Panics if a submitted id ends the run without a disposition or the
/// unified log fails to fold — protocol bugs, not workload effects.
#[allow(clippy::too_many_arguments)]
pub fn run_control_plane(
    template: &OsmlScheduler,
    nodes: usize,
    specs: &[LaunchSpec],
    duration_s: f64,
    loss_rate: f64,
    partition_s: f64,
    seed: u64,
    arm: ControlArm,
) -> ControlRunOutcome {
    let mut channel = if loss_rate > 0.0 {
        ChannelPlan::lossy(seed ^ 0x23, loss_rate)
    } else {
        ChannelPlan::none()
    };
    if partition_s > 0.0 {
        // One mid-run window on node 0: long enough (vs the default 3 s
        // heartbeat timeout) to force a suspicion, then a heal.
        let start = duration_s * 0.3;
        channel.partitions.push(PartitionWindow {
            node: 0,
            start_s: start,
            end_s: start + partition_s,
        });
    }
    let cfg = arm.config(channel);
    let mut cluster = Cluster::try_new(nodes, template.clone(), OsmlConfig::default(), cfg, seed)
        .expect("fig23 configs are valid by construction");

    for spec in specs {
        match cluster.submit(*spec) {
            ClusterPlacement::Placed(_) => {}
            // Rejected ids still demand service-seconds; tracked via ledger.
            ClusterPlacement::ClusterFull => {}
        }
    }

    let mut demanded = 0.0f64;
    let mut compliant = 0.0f64;
    let steps = duration_s.max(0.0).round() as usize;
    for _ in 0..steps {
        cluster.run(1.0);
        for (id, disposition) in cluster.dispositions() {
            demanded += 1.0;
            if disposition == ServiceDisposition::Running
                && cluster.latency_over_target(id).is_some_and(|ratio| ratio <= 1.0)
            {
                compliant += 1.0;
            }
        }
    }

    let dispositions = cluster.dispositions();
    let lost_silently = cluster.submitted() as usize - dispositions.len();
    assert_eq!(lost_silently, 0, "every submitted id must keep a typed disposition");
    let evicted = dispositions.iter().filter(|(_, d)| *d == ServiceDisposition::Evicted).count();
    let rejected = dispositions.iter().filter(|(_, d)| *d == ServiceDisposition::Rejected).count();
    let replay_ok = cluster.unified_log().replay().is_ok();
    assert!(replay_ok, "the cluster's golden log must fold, transport faults and all");
    let (cmd, rep) = cluster.channel_stats();

    ControlRunOutcome {
        arm,
        loss_rate,
        partition_s,
        nodes,
        services: specs.len(),
        duration_s,
        qos_compliance: if demanded > 0.0 { compliant / demanded } else { 1.0 },
        evicted,
        rejected,
        lost_silently,
        failovers: cluster.failovers(),
        migrations: cluster.migrations(),
        suspicions: cluster.suspicions(),
        false_suspicions: cluster.false_suspicions(),
        readopted: cluster.readopted(),
        fenced_ghosts: cluster.fenced_ghosts(),
        ghost_replicas_end: cluster.ghost_replicas(),
        messages_sent: cmd.sent + rep.sent,
        messages_dropped: cmd.dropped + rep.dropped,
        messages_duplicated: cmd.duplicated + rep.duplicated,
        messages_partitioned: cmd.partitioned + rep.partitioned,
        command_backoff_ms: cluster.command_backoff_ms(),
        replay_ok,
    }
}

//! Overload harness (Fig. 20, this reproduction's extension): drive offered
//! load past the machine's co-location capacity and measure what typed
//! admission, the deterministic arrival queue and brownout buy over binary
//! rejection.
//!
//! Every run goes through a [`FaultySubstrate`] so overload and fault
//! injection compose: with [`FaultPlan::none`] the wrapper is bit-inert
//! (pinned by the chaos tests), and a chaos plan can be layered on top of
//! any overload level.
//!
//! The harness owns process lifecycle, the scheduler owns the queue: a
//! [`Placement::Deferred`] arrival is withdrawn from the substrate and its
//! ticket parked; every tick the harness drains [`OsmlScheduler::take_shed`]
//! and retries [`OsmlScheduler::poll_admission`] tickets by relaunching the
//! service and calling [`Scheduler::on_arrival_classed`].

use osml_core::{EventKind, OsmlConfig, OsmlScheduler, OverloadConfig, RecoveryStore};
use osml_platform::{
    Allocation, AppId, FaultPlan, FaultySubstrate, Placement, Scheduler, SloClass, Substrate,
};
use osml_workloads::loadgen::{ArrivalEvent, ArrivalScript, LoadSchedule};
use osml_workloads::{LaunchSpec, Service, SimConfig, SimServer};
use serde::{Deserialize, Serialize};

use crate::chaos::layout_invariants_ok;

/// The SLO class an overload experiment submits each service under.
///
/// Latency-critical: the user-facing services the paper's QoS targets are
/// strictest about. Degradable: stateful backends that tolerate brownout
/// pricing. Best-effort: batch-flavoured work, sheddable under pressure.
pub fn slo_class_of(service: Service) -> SloClass {
    match service {
        Service::ImgDnn
        | Service::Masstree
        | Service::Memcached
        | Service::Moses
        | Service::Nginx
        | Service::Sphinx
        | Service::Xapian => SloClass::LatencyCritical,
        Service::MongoDb | Service::Specjbb | Service::Login => SloClass::Degradable,
        Service::Ads | Service::TxtIndex => SloClass::BestEffort,
    }
}

/// The Fig. 20 arrival script at one offered-load `level`: three
/// latency-critical anchors hold the machine, then a surge of eight more
/// services (mixed classes) arrives with loads scaled by `level` and
/// departs in waves late in the run, so a queued arrival has real capacity
/// to wait for. `level` ≈ 1.0 sits at the co-location frontier; beyond it
/// the aggregate demand exceeds the machine.
pub fn overload_script(level: f64) -> ArrivalScript {
    let pct = |s: Service, p: f64| -> f64 { s.params().nominal_max_rps() * p / 100.0 };
    let ev = |service: Service, arrive: f64, depart: f64, p: f64| ArrivalEvent {
        service,
        arrive_s: arrive,
        depart_s: depart,
        threads: service.params().default_threads,
        load: LoadSchedule::Constant { rps: pct(service, p) },
    };
    ArrivalScript::new(
        vec![
            // Anchors: arrive first, stay forever, fixed load.
            ev(Service::Moses, 0.0, f64::INFINITY, 30.0),
            ev(Service::ImgDnn, 2.0, f64::INFINITY, 25.0),
            ev(Service::Xapian, 4.0, f64::INFINITY, 25.0),
            // Surge: load scales with the sweep level, lifetimes end in
            // waves so departures free capacity for the queue.
            ev(Service::Ads, 20.0, 230.0, 15.0 * level),
            ev(Service::TxtIndex, 25.0, 220.0, 12.0 * level),
            ev(Service::MongoDb, 30.0, 170.0, 20.0 * level),
            ev(Service::Specjbb, 40.0, 200.0, 18.0 * level),
            ev(Service::Sphinx, 60.0, 150.0, 18.0 * level),
            ev(Service::Masstree, 70.0, 160.0, 18.0 * level),
            ev(Service::Memcached, 80.0, 180.0, 15.0 * level),
            ev(Service::Login, 90.0, 210.0, 12.0 * level),
        ],
        240.0,
    )
}

/// A compact load-varying scenario: ramping, stepping and diurnal services
/// over a 90 s window, with enough pressure for admission churn. Shared by
/// the replay round-trip test and the `replay_divergence` harness so both
/// exercise reconstruction of worlds whose offered load actually moves.
pub fn varying_load_script() -> ArrivalScript {
    let pct = |s: Service, p: f64| -> f64 { s.params().nominal_max_rps() * p / 100.0 };
    ArrivalScript::new(
        vec![
            ArrivalEvent {
                service: Service::Moses,
                arrive_s: 0.0,
                depart_s: f64::INFINITY,
                threads: Service::Moses.params().default_threads,
                load: LoadSchedule::Ramp {
                    start_s: 10.0,
                    end_s: 50.0,
                    from_rps: pct(Service::Moses, 15.0),
                    to_rps: pct(Service::Moses, 45.0),
                },
            },
            ArrivalEvent {
                service: Service::ImgDnn,
                arrive_s: 2.0,
                depart_s: f64::INFINITY,
                threads: Service::ImgDnn.params().default_threads,
                load: LoadSchedule::Steps {
                    steps: vec![
                        (0.0, pct(Service::ImgDnn, 20.0)),
                        (30.0, pct(Service::ImgDnn, 40.0)),
                        (60.0, pct(Service::ImgDnn, 10.0)),
                    ],
                },
            },
            ArrivalEvent {
                service: Service::Xapian,
                arrive_s: 5.0,
                depart_s: 80.0,
                threads: Service::Xapian.params().default_threads,
                load: LoadSchedule::Diurnal {
                    base_rps: pct(Service::Xapian, 25.0),
                    amplitude_rps: pct(Service::Xapian, 12.0),
                    period_s: 40.0,
                },
            },
            ArrivalEvent {
                service: Service::Ads,
                arrive_s: 20.0,
                depart_s: 70.0,
                threads: Service::Ads.params().default_threads,
                load: LoadSchedule::Constant { rps: pct(Service::Ads, 25.0) },
            },
        ],
        90.0,
    )
}

/// Where one scripted arrival ended up when the run finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArrivalFate {
    /// Still running (or departed on schedule) — it was admitted.
    Served,
    /// Rejected terminally and never admitted.
    Rejected,
    /// Waited in the queue past the max-wait horizon and was dropped.
    TimedOut,
    /// Still waiting (queued or shed) when the experiment ended.
    StillWaiting,
}

/// Per-arrival detail in the outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArrivalReport {
    /// The service.
    pub service: Service,
    /// The SLO class it was submitted under.
    pub class: SloClass,
    /// Seconds it actually ran (the admitted service-seconds it earned).
    pub admitted_s: f64,
    /// Seconds of its scripted lifetime (what it asked for).
    pub offered_s: f64,
    /// Times it was deferred into the queue.
    pub deferrals: usize,
    /// How the run ended for it.
    pub fate: ArrivalFate,
}

/// Outcome of one overload run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverloadOutcome {
    /// Whether the admission queue (and brownout) were enabled.
    pub overload_enabled: bool,
    /// Σ over ticks of scripted-active services (demand), service-seconds.
    pub offered_service_seconds: f64,
    /// Σ over ticks of actually-running services, service-seconds.
    pub admitted_service_seconds: f64,
    /// `admitted / offered` (the Fig. 20 y-axis).
    pub goodput_ratio: f64,
    /// Mean per-tick fraction of running services meeting QoS.
    pub qos_compliance_over_time: f64,
    /// Arrivals deferred into the queue (`QueueDeferred` events).
    pub deferrals: usize,
    /// Queued arrivals admitted on retry (`QueueAdmitted` events).
    pub queue_admissions: usize,
    /// Waiters dropped at the max-wait horizon (`QueueTimedOut` events).
    pub timeouts: usize,
    /// Terminal rejections (arrivals lost outright).
    pub terminal_rejections: usize,
    /// Brownout entries (`BrownoutEntered` events).
    pub brownout_entries: usize,
    /// Brownout exits (`BrownoutExited` events).
    pub brownout_exits: usize,
    /// Model-B′-priced shaves applied (`Deprived` events during brownout
    /// are a superset; this counts the shave ledger's applications).
    pub sheds: usize,
    /// Shed or shaved services restored (`Restored` events).
    pub restores: usize,
    /// Best-effort services shed that were **not** best-effort (must be 0;
    /// the shed policy never touches LC or degradable work).
    pub non_best_effort_sheds: usize,
    /// Deepest the queue ever got.
    pub peak_queue_depth: usize,
    /// Whether the layout invariants held at every tick.
    pub layout_always_valid: bool,
    /// Faults the substrate injected (0 under [`FaultPlan::none`]).
    pub faults_injected: usize,
    /// Whether the controller was killed and warm-restarted mid-brownout.
    pub restarted: bool,
    /// For the restart arm: whether the recovered controller resumed with
    /// the pre-kill queue depth, brownout flag and shave ledger.
    pub restart_resumed_state: Option<bool>,
    /// Total scheduling actions.
    pub actions: usize,
    /// Per-arrival detail, in script order.
    pub arrivals: Vec<ArrivalReport>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Slot {
    Pending,
    Live(AppId),
    Waiting(u64),
    Done(ArrivalFate),
}

/// Runs one overload timeline.
///
/// * `overload` configures the scheduler's admission queue and brownout
///   ([`OverloadConfig::default`] = binary rejection, the baseline arm).
/// * `plan` injects platform faults on top ([`FaultPlan::none`] for the
///   pure overload sweep); overload and chaos compose.
/// * `restart_mid_brownout` kills the controller two ticks after the first
///   brownout entry and warm-restarts it from a per-tick durable snapshot,
///   asserting the queue and brownout state survive the crash.
pub fn run_overload(
    template: &OsmlScheduler,
    script: &ArrivalScript,
    seed: u64,
    overload: OverloadConfig,
    plan: FaultPlan,
    restart_mid_brownout: bool,
) -> OverloadOutcome {
    run_overload_detailed(
        template,
        script,
        seed,
        overload,
        plan,
        restart_mid_brownout,
        OsmlConfig::default(),
    )
    .0
}

/// [`run_overload`] with a caller-supplied base config (e.g. to flip the
/// event-driven engine), also returning the controller's full event log and
/// the final live layout `(raw id, allocation)` sorted by id — the raw
/// material for engine-equivalence assertions.
#[allow(clippy::type_complexity)]
pub fn run_overload_detailed(
    template: &OsmlScheduler,
    script: &ArrivalScript,
    seed: u64,
    overload: OverloadConfig,
    plan: FaultPlan,
    restart_mid_brownout: bool,
    base: OsmlConfig,
) -> (OverloadOutcome, osml_core::EventLog, Vec<(u64, Allocation)>) {
    // Both arms get strict overlap hygiene — the layout invariant is
    // asserted every tick, and sharing the fix keeps the comparison about
    // admission policy (queue + brownout vs binary rejection), not hygiene.
    let config = OsmlConfig { overload: overload.clone(), strict_layout: true, ..base };
    let inner = SimServer::new(SimConfig { noise_sigma: 0.0, seed, ..SimConfig::default() });
    let mut server = FaultySubstrate::new(inner, plan);
    let mut scheduler = template.clone().with_config(config.clone());

    let store = restart_mid_brownout.then(|| {
        let dir = std::env::temp_dir()
            .join(format!("osml-overload-restart-{}-{seed}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        RecoveryStore::open(&dir).expect("open recovery store")
    });

    let n = script.events.len();
    let mut slots: Vec<Slot> = vec![Slot::Pending; n];
    let mut admitted_s = vec![0.0f64; n];
    let mut deferral_counts = vec![0usize; n];
    let mut offered_service_seconds = 0.0;
    let mut admitted_service_seconds = 0.0;
    let mut compliance_sum = 0.0;
    let mut compliance_ticks = 0usize;
    let mut peak_queue_depth = 0usize;
    let mut non_best_effort_sheds = 0usize;
    let mut layout_always_valid = true;
    let mut first_brownout_tick: Option<u64> = None;
    let mut restarted = false;
    let mut restart_resumed_state: Option<bool> = None;
    let mut harness_tick: u64 = 0;

    let class_of = |idx: usize| slo_class_of(script.events[idx].service);
    let mut t = 0.0f64;
    let mut prev_t = 0.0f64;
    while t <= script.duration_s {
        // Crash mid-brownout: kill the controller between ticks, two ticks
        // after brownout entry, and warm-restart it from the last end-of-tick
        // snapshot. The pre-kill state is captured here — before this tick's
        // arrivals — so it corresponds exactly to what was last persisted.
        if let (Some(store), Some(entered)) = (store.as_ref(), first_brownout_tick) {
            if !restarted && harness_tick == entered + 2 {
                let pre = (
                    scheduler.queue_depth(),
                    scheduler.in_brownout(),
                    scheduler.overload_state().shaved.len(),
                    scheduler.overload_state().shed.len(),
                );
                drop(scheduler);
                let (recovered, _report) = OsmlScheduler::recover(
                    template.models().clone(),
                    config.clone(),
                    store,
                    &mut server,
                );
                scheduler = recovered;
                let post = (
                    scheduler.queue_depth(),
                    scheduler.in_brownout(),
                    scheduler.overload_state().shaved.len(),
                    scheduler.overload_state().shed.len(),
                );
                restart_resumed_state = Some(pre == post);
                restarted = true;
            }
        }
        // Scripted departures: running services leave; still-waiting
        // tickets are withdrawn (their departure time passed in the queue).
        for (idx, slot) in slots.iter_mut().enumerate() {
            if t < script.events[idx].depart_s {
                continue;
            }
            match *slot {
                Slot::Live(id) => {
                    let _ = server.remove(id);
                    scheduler.on_departure(id);
                    *slot = Slot::Done(ArrivalFate::Served);
                }
                Slot::Waiting(ticket) => {
                    scheduler.cancel_ticket(ticket);
                    *slot = Slot::Done(ArrivalFate::TimedOut);
                }
                _ => {}
            }
        }
        // Scripted arrivals.
        for idx in 0..n {
            let event = &script.events[idx];
            if slots[idx] != Slot::Pending || t < event.arrive_s || t >= event.depart_s {
                continue;
            }
            let spec = LaunchSpec {
                service: event.service,
                threads: event.threads,
                offered_rps: event.load.rps_at(t).max(1e-3),
            };
            let alloc = osml_core::bootstrap_allocation(&mut server, event.threads);
            let id = server.inner_mut().launch(spec, alloc).expect("bootstrap allocation is valid");
            match scheduler.on_arrival_classed(&mut server, id, class_of(idx)) {
                Placement::Placed => slots[idx] = Slot::Live(id),
                Placement::Deferred { ticket } => {
                    // The scheduler holds the seat; the harness withdraws
                    // the process until the ticket is polled back.
                    let _ = server.remove(id);
                    scheduler.on_departure(id);
                    deferral_counts[idx] += 1;
                    slots[idx] = Slot::Waiting(ticket);
                }
                Placement::Rejected(_) => {
                    let _ = server.remove(id);
                    scheduler.on_departure(id);
                    slots[idx] = Slot::Done(ArrivalFate::Rejected);
                }
            }
        }
        // Load updates for running services.
        for (slot, event) in slots.iter().zip(script.events.iter()) {
            if let Slot::Live(id) = *slot {
                let rps = event.load.rps_at(t).max(1e-3);
                let _ = server.inner_mut().set_load(id, rps);
            }
        }

        server.advance(1.0);
        t = server.now();
        harness_tick += 1;

        scheduler.tick(&mut server);

        // Drain controller-initiated sheds: withdraw the process (its
        // record is already gone — no on_departure) and park the ticket.
        for id in scheduler.take_shed() {
            let Some(idx) = slots.iter().position(|s| *s == Slot::Live(id)) else { continue };
            if class_of(idx) != SloClass::BestEffort {
                non_best_effort_sheds += 1;
            }
            let _ = server.remove(id);
            slots[idx] = Slot::Waiting(id.0);
        }
        // Admission retries: spend banked credits relaunching waiters.
        while let Some(ticket) = scheduler.poll_admission() {
            let Some(idx) = slots.iter().position(|s| *s == Slot::Waiting(ticket)) else {
                // The waiter belongs to no scripted event (e.g. its seat
                // outlived the harness's interest); drop it.
                scheduler.cancel_ticket(ticket);
                continue;
            };
            let event = &script.events[idx];
            let spec = LaunchSpec {
                service: event.service,
                threads: event.threads,
                offered_rps: event.load.rps_at(t).max(1e-3),
            };
            let alloc = osml_core::bootstrap_allocation(&mut server, event.threads);
            let id = server.inner_mut().launch(spec, alloc).expect("bootstrap allocation is valid");
            match scheduler.on_arrival_classed(&mut server, id, class_of(idx)) {
                Placement::Placed => slots[idx] = Slot::Live(id),
                Placement::Deferred { ticket: kept } => {
                    // Still no room: the retry keeps its original seat.
                    let _ = server.remove(id);
                    scheduler.on_departure(id);
                    slots[idx] = Slot::Waiting(kept);
                }
                Placement::Rejected(_) => {
                    let _ = server.remove(id);
                    scheduler.on_departure(id);
                    slots[idx] = Slot::Done(ArrivalFate::Rejected);
                }
            }
        }
        // Timeouts: a ticket the scheduler no longer tracks was expired.
        for slot in slots.iter_mut() {
            if let Slot::Waiting(ticket) = *slot {
                if !scheduler.is_waiting(ticket) {
                    *slot = Slot::Done(ArrivalFate::TimedOut);
                }
            }
        }

        if first_brownout_tick.is_none() && scheduler.in_brownout() {
            first_brownout_tick = Some(harness_tick);
        }
        peak_queue_depth = peak_queue_depth.max(scheduler.queue_depth());
        layout_always_valid &= layout_invariants_ok(&server);

        // Accounting: offered = scripted demand, admitted = actually
        // running, both integrated over simulated time. The controller's
        // profiling windows advance the clock unevenly (an arm that retries
        // arrivals profiles more), so service-seconds are weighted by the
        // real step width rather than counted per loop iteration.
        let dt = t - prev_t;
        prev_t = t;
        let active = script.active_at(t).count();
        offered_service_seconds += active as f64 * dt;
        let mut live = 0usize;
        let mut met = 0usize;
        for idx in 0..n {
            if let Slot::Live(id) = slots[idx] {
                live += 1;
                admitted_s[idx] += dt;
                if server.latency(id).map(|l| !l.violates_qos()).unwrap_or(false) {
                    met += 1;
                }
            }
        }
        admitted_service_seconds += live as f64 * dt;
        if live > 0 {
            compliance_sum += met as f64 / live as f64;
            compliance_ticks += 1;
        }

        if let Some(store) = store.as_ref() {
            store.save_snapshot(&scheduler.snapshot(&server)).expect("save snapshot");
        }
    }

    if let Some(store) = store.as_ref() {
        let _ = std::fs::remove_dir_all(store.dir());
    }

    let log = scheduler.log();
    let arrivals: Vec<ArrivalReport> = (0..n)
        .map(|idx| {
            let event = &script.events[idx];
            let fate = match slots[idx] {
                Slot::Done(f) => f,
                Slot::Live(_) => ArrivalFate::Served,
                Slot::Waiting(_) => ArrivalFate::StillWaiting,
                Slot::Pending => ArrivalFate::Rejected, // never became eligible
            };
            ArrivalReport {
                service: event.service,
                class: class_of(idx),
                admitted_s: admitted_s[idx],
                offered_s: (event.depart_s.min(script.duration_s) - event.arrive_s).max(0.0),
                deferrals: deferral_counts[idx],
                fate,
            }
        })
        .collect();
    let terminal_rejections = arrivals.iter().filter(|a| a.fate == ArrivalFate::Rejected).count();
    let mut layout: Vec<(u64, Allocation)> = server
        .apps()
        .into_iter()
        .filter_map(|id| server.allocation(id).map(|a| (id.0, a)))
        .collect();
    layout.sort_by_key(|&(id, _)| id);
    let outcome = OverloadOutcome {
        overload_enabled: overload.is_enabled(),
        offered_service_seconds,
        admitted_service_seconds,
        goodput_ratio: admitted_service_seconds / offered_service_seconds.max(1.0),
        qos_compliance_over_time: compliance_sum / compliance_ticks.max(1) as f64,
        deferrals: log.count_kind(|k| matches!(k, EventKind::QueueDeferred { .. })),
        queue_admissions: log.count_kind(|k| matches!(k, EventKind::QueueAdmitted { .. })),
        timeouts: log.count_kind(|k| matches!(k, EventKind::QueueTimedOut { .. })),
        terminal_rejections,
        brownout_entries: log.count_kind(|k| matches!(k, EventKind::BrownoutEntered { .. })),
        brownout_exits: log.count_kind(|k| matches!(k, EventKind::BrownoutExited { .. })),
        sheds: log.count_kind(|k| matches!(k, EventKind::Shed)),
        restores: log.count_kind(|k| matches!(k, EventKind::Restored { .. })),
        non_best_effort_sheds,
        peak_queue_depth,
        layout_always_valid,
        faults_injected: server.fault_count(),
        restarted,
        restart_resumed_state,
        actions: scheduler.action_count(),
        arrivals,
    };
    (outcome, log.clone(), layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{trained_suite, SuiteConfig};

    #[test]
    fn class_map_covers_every_service_and_all_classes() {
        use osml_workloads::ALL_SERVICES;
        let mut seen = [false; 3];
        for s in ALL_SERVICES {
            seen[slo_class_of(s).rank() as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "every SLO class must be represented");
    }

    #[test]
    fn overload_script_scales_with_level_and_stays_consistent() {
        let low = overload_script(0.5);
        let high = overload_script(1.5);
        assert_eq!(low.events.len(), high.events.len());
        for (l, h) in low.events.iter().zip(&high.events) {
            assert!(l.depart_s >= l.arrive_s);
            assert!(l.arrive_s <= low.duration_s);
            assert!(h.load.rps_at(100.0) >= l.load.rps_at(100.0));
        }
        // The anchors are level-independent.
        assert_eq!(low.events[0].load.rps_at(0.0), high.events[0].load.rps_at(0.0));
    }

    #[test]
    fn disabled_overload_run_is_binary_and_clean() {
        let template = trained_suite(SuiteConfig::Standard);
        let script = overload_script(0.4);
        let out = run_overload(
            &template,
            &script,
            20,
            OverloadConfig::default(),
            FaultPlan::none(),
            false,
        );
        assert!(!out.overload_enabled);
        assert_eq!(out.deferrals, 0, "disabled overload must never defer");
        assert_eq!(out.brownout_entries, 0);
        assert_eq!(out.sheds, 0);
        assert_eq!(out.peak_queue_depth, 0);
        assert_eq!(out.faults_injected, 0);
        assert!(out.layout_always_valid);
        assert!(out.admitted_service_seconds > 0.0);
    }
}

//! Cluster-level failover experiments (Fig. 22): a fleet of OSML nodes
//! under a seeded node-churn plan, swept over node-failure rate and fleet
//! size, comparing the full failover stack against ablated tiers.
//!
//! The accounting is demand-based: every submitted service contributes one
//! service-second of *demand* per elapsed second from submission onwards,
//! and one service-second of *compliance* only while it is running within
//! its QoS target. Evicted and rejected services keep demanding — a tier
//! that sheds services on node death pays for it in compliance, which is
//! exactly what makes the no-failover ablation comparable to (and never
//! better than) the failover stack.

use osml_core::{
    Cluster, ClusterConfig, ClusterPlacement, OsmlConfig, OsmlScheduler, PlacementPolicy,
    ServiceDisposition,
};
use osml_platform::NodeFaultPlan;
use osml_workloads::{LaunchSpec, Service};
use serde::{Deserialize, Serialize};

/// Which tier of the fault-tolerance stack a run exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailoverArm {
    /// Null-hypothesis tier: seeded random placement, no failover.
    RandomPlacement,
    /// Legacy tier: first-fit placement, node death evicts residents.
    NoFailover,
    /// Interference-aware placement only; still no failover on death.
    ScoreOnly,
    /// The full stack: scored placement plus failover of stranded services.
    OsmlFailover,
}

impl FailoverArm {
    /// All arms, in ablation order.
    pub const ALL: [FailoverArm; 4] = [
        FailoverArm::RandomPlacement,
        FailoverArm::NoFailover,
        FailoverArm::ScoreOnly,
        FailoverArm::OsmlFailover,
    ];

    /// Short label for tables and JSON.
    pub fn label(self) -> &'static str {
        match self {
            FailoverArm::RandomPlacement => "random-placement",
            FailoverArm::NoFailover => "no-failover",
            FailoverArm::ScoreOnly => "score-only",
            FailoverArm::OsmlFailover => "osml-failover",
        }
    }

    fn config(self, node_faults: NodeFaultPlan) -> ClusterConfig {
        match self {
            FailoverArm::RandomPlacement => ClusterConfig {
                failover: false,
                policy: PlacementPolicy::Random,
                node_faults,
                ..ClusterConfig::default()
            },
            FailoverArm::NoFailover => ClusterConfig {
                failover: false,
                policy: PlacementPolicy::FirstFit,
                node_faults,
                ..ClusterConfig::default()
            },
            FailoverArm::ScoreOnly => ClusterConfig {
                failover: false,
                policy: PlacementPolicy::InterferenceScore,
                node_faults,
                ..ClusterConfig::default()
            },
            FailoverArm::OsmlFailover => {
                ClusterConfig { node_faults, ..ClusterConfig::failover_enabled() }
            }
        }
    }
}

/// One `(arm, failure rate, fleet size)` cell of the Fig. 22 sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterRunOutcome {
    /// Which tier ran.
    pub arm: FailoverArm,
    /// Per-interval node-crash probability of the churn plan.
    pub failure_rate: f64,
    /// Fleet size.
    pub nodes: usize,
    /// Services submitted.
    pub services: usize,
    /// Simulated seconds.
    pub duration_s: f64,
    /// Compliant service-seconds over demanded service-seconds.
    pub qos_compliance: f64,
    /// Services that ended the run evicted (typed losses).
    pub evicted: usize,
    /// Services rejected at submission.
    pub rejected: usize,
    /// Submitted ids with no disposition — must always be zero.
    pub lost_silently: usize,
    /// Node-death failovers committed.
    pub failovers: usize,
    /// QoS-violation migrations committed.
    pub migrations: usize,
    /// Distinct node-down transitions observed.
    pub node_failures: usize,
    /// Whether the unified log folded without error after the run.
    pub replay_ok: bool,
}

/// The Fig. 10 service mix, cycled to `count` services at moderate load so
/// a survivor fleet has headroom to absorb failovers.
pub fn failover_workload(count: usize) -> Vec<LaunchSpec> {
    let mix = [
        (Service::Xapian, 25.0),
        (Service::ImgDnn, 25.0),
        (Service::Moses, 25.0),
        (Service::Masstree, 25.0),
    ];
    (0..count)
        .map(|i| {
            let (s, pct) = mix[i % mix.len()];
            LaunchSpec::at_percent_load(s, pct)
        })
        .collect()
}

/// Runs one cell of the failover sweep: `services` services on a fleet of
/// `nodes`, churned at `failure_rate` for `duration_s` seconds.
///
/// # Panics
///
/// Panics if a submitted id ends the run without a disposition (the no-loss
/// invariant) or if the unified log fails to fold — both indicate bugs, not
/// workload effects.
pub fn run_cluster_failover(
    template: &OsmlScheduler,
    nodes: usize,
    specs: &[LaunchSpec],
    duration_s: f64,
    failure_rate: f64,
    seed: u64,
    arm: FailoverArm,
) -> ClusterRunOutcome {
    let plan = if failure_rate > 0.0 {
        NodeFaultPlan::churn_at_rate(seed ^ 0x22, failure_rate)
    } else {
        NodeFaultPlan::none()
    };
    let cfg = arm.config(plan);
    let mut cluster = Cluster::try_new(nodes, template.clone(), OsmlConfig::default(), cfg, seed)
        .expect("fleet size is positive");

    let mut ids = Vec::new();
    for spec in specs {
        match cluster.submit(*spec) {
            ClusterPlacement::Placed(h) => ids.push(h.id),
            // Rejected ids still demand service-seconds; track via ledger.
            ClusterPlacement::ClusterFull => {}
        }
    }

    let mut demanded = 0.0f64;
    let mut compliant = 0.0f64;
    let mut node_failures = 0usize;
    let mut was_up = vec![true; nodes];
    let steps = duration_s.max(0.0).round() as usize;
    for _ in 0..steps {
        cluster.run(1.0);
        for (node, up) in was_up.iter_mut().enumerate() {
            let now_up = cluster.node_is_up(node);
            if *up && !now_up {
                node_failures += 1;
            }
            *up = now_up;
        }
        for (id, disposition) in cluster.dispositions() {
            demanded += 1.0;
            if disposition == ServiceDisposition::Running
                && cluster.latency_over_target(id).is_some_and(|ratio| ratio <= 1.0)
            {
                compliant += 1.0;
            }
        }
    }

    let dispositions = cluster.dispositions();
    let lost_silently = cluster.submitted() as usize - dispositions.len();
    assert_eq!(lost_silently, 0, "every submitted id must keep a typed disposition");
    let evicted = dispositions.iter().filter(|(_, d)| *d == ServiceDisposition::Evicted).count();
    let rejected = dispositions.iter().filter(|(_, d)| *d == ServiceDisposition::Rejected).count();
    let replay_ok = cluster.unified_log().replay().is_ok();
    assert!(replay_ok, "the cluster's golden log must fold after the run");

    ClusterRunOutcome {
        arm,
        failure_rate,
        nodes,
        services: specs.len(),
        duration_s,
        qos_compliance: if demanded > 0.0 { compliant / demanded } else { 1.0 },
        evicted,
        rejected,
        lost_silently,
        failovers: cluster.failovers(),
        migrations: cluster.migrations(),
        node_failures,
        replay_ok,
    }
}

//! Dynamic-load timelines (the paper's Figs. 4, 14 and 16): services arrive
//! and depart over time, loads step, and the scheduler reacts second by
//! second.

use crate::scenario::bootstrap_allocation;
use osml_platform::{AppId, Placement, Scheduler, Substrate};
use osml_telemetry::Telemetry;
use osml_workloads::loadgen::ArrivalScript;
use osml_workloads::{LaunchSpec, Service, SimConfig, SimServer};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One service's state at one timeline instant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServicePoint {
    /// The service.
    pub service: Service,
    /// p95 latency normalized to the QoS target (1.0 = at target).
    pub latency_over_target: f64,
    /// Raw p95 latency, ms.
    pub p95_ms: f64,
    /// Allocated cores.
    pub cores: usize,
    /// Allocated ways.
    pub ways: usize,
    /// Offered load, RPS.
    pub offered_rps: f64,
}

/// One instant of a timeline run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimelineRecord {
    /// Time, seconds.
    pub time_s: f64,
    /// Cumulative scheduler actions so far.
    pub actions: usize,
    /// Idle cores at this instant.
    pub idle_cores: usize,
    /// Unallocated ways at this instant.
    pub idle_ways: usize,
    /// Per-service state.
    pub services: Vec<ServicePoint>,
    /// Services migrated away so far (rejected placements).
    pub migrated: Vec<Service>,
}

/// Runs an arrival script under a scheduler, sampling once per second.
pub fn run_timeline<Sched: Scheduler>(
    scheduler: &mut Sched,
    script: &ArrivalScript,
    seed: u64,
) -> Vec<TimelineRecord> {
    run_timeline_traced(scheduler, script, seed, &Telemetry::disabled())
}

/// [`run_timeline`] with an observability pipeline attached: the harness
/// records per-tick wall-clock spans and live-service gauges alongside
/// whatever the scheduler itself emits. Telemetry is write-only, so the
/// produced [`TimelineRecord`]s are identical to an untraced run (enforced
/// by the `telemetry` integration tests).
pub fn run_timeline_traced<Sched: Scheduler>(
    scheduler: &mut Sched,
    script: &ArrivalScript,
    seed: u64,
    telemetry: &Telemetry,
) -> Vec<TimelineRecord> {
    // Real traces jitter; the default ~2 % log-normal noise keeps schedulers
    // honest (trial-and-error must distinguish real improvements from noise).
    let mut server = SimServer::new(SimConfig { seed, ..SimConfig::default() });
    let mut live: BTreeMap<usize, AppId> = BTreeMap::new(); // event idx -> app
    let mut migrated: Vec<Service> = Vec::new();
    let mut violating_since: BTreeMap<AppId, f64> = BTreeMap::new();
    let mut records = Vec::new();

    let mut t = 0.0f64;
    while t <= script.duration_s {
        // Departures.
        for (idx, event) in script.events.iter().enumerate() {
            if let Some(&id) = live.get(&idx) {
                if t >= event.depart_s {
                    let _ = server.remove(id);
                    scheduler.on_departure(id);
                    live.remove(&idx);
                }
            }
        }
        // Arrivals.
        for (idx, event) in script.events.iter().enumerate() {
            if !live.contains_key(&idx)
                && t >= event.arrive_s
                && t < event.depart_s
                && !migrated.contains(&event.service)
            {
                let spec = LaunchSpec {
                    service: event.service,
                    threads: event.threads,
                    offered_rps: event.load.rps_at(t).max(1e-3),
                };
                let alloc = bootstrap_allocation(&mut server, event.threads);
                let id = server.launch(spec, alloc).expect("bootstrap allocation is valid");
                match scheduler.on_arrival(&mut server, id) {
                    Placement::Placed => {
                        live.insert(idx, id);
                    }
                    Placement::Rejected(_) | Placement::Deferred { .. } => {
                        // This harness models the binary-rejection world:
                        // the overload queue gets its own harness
                        // (`crate::overload`), so a deferral here is
                        // treated as the migration the upper tier performs.
                        let _ = server.remove(id);
                        scheduler.on_departure(id);
                        migrated.push(event.service);
                    }
                }
            }
        }
        // Load updates.
        for (idx, event) in script.events.iter().enumerate() {
            if let Some(&id) = live.get(&idx) {
                let rps = event.load.rps_at(t).max(1e-3);
                let _ = server.set_load(id, rps);
            }
        }

        server.advance(1.0);
        t = server.now();
        {
            let _span = telemetry.span("harness.tick_us");
            scheduler.tick(&mut server);
        }
        telemetry.counter_add("harness.ticks", 1);

        // Upper-level scheduler policy: a service in continuous violation
        // for > 30 s is migrated to another node (the fate of Moses under
        // PARTIES in the paper's Fig. 14).
        let mut to_migrate: Vec<usize> = Vec::new();
        for (&idx, &id) in &live {
            let violating = server.latency(id).map(|l| l.violates_qos()).unwrap_or(false);
            if violating {
                let since = *violating_since.entry(id).or_insert(t);
                if t - since > 30.0 {
                    to_migrate.push(idx);
                }
            } else {
                violating_since.remove(&id);
            }
        }
        for idx in to_migrate {
            if let Some(id) = live.remove(&idx) {
                let _ = server.remove(id);
                scheduler.on_departure(id);
                migrated.push(script.events[idx].service);
                violating_since.remove(&id);
            }
        }

        let services = live
            .values()
            .filter_map(|&id| {
                let lat = server.latency(id)?;
                let alloc = server.allocation(id)?;
                let spec = server.spec_of(id)?;
                Some(ServicePoint {
                    service: spec.service,
                    latency_over_target: lat.p95_ms / lat.qos_target_ms,
                    p95_ms: lat.p95_ms,
                    cores: alloc.cores.count(),
                    ways: alloc.ways.count(),
                    offered_rps: spec.offered_rps,
                })
            })
            .collect();
        records.push(TimelineRecord {
            time_s: t,
            actions: scheduler.action_count(),
            idle_cores: server.idle_cores().count(),
            idle_ways: server.idle_way_count(),
            services,
            migrated: migrated.clone(),
        });
        if telemetry.is_enabled() {
            telemetry.gauge_set("harness.live_services", live.len() as f64);
            telemetry.gauge_set("harness.actions_total", scheduler.action_count() as f64);
            telemetry.gauge_set("harness.migrations", migrated.len() as f64);
        }
    }
    records
}

/// Summary statistics of a timeline: convergence time, peak violation,
/// total actions — the quantities Figs. 4/15/16 compare.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimelineSummary {
    /// Scheduler name.
    pub policy: String,
    /// Total scheduler actions over the run.
    pub total_actions: usize,
    /// Last time any service violated QoS (convergence point), s.
    pub last_violation_s: Option<f64>,
    /// Worst latency-over-target observed.
    pub peak_violation: f64,
    /// Fraction of (service, second) samples within QoS. Meaningless when
    /// [`TimelineSummary::samples`] is zero (reported as 0.0, not a
    /// vacuous 1.0).
    pub qos_fraction: f64,
    /// Services migrated away.
    pub migrations: usize,
    /// Number of (service, second) samples behind `qos_fraction`; zero
    /// means the timeline observed nothing, making the empty case explicit
    /// instead of masquerading as a perfect run.
    pub samples: usize,
}

impl TimelineSummary {
    /// Summarizes a timeline run.
    pub fn from_records(policy: &str, records: &[TimelineRecord]) -> TimelineSummary {
        let mut last_violation = None;
        let mut peak: f64 = 0.0;
        let mut ok = 0usize;
        let mut total = 0usize;
        for r in records {
            for s in &r.services {
                total += 1;
                if s.latency_over_target <= 1.0 {
                    ok += 1;
                } else {
                    last_violation = Some(r.time_s);
                }
                peak = peak.max(s.latency_over_target);
            }
        }
        // `actions` and `migrated` are cumulative per record, but taking
        // only `records.last()` undercounts if a caller ever summarizes a
        // truncated or filtered slice; the running maximum is correct for
        // any record subset.
        TimelineSummary {
            policy: policy.to_owned(),
            total_actions: records.iter().map(|r| r.actions).max().unwrap_or(0),
            last_violation_s: last_violation,
            peak_violation: peak,
            qos_fraction: if total > 0 { ok as f64 / total as f64 } else { 0.0 },
            migrations: records.iter().map(|r| r.migrated.len()).max().unwrap_or(0),
            samples: total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osml_baselines::Parties;
    use osml_workloads::loadgen::{ArrivalEvent, LoadSchedule};

    fn light_script() -> ArrivalScript {
        ArrivalScript::new(
            vec![
                ArrivalEvent {
                    service: Service::Login,
                    arrive_s: 0.0,
                    depart_s: f64::INFINITY,
                    threads: 8,
                    load: LoadSchedule::Constant { rps: 300.0 },
                },
                ArrivalEvent {
                    service: Service::Ads,
                    arrive_s: 5.0,
                    depart_s: 20.0,
                    threads: 8,
                    load: LoadSchedule::Constant { rps: 100.0 },
                },
            ],
            40.0,
        )
    }

    #[test]
    fn timeline_tracks_arrivals_and_departures() {
        let mut p = Parties::new();
        let records = run_timeline(&mut p, &light_script(), 5);
        assert!(!records.is_empty());
        let at = |t: f64| -> usize {
            records
                .iter()
                .min_by(|a, b| (a.time_s - t).abs().total_cmp(&(b.time_s - t).abs()))
                .map(|r| r.services.len())
                .unwrap()
        };
        assert_eq!(at(3.0), 1, "only login early");
        assert_eq!(at(15.0), 2, "ads joined");
        assert_eq!(at(30.0), 1, "ads departed");
    }

    #[test]
    fn summary_reflects_qos() {
        let mut p = Parties::new();
        let records = run_timeline(&mut p, &light_script(), 6);
        let summary = TimelineSummary::from_records("parties", &records);
        assert!(summary.qos_fraction > 0.8, "{summary:?}");
        assert!(summary.peak_violation >= 0.0);
        assert_eq!(summary.migrations, 0);
        assert!(summary.samples > 0);
    }

    #[test]
    fn empty_timeline_summarizes_explicitly() {
        let summary = TimelineSummary::from_records("none", &[]);
        assert_eq!(summary.samples, 0, "{summary:?}");
        assert_eq!(summary.qos_fraction, 0.0, "no samples must not read as a perfect run");
        assert_eq!(summary.total_actions, 0);
        assert_eq!(summary.migrations, 0);
        assert_eq!(summary.last_violation_s, None);
    }

    #[test]
    fn summary_totals_survive_record_truncation() {
        let mut p = Parties::new();
        let records = run_timeline(&mut p, &light_script(), 6);
        let full = TimelineSummary::from_records("parties", &records);
        // Drop the tail (e.g. summarizing a windowed slice): cumulative
        // totals must come from the maximum seen, not the last element.
        let head = &records[..records.len() - 5];
        let truncated = TimelineSummary::from_records("parties", head);
        assert_eq!(truncated.total_actions, head.iter().map(|r| r.actions).max().unwrap());
        assert!(truncated.total_actions <= full.total_actions);
        // And a reversed slice must not change the answer.
        let mut rev = records.clone();
        rev.reverse();
        assert_eq!(
            TimelineSummary::from_records("parties", &rev).total_actions,
            full.total_actions
        );
    }

    #[test]
    fn fig14_script_runs_to_completion() {
        let mut p = Parties::new();
        let records = run_timeline(&mut p, &ArrivalScript::fig14(), 7);
        assert!(records.last().unwrap().time_s >= 299.0);
        // By late in the run most services are live (some may have been
        // migrated by the policy).
        let late = records.last().unwrap();
        assert!(late.services.len() + late.migrated.len() >= 5);
    }
}

//! Chaos runner: replay a co-location through a [`FaultySubstrate`] and
//! judge how gracefully the controller degrades (Fig. 17).
//!
//! Where [`crate::run_colocation`] asks "does the policy meet QoS on a
//! perfect machine", this module asks the production question: with MSR
//! writes failing and counter windows dropping at a configured rate, does
//! the controller keep every service converging back to QoS — without
//! panicking and without ever leaving a half-applied layout?
//!
//! The second half of the module is the crash/restart harness (Fig. 19):
//! [`run_crash_recovery`] kills the controller outright at a chosen tick —
//! dropping everything it held in memory — and restarts it through
//! [`OsmlScheduler::recover`] from the durable snapshot + write-ahead
//! journal + Model-C checkpoint (or cold, with the store lost), measuring
//! what durable state buys back.

use osml_core::{EventKind, Models, OsmlConfig, OsmlScheduler, RecoveryReport, RecoveryStore};
use osml_ml::store::ModelStore;
use osml_models::ModelC;
use osml_platform::{AppId, FaultPlan, FaultySubstrate, Placement, Scheduler, Substrate};
use osml_telemetry::{JournalSink, Telemetry, TelemetrySink};
use osml_workloads::{LaunchSpec, SimConfig, SimServer};
use serde::{Deserialize, Serialize};

use crate::scenario::AppReport;

/// Outcome of one chaos co-location run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosOutcome {
    /// The fault plan's transient actuation failure probability (the x-axis
    /// of Fig. 17).
    pub actuation_failure_prob: f64,
    /// Whether every service was accepted at placement.
    pub all_placed: bool,
    /// Fraction of services meeting QoS at the end of the run.
    pub qos_fraction: f64,
    /// Whether every placed service converged back to QoS compliance.
    pub converged: bool,
    /// Mean over the settle phase of the per-tick fraction of services
    /// meeting QoS (the graceful-degradation signal: it should fall
    /// smoothly with the fault rate, not cliff).
    pub qos_compliance_over_time: f64,
    /// Whether the layout invariants (valid allocations, no core
    /// double-assignment) held at **every** tick of the run.
    pub layout_always_valid: bool,
    /// Faults the substrate injected.
    pub faults_injected: usize,
    /// Faults the controller observed (`FaultInjected` events).
    pub faults_observed: usize,
    /// Successful retry bursts (`ActuationRetried` events).
    pub retries: usize,
    /// Transactional rollbacks (`TransactionAborted` events).
    pub rollbacks: usize,
    /// Watchdog quarantines (`FallbackEngaged` events).
    pub fallbacks_engaged: usize,
    /// Fallback exits (`Recovered` events).
    pub recoveries: usize,
    /// Services still quarantined when the run ended.
    pub still_in_fallback: usize,
    /// Total scheduling actions taken.
    pub actions: usize,
    /// Per-service steady-state detail.
    pub apps: Vec<AppReport>,
}

/// Checks the layout invariants on the current machine state: every
/// allocation validates against the topology (contiguous non-empty way
/// masks, in-range cores) and no logical core is assigned to two services.
/// LLC ways *may* overlap — Algorithm 4 shares them deliberately.
pub fn layout_invariants_ok<S: Substrate>(server: &S) -> bool {
    let apps = server.apps();
    let allocs: Vec<_> =
        apps.iter().filter_map(|&id| server.allocation(id).map(|a| (id, a))).collect();
    for (_, a) in &allocs {
        if a.validate(server.topology()).is_err() {
            return false;
        }
    }
    for (i, (_, a)) in allocs.iter().enumerate() {
        for (_, b) in allocs.iter().skip(i + 1) {
            if a.cores.overlaps(b.cores) {
                return false;
            }
        }
    }
    true
}

/// Runs one co-location under a fault plan: services arrive in order, the
/// scheduler places each, then the machine runs for `settle_ticks` seconds
/// of 1 Hz monitoring with faults injected per `plan`. Layout invariants
/// are asserted every tick.
pub fn run_chaos_colocation(
    scheduler: &mut OsmlScheduler,
    specs: &[LaunchSpec],
    settle_ticks: usize,
    seed: u64,
    plan: FaultPlan,
) -> ChaosOutcome {
    let prob = plan.profile.actuation_failure_prob;
    let inner = SimServer::new(SimConfig { noise_sigma: 0.0, seed, ..SimConfig::default() });
    let mut server = FaultySubstrate::new(inner, plan);
    // Shares the scheduler's pipeline (cheap Arc clone; inert if disabled).
    let telemetry = scheduler.telemetry().clone();

    let mut ids: Vec<AppId> = Vec::new();
    let mut all_placed = true;
    let mut layout_always_valid = true;
    for &spec in specs {
        let alloc = osml_core::bootstrap_allocation(&mut server, spec.threads);
        let id = server.inner_mut().launch(spec, alloc).expect("bootstrap allocation is valid");
        server.advance(1.0);
        match scheduler.on_arrival(&mut server, id) {
            Placement::Placed => ids.push(id),
            Placement::Rejected(_) | Placement::Deferred { .. } => {
                let _ = server.remove(id);
                scheduler.on_departure(id);
                all_placed = false;
            }
        }
        layout_always_valid &= layout_invariants_ok(&server);
    }

    let mut compliance_sum = 0.0;
    for _ in 0..settle_ticks {
        server.advance(1.0);
        {
            let _span = telemetry.span("harness.chaos_tick_us");
            scheduler.tick(&mut server);
        }
        layout_always_valid &= layout_invariants_ok(&server);
        let met = ids
            .iter()
            .filter(|&&id| server.latency(id).map(|l| !l.violates_qos()).unwrap_or(false))
            .count();
        compliance_sum += met as f64 / ids.len().max(1) as f64;
    }
    server.advance(1.0);

    let apps: Vec<AppReport> = ids
        .iter()
        .filter_map(|&id| {
            let lat = server.latency(id)?;
            let alloc = server.allocation(id)?;
            let spec = server.inner().spec_of(id)?;
            Some(AppReport {
                service: spec.service,
                offered_rps: spec.offered_rps,
                p95_ms: lat.p95_ms,
                qos_ms: lat.qos_target_ms,
                qos_met: !lat.violates_qos(),
                cores: alloc.cores.count(),
                ways: alloc.ways.count(),
            })
        })
        .collect();
    let met = apps.iter().filter(|a| a.qos_met).count();
    if telemetry.is_enabled() {
        telemetry.gauge_set("harness.chaos_faults_injected", server.fault_count() as f64);
        telemetry.gauge_set("harness.chaos_qos_fraction", met as f64 / apps.len().max(1) as f64);
    }
    let log = scheduler.log();
    ChaosOutcome {
        actuation_failure_prob: prob,
        all_placed,
        qos_fraction: met as f64 / apps.len().max(1) as f64,
        converged: !apps.is_empty() && met == apps.len(),
        qos_compliance_over_time: compliance_sum / settle_ticks.max(1) as f64,
        layout_always_valid,
        faults_injected: server.fault_count(),
        faults_observed: log.count_kind(|k| matches!(k, EventKind::FaultInjected { .. })),
        retries: log.count_kind(|k| matches!(k, EventKind::ActuationRetried { .. })),
        rollbacks: log.count_kind(|k| matches!(k, EventKind::TransactionAborted { .. })),
        fallbacks_engaged: log.count_kind(|k| matches!(k, EventKind::FallbackEngaged { .. })),
        recoveries: log.count_kind(|k| matches!(k, EventKind::Recovered { .. })),
        still_in_fallback: ids.iter().filter(|&&id| scheduler.in_fallback(id)).count(),
        actions: scheduler.action_count(),
        apps,
    }
}

// ---------------------------------------------------------------------
// Crash/restart harness (Fig. 19)
// ---------------------------------------------------------------------

/// The name Model-C's durable agent checkpoint is stored under in the
/// run's [`ModelStore`].
pub const MODEL_C_AGENT: &str = "model-c";

/// What happens to the controller during a crash-recovery timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartPlan {
    /// The controller lives the whole run (the reference arm).
    NeverKilled,
    /// Kill the controller just before the given tick, then warm-restart
    /// it from the durable snapshot + journal + Model-C checkpoint via
    /// [`OsmlScheduler::recover`].
    KillThenWarm(usize),
    /// Kill the controller just before the given tick, then restart it
    /// with the durable store lost — `recover` against an empty store
    /// falls back to adopting every running service cold.
    KillThenCold(usize),
}

/// Outcome of one crash-recovery timeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecoveryOutcome {
    /// The tick the controller was killed before (`None` for the
    /// never-killed reference arm).
    pub kill_tick: Option<usize>,
    /// Whether the restart was warm (durable store intact) rather than
    /// cold (store lost). Meaningless when `kill_tick` is `None`.
    pub warm_restart: bool,
    /// Whether every service was accepted at placement.
    pub all_placed: bool,
    /// Fraction of services meeting QoS at the end of the run.
    pub qos_fraction: f64,
    /// Mean per-tick fraction of services meeting QoS over the whole run
    /// (a crash that hurts convergence shows up here).
    pub qos_compliance_over_time: f64,
    /// Whether the layout invariants held at **every** tick, including the
    /// first tick after the restart.
    pub layout_always_valid: bool,
    /// Ticks from the restart until every service met QoS again (`None`
    /// when the run never reconverged or was never killed).
    pub reconverge_ticks: Option<usize>,
    /// Total scheduling actions; the snapshot plus journal replay carry
    /// the count across the crash.
    pub actions: usize,
    /// What [`OsmlScheduler::recover`] reported at the restart.
    pub recovery: Option<RecoveryReport>,
    /// Per-service steady-state detail.
    pub apps: Vec<AppReport>,
}

/// A unique scratch directory for one run's durable state. Unique per
/// process *and* per call, so parallel tests never share a store.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "osml-crash-{}-{tag}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Runs one crash-recovery timeline: services arrive and settle under 1 Hz
/// monitoring exactly as in [`crate::run_colocation`], while the controller
/// continuously write-ahead journals its committed actions and checkpoints
/// a full [`osml_core::SchedulerSnapshot`] (plus Model-C's agent state)
/// every `checkpoint_every` ticks. Per `plan`, the controller is then killed
/// just before one tick — everything it held in memory is dropped — and
/// rebuilt through [`OsmlScheduler::recover`], either warm (durable store
/// intact) or cold (store lost).
///
/// The machine keeps running while the controller is being rebuilt: the
/// services, their allocations and any drift are exactly what `recover`'s
/// reconciliation has to adopt, repair or drop.
///
/// With `RestartPlan::NeverKilled` the recovery wiring is observationally
/// inert — snapshots are read-only and the journal is write-only — so the
/// timeline is bit-identical to an unwired [`crate::run_colocation`] run
/// (asserted by `tests/recovery.rs`).
pub fn run_crash_recovery(
    template: &OsmlScheduler,
    specs: &[LaunchSpec],
    total_ticks: usize,
    seed: u64,
    checkpoint_every: usize,
    plan: RestartPlan,
) -> RecoveryOutcome {
    assert!(checkpoint_every > 0, "checkpoint cadence must be positive");
    let (kill_tick, warm) = match plan {
        RestartPlan::NeverKilled => (None, false),
        RestartPlan::KillThenWarm(t) => (Some(t), true),
        RestartPlan::KillThenCold(t) => (Some(t), false),
    };

    let dir = scratch_dir("run");
    let store = RecoveryStore::open(&dir).expect("open recovery store");
    let model_store = ModelStore::open(dir.join("models")).expect("open model store");
    let journal = || -> Vec<Box<dyn TelemetrySink>> {
        vec![Box::new(JournalSink::append(store.journal_path()).expect("open journal"))]
    };

    let mut server = SimServer::new(SimConfig { noise_sigma: 0.0, seed, ..SimConfig::default() });
    let mut scheduler = template.clone().with_telemetry(Telemetry::with_sinks(journal()));

    let mut ids: Vec<AppId> = Vec::new();
    let mut all_placed = true;
    for &spec in specs {
        let alloc = osml_core::bootstrap_allocation(&mut server, spec.threads);
        let id = server.launch(spec, alloc).expect("bootstrap allocation is valid");
        server.advance(1.0);
        match scheduler.on_arrival(&mut server, id) {
            Placement::Placed => ids.push(id),
            Placement::Rejected(_) | Placement::Deferred { .. } => {
                let _ = server.remove(id);
                scheduler.on_departure(id);
                all_placed = false;
            }
        }
    }
    let mut layout_always_valid = layout_invariants_ok(&server);

    let mut compliance_sum = 0.0;
    let mut recovery: Option<RecoveryReport> = None;
    let mut reconverge_ticks: Option<usize> = None;
    for t in 0..total_ticks {
        if kill_tick == Some(t) {
            // Crash: the controller process dies here. Everything in memory
            // is gone; only the durable store survives — or, for the cold
            // arm, not even that.
            drop(scheduler);
            let mut models: Models = template.models().clone();
            if warm && model_store.contains_agent(MODEL_C_AGENT) {
                let ck = model_store.load_agent(MODEL_C_AGENT).expect("agent checkpoint loads");
                models.model_c = ModelC::restore(ck);
            }
            let restart_store = if warm {
                store.clone()
            } else {
                RecoveryStore::open(dir.join("cold-empty")).expect("open empty store")
            };
            let (restarted, report) =
                OsmlScheduler::recover(models, OsmlConfig::default(), &restart_store, &mut server);
            scheduler = restarted.with_telemetry(Telemetry::with_sinks(journal()));
            recovery = Some(report);
        }
        server.advance(1.0);
        scheduler.tick(&mut server);
        layout_always_valid &= layout_invariants_ok(&server);
        let met = ids
            .iter()
            .filter(|&&id| server.latency(id).map(|l| !l.violates_qos()).unwrap_or(false))
            .count();
        compliance_sum += met as f64 / ids.len().max(1) as f64;
        if let Some(kill) = kill_tick {
            if t >= kill && reconverge_ticks.is_none() && met == ids.len() {
                reconverge_ticks = Some(t - kill);
            }
        }
        if (t + 1) % checkpoint_every == 0 {
            store.save_snapshot(&scheduler.snapshot(&server)).expect("save snapshot");
            model_store
                .save_agent(MODEL_C_AGENT, &scheduler.models().model_c.checkpoint())
                .expect("save agent checkpoint");
        }
    }
    server.advance(1.0);

    let apps: Vec<AppReport> = ids
        .iter()
        .filter_map(|&id| {
            let lat = server.latency(id)?;
            let alloc = server.allocation(id)?;
            let spec = server.spec_of(id)?;
            Some(AppReport {
                service: spec.service,
                offered_rps: spec.offered_rps,
                p95_ms: lat.p95_ms,
                qos_ms: lat.qos_target_ms,
                qos_met: !lat.violates_qos(),
                cores: alloc.cores.count(),
                ways: alloc.ways.count(),
            })
        })
        .collect();
    let met = apps.iter().filter(|a| a.qos_met).count();
    let outcome = RecoveryOutcome {
        kill_tick,
        warm_restart: warm,
        all_placed,
        qos_fraction: met as f64 / apps.len().max(1) as f64,
        qos_compliance_over_time: compliance_sum / total_ticks.max(1) as f64,
        layout_always_valid,
        reconverge_ticks,
        actions: scheduler.action_count(),
        recovery,
        apps,
    };
    let _ = std::fs::remove_dir_all(&dir);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{trained_suite, SuiteConfig};
    use osml_platform::FaultProfile;
    use osml_workloads::Service;

    #[test]
    fn zero_fault_chaos_run_matches_plain_run() {
        let specs = [
            LaunchSpec::at_percent_load(Service::Moses, 30.0),
            LaunchSpec::at_percent_load(Service::ImgDnn, 30.0),
        ];
        let template = trained_suite(SuiteConfig::Standard);

        let mut plain = template.clone();
        let plain_out = crate::run_colocation(&mut plain, &specs, 30, 3);

        let mut chaotic = template.clone();
        let chaos_out = run_chaos_colocation(&mut chaotic, &specs, 30, 3, FaultPlan::none());

        assert_eq!(chaos_out.faults_injected, 0);
        assert_eq!(chaos_out.faults_observed, 0);
        assert_eq!(chaos_out.retries, 0);
        assert_eq!(chaos_out.rollbacks, 0);
        assert_eq!(chaos_out.fallbacks_engaged, 0);
        assert!(chaos_out.layout_always_valid);
        // Bit-identical control path: same decisions, same event log, same
        // final allocations.
        assert_eq!(plain.log(), chaotic.log());
        assert_eq!(chaos_out.actions, plain_out.actions);
        for (a, b) in plain_out.apps.iter().zip(&chaos_out.apps) {
            assert_eq!(a.cores, b.cores);
            assert_eq!(a.ways, b.ways);
            assert_eq!(a.p95_ms, b.p95_ms);
        }
    }

    #[test]
    fn default_chaos_profile_converges_without_invalid_layouts() {
        let specs = [
            LaunchSpec::at_percent_load(Service::Moses, 30.0),
            LaunchSpec::at_percent_load(Service::ImgDnn, 30.0),
        ];
        let mut osml = trained_suite(SuiteConfig::Standard);
        let out = run_chaos_colocation(
            &mut osml,
            &specs,
            60,
            3,
            FaultPlan::new(0xC4A05, FaultProfile::chaos_default()),
        );
        assert!(out.all_placed, "{out:?}");
        assert!(out.layout_always_valid, "a half-applied layout escaped");
        assert!(out.faults_injected > 0, "5%/2% over 60 ticks must inject something");
        assert!(out.converged, "services must converge back to QoS: {:?}", out.apps);
    }
}

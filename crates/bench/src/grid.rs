//! Co-location heatmap grids (the paper's Figs. 10–12) and the EMU metric
//! (Fig. 15).

use crate::scenario::run_colocation;
use osml_baselines::Oracle;
use osml_platform::Scheduler;
use osml_workloads::{LaunchSpec, Service};
use serde::{Deserialize, Serialize};

/// One policy's heatmap: for each `(x %, y %)` background combination, the
/// maximum load of the probe service (in %, stepped) that keeps *every*
/// co-located service within QoS. 0 means even the lowest step fails.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColocationGrid {
    /// Policy name.
    pub policy: String,
    /// Background service on the x axis.
    pub x_service: Service,
    /// Background service on the y axis.
    pub y_service: Service,
    /// Probe service whose max load fills the cells.
    pub probe: Service,
    /// Extra fixed background services (Figs. 11/12 add a fourth).
    pub background: Vec<(Service, f64)>,
    /// Load percentages along each axis.
    pub steps: Vec<usize>,
    /// `cells[y_idx][x_idx]` = max probe load %, 0 if infeasible.
    pub cells: Vec<Vec<usize>>,
}

impl ColocationGrid {
    /// Mean achievable aggregate load over all cells, in units of "one
    /// service's max load" — the EMU flavour of Fig. 15 (PARTIES' Effective
    /// Machine Utilization: the max aggregated load of all co-located
    /// services).
    pub fn mean_emu(&self) -> f64 {
        let mut total = 0.0;
        let mut n = 0usize;
        let bg: f64 = self.background.iter().map(|&(_, pct)| pct).sum();
        for (yi, row) in self.cells.iter().enumerate() {
            for (xi, &cell) in row.iter().enumerate() {
                if cell > 0 {
                    total += (self.steps[xi] + self.steps[yi] + cell) as f64 + bg;
                }
                n += 1;
            }
        }
        total / (100.0 * n as f64)
    }
}

/// Builds one policy's grid by running full scenarios. `make_scheduler` is
/// called per attempt so each cell starts from fresh scheduler state (models
/// are cloned, not retrained).
///
/// Cells are evaluated in parallel on [`osml_ml::par::jobs_from_env`]
/// worker threads. Every cell seeds its simulation from its own `(x, y,
/// probe)` coordinates, so the grid is bit-identical for any job count; see
/// [`colocation_grid_jobs`] for an explicit count.
#[allow(clippy::too_many_arguments)]
pub fn colocation_grid<Sched: Scheduler>(
    policy: &str,
    make_scheduler: impl Fn() -> Sched + Sync,
    x_service: Service,
    y_service: Service,
    probe: Service,
    background: &[(Service, f64)],
    steps: &[usize],
    settle_ticks: usize,
) -> ColocationGrid {
    colocation_grid_jobs(
        osml_ml::par::jobs_from_env(),
        policy,
        make_scheduler,
        x_service,
        y_service,
        probe,
        background,
        steps,
        settle_ticks,
    )
}

/// [`colocation_grid`] with an explicit worker count (`jobs = 1` runs the
/// cells sequentially on the calling thread).
#[allow(clippy::too_many_arguments)]
pub fn colocation_grid_jobs<Sched: Scheduler>(
    jobs: usize,
    policy: &str,
    make_scheduler: impl Fn() -> Sched + Sync,
    x_service: Service,
    y_service: Service,
    probe: Service,
    background: &[(Service, f64)],
    steps: &[usize],
    settle_ticks: usize,
) -> ColocationGrid {
    let coords: Vec<(usize, usize)> =
        steps.iter().flat_map(|&y| steps.iter().map(move |&x| (x, y))).collect();
    let flat = osml_ml::par::parallel_map_jobs(jobs, &coords, |&(x, y)| {
        max_probe_load(
            &make_scheduler,
            x_service,
            y_service,
            probe,
            background,
            x,
            y,
            steps,
            settle_ticks,
        )
    });
    let cells = flat.chunks(steps.len()).map(<[usize]>::to_vec).collect();
    ColocationGrid {
        policy: policy.to_owned(),
        x_service,
        y_service,
        probe,
        background: background.to_vec(),
        steps: steps.to_vec(),
        cells,
    }
}

#[allow(clippy::too_many_arguments)]
fn max_probe_load<Sched: Scheduler>(
    make_scheduler: &impl Fn() -> Sched,
    x_service: Service,
    y_service: Service,
    probe: Service,
    background: &[(Service, f64)],
    x_pct: usize,
    y_pct: usize,
    steps: &[usize],
    settle_ticks: usize,
) -> usize {
    for &probe_pct in steps.iter().rev() {
        let mut specs = vec![
            LaunchSpec::at_percent_load(x_service, x_pct as f64),
            LaunchSpec::at_percent_load(y_service, y_pct as f64),
        ];
        for &(svc, pct) in background {
            specs.push(LaunchSpec::at_percent_load(svc, pct));
        }
        specs.push(LaunchSpec::at_percent_load(probe, probe_pct as f64));
        let mut sched = make_scheduler();
        let seed = (x_pct * 131 + y_pct * 17 + probe_pct) as u64;
        if run_colocation(&mut sched, &specs, settle_ticks, seed).success() {
            return probe_pct;
        }
    }
    0
}

/// The Oracle's grid: feasibility by exhaustive static-partition search.
///
/// Cells are evaluated in parallel ([`osml_ml::par::jobs_from_env`]
/// workers); the Oracle is deterministic per query, so the grid is
/// bit-identical for any job count. See [`oracle_grid_jobs`] for an
/// explicit count.
pub fn oracle_grid(
    x_service: Service,
    y_service: Service,
    probe: Service,
    background: &[(Service, f64)],
    steps: &[usize],
) -> ColocationGrid {
    oracle_grid_jobs(osml_ml::par::jobs_from_env(), x_service, y_service, probe, background, steps)
}

/// [`oracle_grid`] with an explicit worker count (`jobs = 1` runs the cells
/// sequentially on the calling thread).
pub fn oracle_grid_jobs(
    jobs: usize,
    x_service: Service,
    y_service: Service,
    probe: Service,
    background: &[(Service, f64)],
    steps: &[usize],
) -> ColocationGrid {
    let oracle = Oracle::new();
    let coords: Vec<(usize, usize)> =
        steps.iter().flat_map(|&y| steps.iter().map(move |&x| (x, y))).collect();
    let flat = osml_ml::par::parallel_map_jobs(jobs, &coords, |&(x, y)| {
        // Feasibility is monotone in the probe load, so binary-search
        // the step list instead of scanning (the exhaustive search is
        // the expensive part of the Oracle panel).
        let feasible = |probe_pct: usize| -> bool {
            let mut specs = vec![
                LaunchSpec::at_percent_load(x_service, x as f64),
                LaunchSpec::at_percent_load(y_service, y as f64),
            ];
            for &(svc, pct) in background {
                specs.push(LaunchSpec::at_percent_load(svc, pct));
            }
            specs.push(LaunchSpec::at_percent_load(probe, probe_pct as f64));
            oracle.best_partition(&specs).is_some()
        };
        let mut lo = 0usize; // index of highest known-feasible step (+1)
        let mut hi = steps.len(); // index of lowest known-infeasible step
        while lo < hi {
            let mid = (lo + hi) / 2;
            if feasible(steps[mid]) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo == 0 {
            0
        } else {
            steps[lo - 1]
        }
    });
    let cells = flat.chunks(steps.len()).map(<[usize]>::to_vec).collect();
    ColocationGrid {
        policy: "oracle".to_owned(),
        x_service,
        y_service,
        probe,
        background: background.to_vec(),
        steps: steps.to_vec(),
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osml_baselines::Unmanaged;

    #[test]
    fn grid_shapes_match_steps() {
        let steps = [20usize, 60];
        let grid = colocation_grid(
            "unmanaged",
            Unmanaged::new,
            Service::ImgDnn,
            Service::Xapian,
            Service::Moses,
            &[],
            &steps,
            10,
        );
        assert_eq!(grid.cells.len(), 2);
        assert_eq!(grid.cells[0].len(), 2);
        for row in &grid.cells {
            for &c in row {
                assert!(c == 0 || steps.contains(&c));
            }
        }
    }

    #[test]
    fn oracle_cells_shrink_with_background_load() {
        let steps = [20usize, 80];
        let grid = oracle_grid(Service::ImgDnn, Service::Xapian, Service::Moses, &[], &steps);
        // Heavier background (row/col 80) cannot allow more probe load than
        // the light one.
        assert!(grid.cells[0][0] >= grid.cells[1][1]);
    }

    #[test]
    fn emu_counts_feasible_cells() {
        let grid = ColocationGrid {
            policy: "x".into(),
            x_service: Service::Moses,
            y_service: Service::Xapian,
            probe: Service::ImgDnn,
            background: vec![],
            steps: vec![50, 100],
            cells: vec![vec![50, 0], vec![0, 0]],
        };
        // Single feasible cell: 50 + 50 + 50 = 150% => EMU contribution 1.5,
        // averaged over 4 cells = 0.375.
        assert!((grid.mean_emu() - 0.375).abs() < 1e-9);
    }
}

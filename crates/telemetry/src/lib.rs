//! Observability for the OSML scheduler stack: metrics, span timing and a
//! structured decision trace.
//!
//! Production ML schedulers treat observability as a first-class subsystem —
//! the paper's entire evaluation (Figs. 4–17) rests on what can be observed
//! about the controller's decisions. This crate provides that plane without
//! perturbing the decisions themselves:
//!
//! * a **metrics registry** ([`MetricsRegistry`]) with counters, gauges and
//!   fixed-bucket latency histograms (p50/p95/p99 extraction), all
//!   deterministic and `Serialize`-able;
//! * **span timing** ([`Telemetry::span`]) for the hot paths — Model-A/B/C
//!   inference, DQN replay/training steps, actuation calls — recorded as
//!   microsecond histograms;
//! * a **structured decision trace**: every scheduler action (grant,
//!   deprive, Model-C delta, rollback, fallback engage/recover, fault
//!   retry) emitted as a [`TraceRecord`] through the [`TelemetrySink`]
//!   trait ([`RingBufferSink`] in memory, [`FileSink`] as JSONL on disk).
//!
//! The contract that makes this safe to wire everywhere: **telemetry is
//! write-only from the scheduler's perspective**. Nothing the scheduler
//! reads flows out of this crate, so an instrumented run takes exactly the
//! decisions an uninstrumented run takes (observer effect = 0, enforced by
//! property tests in `osml-bench`). With telemetry disabled — the default —
//! every call is a branch on a `None` and no clock is read.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod handle;
pub mod metrics;
pub mod trace;

pub use handle::{Span, Telemetry};
pub use metrics::{
    Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot, LATENCY_US_BOUNDS,
};
pub use trace::{
    ActionKind, AllocSnapshot, FileSink, JournalSink, Provenance, RingBufferSink, TelemetrySink,
    TraceOp, TraceRecord,
};

//! Counters, gauges and fixed-bucket histograms.
//!
//! No external metrics dependency: the registry is a few `BTreeMap`s, the
//! histogram a fixed bucket ladder. Everything is deterministic (iteration
//! order is the key order) and serializes with the workspace `serde`.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Default bucket upper bounds for microsecond-scale latencies: a 1-2-5
/// ladder from 1 µs to 10 s. Values above the last bound land in an
/// overflow bucket.
pub const LATENCY_US_BOUNDS: [f64; 22] = [
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1e3, 2e3, 5e3, 1e4, 2e4, 5e4, 1e5, 2e5,
    5e5, 1e6, 2e6, 5e6, 1e7,
];

/// A fixed-bucket histogram with exact count/sum/min/max side-channels.
///
/// Buckets are defined by ascending *upper bounds*; a recorded value lands
/// in the first bucket whose bound is ≥ the value, or in the overflow
/// bucket past the last bound. [`Histogram::percentile`] reports the upper
/// bound of the bucket containing the requested rank (the overflow bucket
/// reports the exact maximum), so percentiles are **exact whenever the
/// recorded values sit on bucket bounds** and otherwise err upward by at
/// most one bucket width — the usual fixed-bucket contract.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One count per bound, plus a trailing overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Creates a histogram over the given ascending upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The default microsecond-latency ladder ([`LATENCY_US_BOUNDS`]).
    pub fn latency_us() -> Self {
        Histogram::new(&LATENCY_US_BOUNDS)
    }

    /// Records one observation. Non-finite values are ignored (a poisoned
    /// timing must not poison the aggregate).
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded observations (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest recorded observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// The `q`-quantile (`q` in `(0, 1]`), as the upper bound of the bucket
    /// containing rank `⌈q·count⌉`; the overflow bucket reports the exact
    /// maximum. `None` when the histogram is empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `(0, 1]`.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1], got {q}");
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(if idx < self.bounds.len() {
                    // Never report a percentile above the observed maximum:
                    // a bucket's upper bound can exceed every value in it.
                    self.bounds[idx].min(self.max)
                } else {
                    self.max
                });
            }
        }
        Some(self.max)
    }

    /// A serializable snapshot with the standard percentiles extracted.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            mean: self.mean(),
            min: self.min(),
            max: self.max(),
            p50: self.percentile(0.50),
            p95: self.percentile(0.95),
            p99: self.percentile(0.99),
            buckets: self
                .bounds
                .iter()
                .copied()
                .zip(self.counts.iter().copied())
                .filter(|&(_, c)| c > 0)
                .collect(),
            overflow: *self.counts.last().expect("counts is never empty"),
        }
    }
}

/// Serialized view of one [`Histogram`]: summary statistics, the standard
/// percentiles, and the non-empty `(upper_bound, count)` buckets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Mean observation.
    pub mean: Option<f64>,
    /// Exact minimum.
    pub min: Option<f64>,
    /// Exact maximum.
    pub max: Option<f64>,
    /// Median (bucket upper bound).
    pub p50: Option<f64>,
    /// 95th percentile (bucket upper bound).
    pub p95: Option<f64>,
    /// 99th percentile (bucket upper bound).
    pub p99: Option<f64>,
    /// Non-empty buckets as `(upper_bound, count)`.
    pub buckets: Vec<(f64, u64)>,
    /// Observations above the last bound.
    pub overflow: u64,
}

/// The mutable metrics store: named counters, gauges and histograms.
///
/// Names are dot-separated namespaces (`model.a.predict_us`,
/// `scheduler.actions`); the registry itself imposes no schema.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the named counter (creating it at zero).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Reads a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the named gauge.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Reads a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Records one observation into the named histogram, creating it with
    /// the default microsecond-latency buckets if absent.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms.entry(name.to_owned()).or_insert_with(Histogram::latency_us).record(value);
    }

    /// Records into a histogram created with custom bounds on first use.
    pub fn observe_with_bounds(&mut self, name: &str, value: f64, bounds: &[f64]) {
        self.histograms
            .entry(name.to_owned())
            .or_insert_with(|| Histogram::new(bounds))
            .record(value);
    }

    /// Reads a histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// A serializable snapshot of everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self.histograms.iter().map(|(k, v)| (k.clone(), v.snapshot())).collect(),
        }
    }
}

/// Serialized view of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotone counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots with percentiles.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let mut r = MetricsRegistry::new();
        r.counter_add("a.b", 2);
        r.counter_add("a.b", 3);
        r.gauge_set("g", 1.5);
        r.gauge_set("g", 2.5);
        assert_eq!(r.counter("a.b"), 5);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.gauge("g"), Some(2.5));
    }

    #[test]
    fn histogram_percentiles_exact_on_bucket_bounds() {
        let mut h = Histogram::new(&[1.0, 2.0, 5.0, 10.0]);
        // 100 observations: 50×1, 40×2, 9×5, 1×10 — all on bounds.
        for _ in 0..50 {
            h.record(1.0);
        }
        for _ in 0..40 {
            h.record(2.0);
        }
        for _ in 0..9 {
            h.record(5.0);
        }
        h.record(10.0);
        assert_eq!(h.percentile(0.50), Some(1.0));
        assert_eq!(h.percentile(0.95), Some(5.0));
        assert_eq!(h.percentile(0.99), Some(5.0));
        assert_eq!(h.percentile(1.0), Some(10.0));
        assert_eq!(h.count(), 100);
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(10.0));
    }

    #[test]
    fn histogram_overflow_reports_exact_max() {
        let mut h = Histogram::new(&[1.0]);
        h.record(1e9);
        h.record(2e9);
        assert_eq!(h.percentile(1.0), Some(2e9));
        assert_eq!(h.snapshot().overflow, 2);
    }

    #[test]
    fn histogram_never_reports_above_observed_max() {
        let mut h = Histogram::new(&[100.0, 1000.0]);
        h.record(3.0);
        h.record(4.0);
        // Bucket bound is 100, but the real maximum is 4.
        assert_eq!(h.percentile(0.5), Some(4.0));
        assert_eq!(h.percentile(1.0), Some(4.0));
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = Histogram::latency_us();
        assert_eq!(h.percentile(0.99), None);
        assert_eq!(h.mean(), None);
        let snap = h.snapshot();
        assert_eq!(snap.count, 0);
        assert!(snap.buckets.is_empty());
    }

    #[test]
    fn non_finite_observations_are_ignored() {
        let mut h = Histogram::new(&[1.0]);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 0);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_bounds_panic() {
        let _ = Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn snapshot_serializes() {
        let mut r = MetricsRegistry::new();
        r.counter_add("c", 1);
        r.gauge_set("g", 0.5);
        r.observe("h", 3.0);
        let snap = r.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}

//! The structured decision trace: records, provenance, and sinks.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};

/// A `(cores, ways)` view of an allocation at trace time. Deliberately not
/// the platform `Allocation` type: the trace is a stable external schema,
/// not a borrow of internal state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocSnapshot {
    /// Allocated logical cores.
    pub cores: usize,
    /// Allocated LLC ways.
    pub ways: usize,
}

/// Which component decided the traced action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Provenance {
    /// Model-A OAA/RCliff prediction drove the action.
    ModelA,
    /// Model-B B-point matching drove the action.
    ModelB,
    /// Model-B′ slowdown pricing drove the action.
    ModelBPrime,
    /// Model-C's DQN chose the action.
    ModelC,
    /// The heuristic fallback (QoS watchdog quarantine) drove the action.
    Heuristic,
    /// The controller's own machinery (rollback, transaction restore,
    /// watchdog transitions) drove the action.
    Controller,
    /// A baseline scheduler (PARTIES, Unmanaged, Oracle) drove the action.
    Baseline,
}

/// What kind of decision a [`TraceRecord`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActionKind {
    /// Initial placement of a newly arrived service.
    Place,
    /// A growth grant (Algorithm 2 or the heuristic fallback).
    Grant,
    /// A neighbour deprived of resources (Algorithm 1 / Model-B).
    Deprive,
    /// Surplus reclaimed (Algorithm 3).
    Reclaim,
    /// LLC sharing enabled with a neighbour (Algorithm 4).
    Share,
    /// A pending action withdrawn (reclaim broke QoS / growth was wasted).
    Rollback,
    /// A transaction abort restored services to their pre-move layout.
    Restore,
    /// The QoS watchdog quarantined the ML path.
    FallbackEngaged,
    /// The service left quarantine.
    Recovered,
    /// A transient actuation failure was retried until success.
    Retry,
    /// The upper scheduler was asked to migrate the service.
    MigrationRequested,
    /// MBA throttles were repartitioned.
    BandwidthRepartitioned,
    /// An arrival was rejected outright (no allocation changed).
    Reject,
    /// An arrival was deferred into the admission queue.
    Defer,
    /// A queued arrival was admitted on retry.
    QueueAdmit,
    /// A best-effort service was shed during brownout.
    Shed,
    /// The controller entered brownout (declared degraded state).
    BrownoutEnter,
    /// The controller exited brownout after restoring shaved services.
    BrownoutExit,
    /// An LLC way-mask repack slid a neighbour to keep free ways contiguous.
    Repack,
    /// Warm-restart reconciliation repaired a drifted or overlapping layout.
    Repair,
    /// The upper scheduler moved the service to another node (failover or
    /// QoS migration): the destination launch committed before the source
    /// replica was torn down.
    Migrate,
}

/// An `(ActionKind, Provenance)` pair the instrumented call sites thread to
/// the actuation plumbing, so one `apply` path can emit correctly labelled
/// records for every algorithm that funnels through it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOp {
    /// What is being done.
    pub kind: ActionKind,
    /// Who decided it.
    pub provenance: Provenance,
}

impl TraceOp {
    /// Builds an op.
    pub const fn new(kind: ActionKind, provenance: Provenance) -> Self {
        TraceOp { kind, provenance }
    }
}

/// One structured decision-trace record (one JSONL line in a [`FileSink`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Scheduler tick the decision happened in (0 during placement before
    /// the first tick).
    pub tick: u64,
    /// Simulated time, seconds.
    pub time_s: f64,
    /// Raw id of the service concerned (`None` for machine-wide records).
    pub app: Option<u64>,
    /// What happened.
    pub kind: ActionKind,
    /// Which model or mechanism decided it.
    pub provenance: Provenance,
    /// Allocation before the action, if it changed one.
    pub pre: Option<AllocSnapshot>,
    /// Allocation after the action, if it changed one.
    pub post: Option<AllocSnapshot>,
    /// Whether this record is a scheduling action in the paper's Fig. 15
    /// overhead accounting (exactly the actions `action_count()` reports).
    pub counts_as_action: bool,
    /// Free-form detail (`attempts=3 backoff_ms=3.0`, …).
    pub detail: Option<String>,
}

/// Where trace records go. Implementations must not feed anything back into
/// the scheduler — sinks are write-only by design.
pub trait TelemetrySink: std::fmt::Debug + Send {
    /// Accepts one record.
    fn record(&mut self, rec: &TraceRecord);

    /// Flushes buffered records to their destination.
    fn flush(&mut self) {}

    /// Read-back for in-memory sinks (`None` for write-only sinks such as
    /// files).
    fn records(&self) -> Option<Vec<TraceRecord>> {
        None
    }
}

/// A bounded in-memory sink: keeps the most recent `capacity` records,
/// counting (not storing) older ones.
#[derive(Debug, Clone)]
pub struct RingBufferSink {
    capacity: usize,
    items: VecDeque<TraceRecord>,
    dropped: u64,
}

impl RingBufferSink {
    /// Creates a ring holding at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer capacity must be positive");
        RingBufferSink { capacity, items: VecDeque::with_capacity(capacity.min(1024)), dropped: 0 }
    }

    /// Records evicted to make room (total seen = stored + dropped).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl TelemetrySink for RingBufferSink {
    fn record(&mut self, rec: &TraceRecord) {
        if self.items.len() == self.capacity {
            self.items.pop_front();
            self.dropped += 1;
        }
        self.items.push_back(rec.clone());
    }

    fn records(&self) -> Option<Vec<TraceRecord>> {
        Some(self.items.iter().cloned().collect())
    }
}

/// A JSONL file sink: one serialized [`TraceRecord`] per line.
#[derive(Debug)]
pub struct FileSink {
    path: PathBuf,
    writer: BufWriter<File>,
}

impl FileSink {
    /// Creates (truncating) the file at `path`, creating parent directories
    /// as needed.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let writer = BufWriter::new(File::create(&path)?);
        Ok(FileSink { path, writer })
    }

    /// The file being written.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl TelemetrySink for FileSink {
    fn record(&mut self, rec: &TraceRecord) {
        // Serialization of a derived struct cannot fail; I/O errors on a
        // telemetry pipe must not take the scheduler down — drop the line.
        let line = serde_json::to_string(rec).expect("trace record serializes");
        let _ = writeln!(self.writer, "{line}");
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

impl Drop for FileSink {
    fn drop(&mut self) {
        let _ = self.writer.flush();
    }
}

/// A write-ahead decision journal sink: append-only JSONL, one line per
/// *committed action* (records with `counts_as_action` — non-action records
/// such as watchdog transitions are skipped), flushed after every line.
///
/// This is the durability half of crash recovery: because each record
/// reaches the file before the next is appended, a crash can tear at most
/// the final line, which the recovery reader drops. Unlike [`FileSink`] the
/// journal opens in append mode, so a restarted controller continues the
/// same journal instead of truncating its own history.
#[derive(Debug)]
pub struct JournalSink {
    path: PathBuf,
    file: File,
}

impl JournalSink {
    /// Opens (creating if needed, never truncating) the journal at `path`,
    /// creating parent directories as needed.
    pub fn append(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = File::options().create(true).append(true).open(&path)?;
        Ok(JournalSink { path, file })
    }

    /// The journal file being appended to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl TelemetrySink for JournalSink {
    fn record(&mut self, rec: &TraceRecord) {
        if !rec.counts_as_action {
            return;
        }
        // As in FileSink, an I/O error on the telemetry pipe must not take
        // the scheduler down; the record is lost, which recovery treats the
        // same as a crash just before the action.
        let line = serde_json::to_string(rec).expect("trace record serializes");
        let _ = writeln!(self.file, "{line}");
        let _ = self.file.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(tick: u64) -> TraceRecord {
        TraceRecord {
            tick,
            time_s: tick as f64,
            app: Some(1),
            kind: ActionKind::Grant,
            provenance: Provenance::ModelC,
            pre: Some(AllocSnapshot { cores: 4, ways: 4 }),
            post: Some(AllocSnapshot { cores: 5, ways: 5 }),
            counts_as_action: true,
            detail: None,
        }
    }

    #[test]
    fn trace_record_round_trips() {
        let r = rec(7);
        let json = serde_json::to_string(&r).unwrap();
        let back: TraceRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn ring_buffer_keeps_most_recent() {
        let mut ring = RingBufferSink::new(3);
        for t in 0..5 {
            ring.record(&rec(t));
        }
        let records = ring.records().unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].tick, 2);
        assert_eq!(records[2].tick, 4);
        assert_eq!(ring.dropped(), 2);
    }

    #[test]
    fn journal_sink_appends_across_restarts_and_skips_non_actions() {
        let path =
            std::env::temp_dir().join(format!("osml-journal-test-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut sink = JournalSink::append(&path).unwrap();
            sink.record(&rec(0));
            let mut non_action = rec(1);
            non_action.counts_as_action = false;
            sink.record(&non_action); // skipped: journal is per committed action
        }
        {
            // A "restarted controller" reopens the same journal: no truncation.
            let mut sink = JournalSink::append(&path).unwrap();
            sink.record(&rec(2));
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let ticks: Vec<u64> =
            text.lines().map(|l| serde_json::from_str::<TraceRecord>(l).unwrap().tick).collect();
        assert_eq!(ticks, vec![0, 2]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_sink_writes_one_json_line_per_record() {
        let path =
            std::env::temp_dir().join(format!("osml-trace-test-{}.jsonl", std::process::id()));
        {
            let mut sink = FileSink::create(&path).unwrap();
            sink.record(&rec(0));
            sink.record(&rec(1));
            sink.flush();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            let back: TraceRecord = serde_json::from_str(line).unwrap();
            assert_eq!(back.tick, i as u64);
        }
        let _ = std::fs::remove_file(&path);
    }
}

//! The shared [`Telemetry`] handle and the [`Span`] timing guard.

use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::trace::{TelemetrySink, TraceRecord};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Everything an enabled pipeline owns. Shared behind an `Arc` so cloning a
/// scheduler (the grid runners clone trained templates) shares one pipe.
struct Inner {
    registry: Mutex<MetricsRegistry>,
    sinks: Mutex<Vec<Box<dyn TelemetrySink>>>,
    /// Trace records emitted with `counts_as_action` — tracked outside the
    /// sinks so a full ring buffer cannot lose the count.
    actions: AtomicU64,
    /// All trace records emitted.
    records: AtomicU64,
}

/// Handle to a telemetry pipeline, threaded through schedulers and
/// harnesses.
///
/// The default ([`Telemetry::disabled`]) carries nothing: every method is a
/// branch on a `None` — no allocation, no lock, no clock read — which is
/// what lets instrumented code ship in the hot path of the fig binaries
/// with byte-identical output. An enabled handle owns a metrics registry
/// and a list of [`TelemetrySink`]s behind an `Arc`, so clones observe into
/// the same pipeline.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry").field("enabled", &self.is_enabled()).finish()
    }
}

impl Telemetry {
    /// The no-op pipeline (the default everywhere).
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// An enabled pipeline with an in-memory ring buffer sink
    /// ([`crate::RingBufferSink`], 65 536 records).
    pub fn enabled() -> Self {
        Telemetry::with_sinks(vec![Box::new(crate::RingBufferSink::new(65_536))])
    }

    /// An enabled pipeline over the given sinks.
    pub fn with_sinks(sinks: Vec<Box<dyn TelemetrySink>>) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                registry: Mutex::new(MetricsRegistry::new()),
                sinks: Mutex::new(sinks),
                actions: AtomicU64::new(0),
                records: AtomicU64::new(0),
            })),
        }
    }

    /// Whether this handle records anything at all. Instrumented code may
    /// branch on this to skip building record payloads.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `delta` to a counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.lock().expect("registry lock").counter_add(name, delta);
        }
    }

    /// Sets a gauge.
    pub fn gauge_set(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.registry.lock().expect("registry lock").gauge_set(name, value);
        }
    }

    /// Records one observation into a histogram (default µs-latency
    /// buckets).
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.registry.lock().expect("registry lock").observe(name, value);
        }
    }

    /// Starts a wall-clock span; dropping the guard records the elapsed
    /// microseconds into the histogram named `name`. Disabled handles
    /// return an inert guard without reading the clock.
    pub fn span(&self, name: &'static str) -> Span {
        Span {
            telemetry: if self.is_enabled() { Some(self.clone()) } else { None },
            name,
            start: self.is_enabled().then(Instant::now),
        }
    }

    /// Emits one decision-trace record to every sink.
    pub fn trace(&self, record: TraceRecord) {
        if let Some(inner) = &self.inner {
            inner.records.fetch_add(1, Ordering::Relaxed);
            if record.counts_as_action {
                inner.actions.fetch_add(1, Ordering::Relaxed);
            }
            for sink in inner.sinks.lock().expect("sinks lock").iter_mut() {
                sink.record(&record);
            }
        }
    }

    /// Trace records emitted with `counts_as_action` set — by construction
    /// equal to the instrumented scheduler's `action_count()`.
    pub fn action_trace_count(&self) -> u64 {
        self.inner.as_ref().map(|i| i.actions.load(Ordering::Relaxed)).unwrap_or(0)
    }

    /// Total trace records emitted.
    pub fn trace_record_count(&self) -> u64 {
        self.inner.as_ref().map(|i| i.records.load(Ordering::Relaxed)).unwrap_or(0)
    }

    /// Read-back of the trace from the first sink that retains records
    /// in memory (empty for disabled handles or write-only sinks).
    pub fn trace_records(&self) -> Vec<TraceRecord> {
        let Some(inner) = &self.inner else { return Vec::new() };
        inner.sinks.lock().expect("sinks lock").iter().find_map(|s| s.records()).unwrap_or_default()
    }

    /// A snapshot of the metrics registry (empty for disabled handles).
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(inner) => inner.registry.lock().expect("registry lock").snapshot(),
            None => MetricsRegistry::new().snapshot(),
        }
    }

    /// Flushes every sink.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            for sink in inner.sinks.lock().expect("sinks lock").iter_mut() {
                sink.flush();
            }
        }
    }
}

/// RAII timing guard from [`Telemetry::span`]: records wall-clock elapsed
/// microseconds into its histogram on drop. Inert (no clock read) when the
/// pipeline is disabled.
#[derive(Debug)]
#[must_use = "a span measures until dropped; binding it to _ drops immediately"]
pub struct Span {
    telemetry: Option<Telemetry>,
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let (Some(t), Some(start)) = (&self.telemetry, self.start) {
            t.observe(self.name, start.elapsed().as_secs_f64() * 1e6);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{ActionKind, Provenance, RingBufferSink};

    fn record(counts: bool) -> TraceRecord {
        TraceRecord {
            tick: 1,
            time_s: 1.0,
            app: Some(3),
            kind: ActionKind::Reclaim,
            provenance: Provenance::ModelC,
            pre: None,
            post: None,
            counts_as_action: counts,
            detail: None,
        }
    }

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        t.counter_add("c", 1);
        t.gauge_set("g", 1.0);
        t.observe("h", 1.0);
        t.trace(record(true));
        drop(t.span("s"));
        assert!(!t.is_enabled());
        assert_eq!(t.action_trace_count(), 0);
        assert!(t.trace_records().is_empty());
        let snap = t.snapshot();
        assert!(snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty());
    }

    #[test]
    fn enabled_handle_records_and_counts() {
        let t = Telemetry::enabled();
        t.counter_add("c", 2);
        t.trace(record(true));
        t.trace(record(false));
        assert_eq!(t.action_trace_count(), 1);
        assert_eq!(t.trace_record_count(), 2);
        assert_eq!(t.trace_records().len(), 2);
        assert_eq!(t.snapshot().counters.get("c"), Some(&2));
    }

    #[test]
    fn clones_share_one_pipeline() {
        let t = Telemetry::with_sinks(vec![Box::new(RingBufferSink::new(8))]);
        let u = t.clone();
        u.trace(record(true));
        u.counter_add("shared", 1);
        assert_eq!(t.trace_records().len(), 1);
        assert_eq!(t.snapshot().counters.get("shared"), Some(&1));
    }

    #[test]
    fn span_records_elapsed_micros() {
        let t = Telemetry::enabled();
        {
            let _guard = t.span("work");
            std::hint::black_box(0u64);
        }
        let snap = t.snapshot();
        let h = snap.histograms.get("work").expect("span histogram exists");
        assert_eq!(h.count, 1);
        assert!(h.max.unwrap() >= 0.0);
    }
}

//! The upper-level scheduler the paper keeps referring to.
//!
//! OSML is a per-node controller: Algorithm 1 "reports to the upper
//! scheduler about the scheduling policies", and Algorithm 4's fallback is
//! "OSML migrates the microservice to another node". This module provides
//! that upper level — a [`Cluster`] of simulated servers, each run by its
//! own OSML instance, with first-fit placement across nodes and automatic
//! migration of services a node rejects or cannot keep within QoS.
//!
//! This is the paper's "future work" tier made concrete enough to run
//! experiments against: every node-level mechanism (profiling, the three
//! models, Algorithms 1–4) is reused unchanged.

use crate::{OsmlConfig, OsmlScheduler};
use osml_platform::{AppId, Placement, Scheduler, Substrate};
use osml_workloads::{LaunchSpec, Service, SimConfig, SimServer};
use serde::{Deserialize, Serialize};

/// A service's location in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ServiceHandle {
    /// Cluster-wide identifier (stable across migrations).
    pub id: u64,
    /// Node currently hosting the service.
    pub node: usize,
    /// Node-local application id.
    pub app: AppId,
}

/// Outcome of a cluster placement request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterPlacement {
    /// The service is running on the given node.
    Placed(ServiceHandle),
    /// No node in the cluster could host the service within QoS.
    ClusterFull,
}

#[derive(Debug, Clone)]
struct Tracked {
    handle: ServiceHandle,
    spec: LaunchSpec,
    violating_since: Option<f64>,
}

/// A fleet of OSML-managed servers with an upper-level placement/migration
/// policy.
///
/// # Example
///
/// ```no_run
/// use osml_core::{Cluster, OsmlConfig};
/// use osml_workloads::{LaunchSpec, Service};
/// # fn trained() -> osml_core::OsmlScheduler { unimplemented!() }
///
/// let scheduler_template = trained();
/// let mut cluster = Cluster::new(2, scheduler_template, OsmlConfig::default(), 7);
/// let placement = cluster.submit(LaunchSpec::at_percent_load(Service::Moses, 60.0));
/// cluster.run(30.0);
/// println!("{placement:?}, {} migrations so far", cluster.migrations());
/// ```
#[derive(Debug)]
pub struct Cluster {
    nodes: Vec<SimServer>,
    schedulers: Vec<OsmlScheduler>,
    services: Vec<Tracked>,
    next_id: u64,
    migrations: usize,
    /// Seconds of continuous violation before the upper scheduler migrates
    /// a service away from its node.
    pub migration_patience_s: f64,
}

impl Cluster {
    /// Builds a cluster of `n` identical nodes, each driven by a clone of
    /// the (trained) `scheduler` template.
    pub fn new(n: usize, scheduler: OsmlScheduler, config: OsmlConfig, seed: u64) -> Self {
        assert!(n > 0, "cluster needs at least one node");
        let nodes = (0..n)
            .map(|i| {
                SimServer::new(SimConfig { seed: seed ^ (i as u64) << 32, ..SimConfig::default() })
            })
            .collect();
        let schedulers = (0..n).map(|_| scheduler.clone().with_config(config.clone())).collect();
        Cluster {
            nodes,
            schedulers,
            services: Vec::new(),
            next_id: 0,
            migrations: 0,
            migration_patience_s: 30.0,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cluster has no nodes (never true; see [`Cluster::new`]).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total migrations performed so far.
    pub fn migrations(&self) -> usize {
        self.migrations
    }

    /// Services currently running, with their locations.
    pub fn services(&self) -> Vec<ServiceHandle> {
        self.services.iter().map(|t| t.handle).collect()
    }

    /// Sum of scheduling actions across all node controllers.
    pub fn total_actions(&self) -> usize {
        self.schedulers.iter().map(|s| s.action_count()).sum()
    }

    /// Submits a new service: first-fit across nodes in order of idle
    /// capacity (most idle cores first), falling back through every node
    /// before declaring the cluster full.
    pub fn submit(&mut self, spec: LaunchSpec) -> ClusterPlacement {
        let mut order: Vec<usize> = (0..self.nodes.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.nodes[i].idle_cores().count()));
        for node in order {
            if let Some(handle) = self.try_place(node, spec) {
                return ClusterPlacement::Placed(handle);
            }
        }
        ClusterPlacement::ClusterFull
    }

    fn try_place(&mut self, node: usize, spec: LaunchSpec) -> Option<ServiceHandle> {
        let server = &mut self.nodes[node];
        let alloc = crate::bootstrap::bootstrap_allocation(server, spec.threads);
        let app = server.launch(spec, alloc).ok()?;
        server.advance(1.0);
        match self.schedulers[node].on_arrival(server, app) {
            Placement::Placed => {
                let handle = ServiceHandle { id: self.next_id, node, app };
                self.next_id += 1;
                self.services.push(Tracked { handle, spec, violating_since: None });
                Some(handle)
            }
            Placement::Rejected(_) | Placement::Deferred { .. } => {
                // The cluster tier has no arrival queue of its own: a node
                // that defers is treated as full and the next node is tried.
                let _ = server.remove(app);
                self.schedulers[node].on_departure(app);
                None
            }
        }
    }

    /// Removes a service from the cluster (completion).
    ///
    /// Returns false if the handle is unknown (e.g. already migrated; use
    /// the id via [`Cluster::locate`] to get a fresh handle).
    pub fn finish(&mut self, handle: ServiceHandle) -> bool {
        let Some(pos) = self.services.iter().position(|t| t.handle == handle) else {
            return false;
        };
        let t = self.services.remove(pos);
        let _ = self.nodes[t.handle.node].remove(t.handle.app);
        self.schedulers[t.handle.node].on_departure(t.handle.app);
        true
    }

    /// Current location of the service with cluster id `id`.
    pub fn locate(&self, id: u64) -> Option<ServiceHandle> {
        self.services.iter().find(|t| t.handle.id == id).map(|t| t.handle)
    }

    /// Current p95/target ratio of a service, if running.
    pub fn latency_over_target(&self, id: u64) -> Option<f64> {
        let t = self.services.iter().find(|t| t.handle.id == id)?;
        let lat = self.nodes[t.handle.node].latency(t.handle.app)?;
        Some(lat.p95_ms / lat.qos_target_ms)
    }

    /// Runs every node forward by `seconds` (1 Hz monitoring), migrating
    /// services that stay in violation past `migration_patience_s`.
    pub fn run(&mut self, seconds: f64) {
        let steps = seconds.max(0.0).round() as usize;
        for _ in 0..steps {
            for (node, server) in self.nodes.iter_mut().enumerate() {
                server.advance(1.0);
                self.schedulers[node].tick(server);
            }
            self.check_migrations();
        }
    }

    fn check_migrations(&mut self) {
        let mut to_migrate: Vec<usize> = Vec::new();
        for (idx, tracked) in self.services.iter_mut().enumerate() {
            let node = &self.nodes[tracked.handle.node];
            let now = node.now();
            let violating =
                node.latency(tracked.handle.app).map(|l| l.violates_qos()).unwrap_or(false);
            if violating {
                let since = *tracked.violating_since.get_or_insert(now);
                if now - since > self.migration_patience_s {
                    to_migrate.push(idx);
                }
            } else {
                tracked.violating_since = None;
            }
        }
        // Migrate in reverse index order so removals stay valid.
        for idx in to_migrate.into_iter().rev() {
            let tracked = self.services.remove(idx);
            let from = tracked.handle.node;
            let _ = self.nodes[from].remove(tracked.handle.app);
            self.schedulers[from].on_departure(tracked.handle.app);
            self.migrations += 1;
            // Re-place anywhere except the node it just failed on.
            let mut order: Vec<usize> = (0..self.nodes.len()).filter(|&i| i != from).collect();
            order.sort_by_key(|&i| std::cmp::Reverse(self.nodes[i].idle_cores().count()));
            let mut placed = false;
            for node in order {
                if let Some(mut handle) = self.try_place(node, tracked.spec) {
                    handle.id = tracked.handle.id;
                    // Fix the id recorded by try_place (it allocated a new one).
                    if let Some(t) = self.services.last_mut() {
                        t.handle.id = tracked.handle.id;
                    }
                    placed = true;
                    let _ = handle;
                    break;
                }
            }
            if !placed {
                // Last resort: back onto the original node, best-effort.
                if self.try_place(from, tracked.spec).is_some() {
                    if let Some(t) = self.services.last_mut() {
                        t.handle.id = tracked.handle.id;
                    }
                }
            }
        }
    }

    /// Which services run on `node`.
    pub fn services_on(&self, node: usize) -> Vec<Service> {
        self.services.iter().filter(|t| t.handle.node == node).map(|t| t.spec.service).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Models;
    use osml_models::{ModelA, ModelB, ModelBPrime, ModelC};

    /// A scheduler with untrained models is still structurally valid for
    /// cluster-plumbing tests (predictions are arbitrary but legal).
    fn raw_scheduler() -> OsmlScheduler {
        OsmlScheduler::new(
            Models {
                model_a: ModelA::new(36, 20, 1),
                model_b: ModelB::new(36, 20, 2),
                model_b_prime: ModelBPrime::new(3),
                model_c: ModelC::new(4),
            },
            OsmlConfig::default(),
        )
    }

    #[test]
    fn services_spread_across_nodes() {
        let mut cluster = Cluster::new(2, raw_scheduler(), OsmlConfig::default(), 5);
        let mut nodes_used = std::collections::HashSet::new();
        for _ in 0..2 {
            match cluster.submit(LaunchSpec::at_percent_load(Service::Moses, 40.0)) {
                ClusterPlacement::Placed(h) => {
                    nodes_used.insert(h.node);
                }
                ClusterPlacement::ClusterFull => panic!("two nodes cannot be full"),
            }
        }
        // First-fit-by-idle sends the second service to the other node.
        assert_eq!(nodes_used.len(), 2);
        assert_eq!(cluster.services().len(), 2);
    }

    #[test]
    fn finish_releases_resources() {
        let mut cluster = Cluster::new(1, raw_scheduler(), OsmlConfig::default(), 6);
        let ClusterPlacement::Placed(h) =
            cluster.submit(LaunchSpec::at_percent_load(Service::Login, 20.0))
        else {
            panic!("placement failed");
        };
        let idle_during = cluster.nodes[0].idle_cores().count();
        assert!(cluster.finish(h));
        assert!(!cluster.finish(h), "double-finish must be rejected");
        assert!(cluster.nodes[0].idle_cores().count() > idle_during);
        assert!(cluster.services().is_empty());
    }

    #[test]
    fn overloaded_service_is_migrated() {
        let mut cluster = Cluster::new(2, raw_scheduler(), OsmlConfig::default(), 7);
        cluster.migration_patience_s = 5.0;
        // Node 0: a service whose (untrained-model) allocation will violate.
        let ClusterPlacement::Placed(h) =
            cluster.submit(LaunchSpec::at_percent_load(Service::Xapian, 80.0))
        else {
            panic!("placement failed");
        };
        // Crowd node h.node so the controller cannot fix the violation...
        // (with untrained models the violation simply persists).
        cluster.run(40.0);
        // Either it was healed in place or migrated; in both cases the
        // service must still be somewhere in the cluster.
        assert!(cluster.locate(h.id).is_some(), "service must not be lost");
    }

    #[test]
    fn run_advances_all_nodes() {
        let mut cluster = Cluster::new(3, raw_scheduler(), OsmlConfig::default(), 8);
        cluster.run(10.0);
        for node in &cluster.nodes {
            assert!((node.now() - 10.0).abs() < 1e-9);
        }
    }
}

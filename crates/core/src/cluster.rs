//! The upper-level scheduler the paper keeps referring to — now
//! partition tolerant.
//!
//! OSML is a per-node controller: Algorithm 1 "reports to the upper
//! scheduler about the scheduling policies", and Algorithm 4's fallback is
//! "OSML migrates the microservice to another node". This module provides
//! that upper level — a [`Cluster`] of simulated servers, each run by its
//! own OSML instance, with placement across nodes and automatic migration
//! of services a node cannot keep within QoS.
//!
//! Since the fault-tolerance tier, the cluster no longer calls into its
//! nodes directly. Every interaction is a typed message over a
//! [`ControlChannel`]: [`NodeCommand`] envelopes (launch / teardown /
//! ping) flow out under per-node sequence numbers, [`NodeReply`]
//! envelopes flow back. The default transport is a
//! [`PerfectChannel`](osml_platform::PerfectChannel) — reliable, in-order,
//! same-instant, and able to report a dead peer synchronously — under
//! which the substrate call sequence is bit-identical to the direct-call
//! cluster it replaced. A seeded
//! [`LossyChannel`](osml_platform::LossyChannel) drops, delays,
//! duplicates and partitions instead, and the protocol has to earn its
//! keep:
//!
//! * **at-least-once commands** — every RPC retries under the same
//!   sequence number with exponential backoff; node agents deduplicate by
//!   [`SeqWindow`] and re-acknowledge from a reply cache, so a duplicated
//!   `Launch` places exactly one replica,
//! * **epoch fencing** — each placement attempt carries a fresh epoch;
//!   nodes refuse any epoch not strictly newer than the highest they have
//!   seen for the id, and teardowns are epoch-exact, so a delayed
//!   `Migrate`/`Launch` can never double-place a service and a delayed
//!   teardown can never kill its successor replica. Acknowledged-late
//!   launches become *ghost replicas* that are fenced off (torn down by
//!   exact epoch) as soon as the link allows,
//! * **failure suspicion, not omniscience** — node health is inferred
//!   from heartbeat timeouts. Suspicion is belief: a partitioned node is
//!   indistinguishable from a dead one, so false suspicions happen, and a
//!   "dead" node that reconnects still hosting services is reconciled by
//!   epoch comparison — current-epoch replicas of evicted services are
//!   re-adopted ([`LaunchCause::Readopted`]), stale ones fenced,
//! * **destination-commit-first migration** — unchanged from the
//!   fault-tolerance tier, but now the source teardown is a fenced,
//!   at-least-once command that survives a mid-flight partition: until
//!   the epoch-exact ack arrives the teardown stays pending and is
//!   re-sent every step,
//! * **golden thread** — transport faults (`MessageDropped`,
//!   `MessageDuplicated`), partition windows (`PartitionStarted`/
//!   `PartitionHealed`) and belief transitions (`NodeSuspected`/
//!   `NodeSuspicionCleared`) are world facts in the cluster's
//!   [`UnifiedLog`], strict enough for [`UnifiedLog::replay`] to fold
//!   without error.
//!
//! The conservation ledger is exact under all of it: every id ever issued
//! has exactly one disposition, no matter what the channel does.

use crate::resilience::{RetryPolicy, Retrying};
use crate::{
    ClusterConfig, Decision, EventBody, LaunchCause, OsmlConfig, OsmlScheduler, PlacementPolicy,
    RemovalCause, TelemetryNote, UnifiedLog, WorldFact,
};
use osml_platform::{
    hash01, Allocation, AppId, Channel, ChannelStats, ControlChannel, Envelope, FaultPlan,
    FaultySubstrate, NodeCommand, NodeReply, Placement, RejectReason, Scheduler, SeqWindow,
    SloClass, Substrate,
};
use osml_telemetry::{ActionKind, Provenance};
use osml_workloads::{LaunchSpec, Service, SimConfig, SimServer};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One cluster node: the analytic simulator behind the (possibly
/// transparent) call-level fault decorator.
type Node = FaultySubstrate<SimServer>;

/// Commands carry the workload launch payload.
type Command = NodeCommand<LaunchSpec>;

/// Channel-salt for the command direction (folded into the plan seed so
/// the two directions draw independent fault streams).
const CMD_CHANNEL_SALT: u64 = 0x0C;
/// Channel-salt for the reply direction.
const REPLY_CHANNEL_SALT: u64 = 0x0D;
/// Decision-hash salt for the random-placement baseline; disjoint from
/// the platform fault salts (1–5, 101–102, 201–205).
const PLACEMENT_SALT: u64 = 211;

/// A service's location in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ServiceHandle {
    /// Cluster-wide identifier (stable across migrations and failover).
    pub id: u64,
    /// Node hosting the service when the handle was issued. Goes stale
    /// across migrations — resolve by [`ServiceHandle::id`] via
    /// [`Cluster::locate`], never by `(node, app)`.
    pub node: usize,
    /// Node-local application id (stale together with `node`).
    pub app: AppId,
}

/// Outcome of a cluster placement request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterPlacement {
    /// The service is running on the given node.
    Placed(ServiceHandle),
    /// No node in the cluster could host the service within QoS.
    ClusterFull,
}

/// Why constructing a [`Cluster`] failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterError {
    /// A cluster needs at least one node.
    NoNodes,
    /// The [`ClusterConfig`] fails validation (see
    /// [`ClusterConfig::validate`]); the reason says which rule.
    InvalidConfig {
        /// Human-readable rule that was violated.
        reason: &'static str,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::NoNodes => write!(f, "cluster needs at least one node"),
            ClusterError::InvalidConfig { reason } => {
                write!(f, "invalid cluster config: {reason}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// Where a submitted service ended up — the conservation ledger. Every
/// cluster id ever issued has exactly one current disposition; nothing is
/// ever silently dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceDisposition {
    /// Live on some node (relocatable by migration/failover).
    Running,
    /// Removed by [`Cluster::finish`].
    Finished,
    /// Its node died (or it was stranded) and no surviving node could
    /// host it — a typed loss, surfaced, never silent.
    Evicted,
    /// No node could host it at submit time ([`ClusterPlacement::ClusterFull`]).
    Rejected,
}

#[derive(Debug, Clone)]
struct Tracked {
    handle: ServiceHandle,
    spec: LaunchSpec,
    /// Placement epoch of the replica this entry tracks (the fencing
    /// token: teardown targets exactly this epoch, and any launch ack
    /// carrying a different epoch is a ghost).
    epoch: u64,
    violating_since: Option<f64>,
    /// Destination-node time until which the violation clock is suspended
    /// (the paid migration warm-up window).
    warm_until: f64,
    /// QoS-violation migration attempts consumed (the anti-thrash budget;
    /// node-death failover is never budget-limited).
    migrations_used: u32,
    /// Cluster clock when this replica committed; pong snapshots taken
    /// before it cannot vote on its existence.
    settled_s: f64,
}

/// A service evicted while its node was merely *suspected* dead. If the
/// node reconnects still hosting the current-epoch replica, the service
/// is re-adopted instead of fenced.
#[derive(Debug, Clone)]
struct Parked {
    spec: LaunchSpec,
    epoch: u64,
    migrations_used: u32,
}

/// An epoch-exact teardown that has not been acknowledged yet. Re-sent
/// every step (same sequence number, so the node-side window dedups)
/// until its [`NodeReply::TornDown`] arrives.
#[derive(Debug, Clone, Copy)]
struct PendingTeardown {
    node: usize,
    id: u64,
    epoch: u64,
    seq: u64,
}

/// The node-side half of the control protocol: one per node, owning the
/// substrate and the local OSML controller. Executes commands delivered
/// by the channel, never called directly by placement logic.
#[derive(Debug)]
struct NodeAgent {
    index: usize,
    node: Node,
    scheduler: OsmlScheduler,
    /// Ground truth: the node's processes are running. Distinct from the
    /// cluster's *suspicion* of it.
    alive: bool,
    /// Chaos-hook override, authoritative only under a none fault plan.
    forced_down: bool,
    /// Whether resilient launches route through [`Retrying`] (precomputed:
    /// the actuation profile is non-none).
    resilient_installs: bool,
    /// Self-measured capacity factor, refreshed from the fault plan while
    /// alive; reported in pongs.
    capacity: f64,
    /// Resident replicas as `(cluster id, app, epoch)`, in arrival order.
    residents: Vec<(u64, AppId, u64)>,
    /// Highest epoch seen per id — the fence. Volatile: dies with the node.
    fence: BTreeMap<u64, u64>,
    /// Command-sequence dedup window. Volatile.
    seen: SeqWindow,
    /// Replies by sequence number, for duplicate re-acks. Volatile.
    reply_cache: BTreeMap<u64, NodeReply>,
}

impl NodeAgent {
    /// The node dies: residents drain (their processes die with it) and
    /// all volatile protocol state — fences, dedup window, reply cache —
    /// is lost. Returns the drained residents for ledger bookkeeping.
    fn crash(&mut self) -> Vec<(u64, AppId, u64)> {
        self.alive = false;
        let drained: Vec<(u64, AppId, u64)> = self.residents.drain(..).collect();
        for &(_, app, _) in &drained {
            let _ = self.node.remove(app);
            self.scheduler.on_departure(app);
        }
        self.fence.clear();
        self.seen.clear();
        self.reply_cache.clear();
        drained
    }

    /// One monitoring step of node-local time. A partitioned-but-alive
    /// node keeps running its own controller — local autonomy is the
    /// whole point of the per-node OSML design.
    fn step(&mut self) {
        self.node.advance(1.0);
        if self.alive {
            self.scheduler.tick(&mut self.node);
        }
    }

    /// Executes one delivered command. `None` means silence (the node is
    /// dead); the transport decides whether silence is observable.
    /// With `fencing` the agent dedups by sequence number (re-acking
    /// duplicates from the cache) and enforces epoch fences; the ablation
    /// arm switches all of that off.
    fn handle(
        &mut self,
        env: Envelope<Command>,
        now_s: f64,
        fencing: bool,
        policy: &RetryPolicy,
    ) -> Option<NodeReply> {
        if !self.alive {
            return None;
        }
        // Pings are idempotent reads: they bypass dedup and the reply
        // cache so every delivery — duplicates included — is answered
        // with a *current* snapshot, never a stale cached one. Dedup and
        // caching exist for the effectful commands below.
        if let Command::Ping = env.msg {
            return Some(NodeReply::Pong {
                node: self.index,
                at_s: now_s,
                capacity: self.capacity,
                residents: self.residents.clone(),
            });
        }
        if fencing && !self.seen.fresh(env.seq) {
            // Duplicate delivery: re-acknowledge idempotently. A pruned
            // cache entry degrades to silence, which the sender's retry
            // loop already tolerates.
            return self.reply_cache.get(&env.seq).cloned();
        }
        let reply = match env.msg {
            Command::Ping => unreachable!("answered above"),
            Command::Launch { id, epoch, spec, resilient } => {
                self.handle_launch(id, epoch, spec, resilient, fencing, policy)
            }
            Command::Teardown { id, epoch } => self.handle_teardown(id, epoch, fencing),
        };
        if fencing {
            self.reply_cache.insert(env.seq, reply.clone());
            while self.reply_cache.len() > 1024 {
                self.reply_cache.pop_first();
            }
        }
        Some(reply)
    }

    /// The launch path: fence check, bootstrap actuation (resilient
    /// installs retry through [`Retrying`] and roll back on exhaustion),
    /// then the local controller's admission. Identical call sequence to
    /// the pre-protocol `try_place`.
    fn handle_launch(
        &mut self,
        id: u64,
        epoch: u64,
        spec: LaunchSpec,
        resilient: bool,
        fencing: bool,
        policy: &RetryPolicy,
    ) -> NodeReply {
        if fencing {
            let top = self.fence.get(&id).copied().unwrap_or(0);
            if epoch <= top {
                return NodeReply::Fenced { id, epoch };
            }
            self.fence.insert(id, epoch);
        }
        let bootstrap = crate::bootstrap::bootstrap_allocation(&mut self.node, spec.threads);
        let Ok(app) = self.node.inner_mut().launch(spec, bootstrap) else {
            return NodeReply::LaunchFailed { id, epoch, retried: Vec::new(), gave_up: false };
        };
        let mut retried: Vec<(u32, f64)> = Vec::new();
        let mut gave_up = false;
        if resilient && self.resilient_installs {
            let installed;
            let stats;
            {
                let mut retrying = Retrying::new(
                    &mut self.node,
                    policy.budget,
                    policy.backoff_base_ms,
                    policy.max_backoff_ms,
                );
                installed = retrying.reallocate(app, bootstrap);
                stats = retrying.take_stats();
            }
            for (_, attempts, backoff_ms) in stats.retried {
                retried.push((attempts, backoff_ms));
            }
            gave_up = stats.persistent > 0;
            if installed.is_err() {
                // Roll the half-launched replica back; teardown goes
                // through the OS, not the faulted actuation path.
                let _ = self.node.remove(app);
                return NodeReply::LaunchFailed { id, epoch, retried, gave_up };
            }
        }
        self.node.advance(1.0);
        match self.scheduler.on_arrival(&mut self.node, app) {
            Placement::Placed => {
                let post = self.node.allocation(app).unwrap_or(bootstrap);
                self.residents.push((id, app, epoch));
                NodeReply::Launched { id, epoch, app, post, retried, gave_up }
            }
            Placement::Rejected(_) | Placement::Deferred { .. } => {
                // The cluster tier has no arrival queue of its own: a node
                // that defers is treated as full and the next node is tried.
                let _ = self.node.remove(app);
                self.scheduler.on_departure(app);
                NodeReply::LaunchFailed { id, epoch, retried, gave_up }
            }
        }
    }

    /// Epoch-exact teardown (fencing) or by-id teardown (ablation).
    /// Idempotent either way: a miss acknowledges with `removed: false`.
    fn handle_teardown(&mut self, id: u64, epoch: u64, fencing: bool) -> NodeReply {
        let pos = if fencing {
            self.residents.iter().position(|&(rid, _, re)| rid == id && re == epoch)
        } else {
            self.residents.iter().position(|&(rid, _, _)| rid == id)
        };
        match pos {
            Some(p) => {
                let (_, app, _) = self.residents.remove(p);
                let _ = self.node.remove(app);
                self.scheduler.on_departure(app);
                if fencing {
                    let top = self.fence.entry(id).or_insert(0);
                    *top = (*top).max(epoch);
                }
                NodeReply::TornDown { id, epoch, removed: true }
            }
            None => NodeReply::TornDown { id, epoch, removed: false },
        }
    }
}

/// A fleet of OSML-managed servers with an upper-level placement,
/// migration and failover policy, speaking a fault-injectable control
/// protocol to its nodes.
///
/// # Example
///
/// ```no_run
/// use osml_core::{Cluster, OsmlConfig};
/// use osml_workloads::{LaunchSpec, Service};
/// # fn trained() -> osml_core::OsmlScheduler { unimplemented!() }
///
/// let scheduler_template = trained();
/// let mut cluster = Cluster::new(2, scheduler_template, OsmlConfig::default(), 7);
/// let placement = cluster.submit(LaunchSpec::at_percent_load(Service::Moses, 60.0));
/// cluster.run(30.0);
/// println!("{placement:?}, {} migrations so far", cluster.migrations());
/// ```
#[derive(Debug)]
pub struct Cluster {
    agents: Vec<NodeAgent>,
    /// Belief, not ground truth: the cluster suspects node i is dead.
    /// Index-parallel to `agents`, as are the heartbeat vectors below.
    suspected: Vec<bool>,
    /// Last cluster-clock instant a fresh pong arrived per node.
    last_heard: Vec<f64>,
    /// Last cluster-clock instant a ping was sent per node.
    last_ping: Vec<f64>,
    /// Last known capacity per node (ambient gauge under a reliable
    /// transport, pong-reported under a lossy one).
    capacity: Vec<f64>,
    /// Partition-window membership as of the last step, for transition
    /// facts.
    partitioned: Vec<bool>,
    cmd_channel: Channel<Command>,
    reply_channel: Channel<NodeReply>,
    /// Next command sequence number per node.
    next_seq: Vec<u64>,
    /// Unacknowledged epoch-exact teardowns, re-sent every step.
    pending_teardowns: Vec<PendingTeardown>,
    /// Suspicion-evicted services kept for re-adoption at heal.
    parked: BTreeMap<u64, Parked>,
    /// Latest issued placement epoch per id.
    epochs: BTreeMap<u64, u64>,
    /// Tracked ids whose replica death was already ledgered
    /// (`Removed { NodeFailure }`) but whose suspicion has not resolved
    /// yet — suppresses a double removal fact at finish.
    physically_gone: BTreeSet<u64>,
    services: Vec<Tracked>,
    /// Conservation ledger: every issued id, exactly one disposition.
    dispositions: BTreeMap<u64, ServiceDisposition>,
    next_id: u64,
    migrations: usize,
    failovers: usize,
    evictions: usize,
    migrations_suppressed: usize,
    warmup_charged_s: f64,
    suspicions: usize,
    false_suspicions: usize,
    readopted: usize,
    fenced_ghosts: usize,
    /// Total backoff charged by command-level (transport) retries, ms.
    command_backoff_ms: f64,
    /// Monotone counter behind the random-placement baseline's draws.
    placement_draws: u64,
    /// Cluster wall clock (steps of [`Cluster::run`]); node clocks run
    /// slightly ahead because placement profiling advances them.
    clock: f64,
    tick: u64,
    log: UnifiedLog,
    config: OsmlConfig,
    cluster_cfg: ClusterConfig,
    seed: u64,
    /// Seconds of continuous violation before the upper scheduler migrates
    /// a service away from its node. Mirrors
    /// [`ClusterConfig::migration_patience_s`] at construction; kept
    /// public (and authoritative) for backward compatibility.
    pub migration_patience_s: f64,
}

impl Cluster {
    /// Builds a cluster of `n` identical nodes, each driven by a clone of
    /// the (trained) `scheduler` template, under the default
    /// [`ClusterConfig`] (no faults, perfect channel, legacy first-fit
    /// placement).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`; use [`Cluster::try_new`] for a typed error.
    pub fn new(n: usize, scheduler: OsmlScheduler, config: OsmlConfig, seed: u64) -> Self {
        Cluster::try_new(n, scheduler, config, ClusterConfig::default(), seed)
            .expect("cluster needs at least one node")
    }

    /// Builds a cluster of `n` nodes under an explicit [`ClusterConfig`].
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoNodes`] when `n == 0`;
    /// [`ClusterError::InvalidConfig`] when the config fails
    /// [`ClusterConfig::validate`].
    pub fn try_new(
        n: usize,
        scheduler: OsmlScheduler,
        config: OsmlConfig,
        cluster_cfg: ClusterConfig,
        seed: u64,
    ) -> Result<Self, ClusterError> {
        if n == 0 {
            return Err(ClusterError::NoNodes);
        }
        if let Err(reason) = cluster_cfg.validate() {
            return Err(ClusterError::InvalidConfig { reason });
        }
        let resilient_installs = !cluster_cfg.actuation_faults.profile.is_none();
        let agents: Vec<NodeAgent> = (0..n)
            .map(|i| {
                let server = SimServer::new(SimConfig {
                    seed: seed ^ (i as u64) << 32,
                    ..SimConfig::default()
                });
                // Re-salt the per-node call-level plan so nodes draw
                // independent fault streams from one configured profile.
                let plan = FaultPlan {
                    seed: cluster_cfg.actuation_faults.seed ^ ((i as u64) << 16),
                    profile: cluster_cfg.actuation_faults.profile.clone(),
                };
                NodeAgent {
                    index: i,
                    node: FaultySubstrate::new(server, plan),
                    scheduler: scheduler.clone().with_config(config.clone()),
                    alive: true,
                    forced_down: false,
                    resilient_installs,
                    capacity: cluster_cfg.node_faults.health(i, 0.0).capacity(),
                    residents: Vec::new(),
                    fence: BTreeMap::new(),
                    seen: SeqWindow::new(),
                    reply_cache: BTreeMap::new(),
                }
            })
            .collect();
        let mut cluster = Cluster {
            suspected: vec![false; n],
            last_heard: vec![0.0; n],
            last_ping: vec![f64::NEG_INFINITY; n],
            capacity: (0..n).map(|i| cluster_cfg.node_faults.health(i, 0.0).capacity()).collect(),
            partitioned: vec![false; n],
            cmd_channel: Channel::from_plan(&cluster_cfg.channel, CMD_CHANNEL_SALT),
            reply_channel: Channel::from_plan(&cluster_cfg.channel, REPLY_CHANNEL_SALT),
            next_seq: vec![0; n],
            pending_teardowns: Vec::new(),
            parked: BTreeMap::new(),
            epochs: BTreeMap::new(),
            physically_gone: BTreeSet::new(),
            agents,
            services: Vec::new(),
            dispositions: BTreeMap::new(),
            next_id: 0,
            migrations: 0,
            failovers: 0,
            evictions: 0,
            migrations_suppressed: 0,
            warmup_charged_s: 0.0,
            suspicions: 0,
            false_suspicions: 0,
            readopted: 0,
            fenced_ghosts: 0,
            command_backoff_ms: 0.0,
            placement_draws: 0,
            clock: 0.0,
            tick: 0,
            log: UnifiedLog::new(),
            migration_patience_s: cluster_cfg.migration_patience_s,
            config,
            cluster_cfg,
            seed,
        };
        for i in 0..n {
            if !cluster.cluster_cfg.node_faults.is_none()
                && !cluster.cluster_cfg.node_faults.health(i, 0.0).is_up()
            {
                cluster.agents[i].alive = false;
                cluster.suspected[i] = true;
                cluster.log.push(0, 0.0, None, EventBody::World(WorldFact::NodeFailed { node: i }));
            }
        }
        Ok(cluster)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.agents.len()
    }

    /// Whether the cluster has no nodes (never true; see [`Cluster::try_new`]).
    pub fn is_empty(&self) -> bool {
        self.agents.is_empty()
    }

    /// QoS-violation migrations committed so far.
    pub fn migrations(&self) -> usize {
        self.migrations
    }

    /// Node-death failovers committed so far.
    pub fn failovers(&self) -> usize {
        self.failovers
    }

    /// Services evicted (typed loss: no surviving node could host them).
    pub fn evictions(&self) -> usize {
        self.evictions
    }

    /// QoS migrations suppressed by an exhausted per-service budget.
    pub fn migrations_suppressed(&self) -> usize {
        self.migrations_suppressed
    }

    /// Total warm-up seconds charged to migration destinations.
    pub fn warmup_charged_s(&self) -> f64 {
        self.warmup_charged_s
    }

    /// Times the cluster transitioned into suspecting a node dead.
    pub fn suspicions(&self) -> usize {
        self.suspicions
    }

    /// Suspicions raised against nodes that were in fact alive (merely
    /// partitioned) — ground-truth bookkeeping the protocol itself never
    /// sees, exported for harness metrics.
    pub fn false_suspicions(&self) -> usize {
        self.false_suspicions
    }

    /// Services re-adopted from a reconnecting node instead of fenced.
    pub fn readopted(&self) -> usize {
        self.readopted
    }

    /// Stale replicas destroyed by epoch fencing after late delivery.
    pub fn fenced_ghosts(&self) -> usize {
        self.fenced_ghosts
    }

    /// Total backoff charged to command-level (transport) retries, ms.
    pub fn command_backoff_ms(&self) -> f64 {
        self.command_backoff_ms
    }

    /// Live replicas that do not match any tracked `(id, node, epoch)` —
    /// ghosts awaiting fencing (or re-adoption). Zero under the full
    /// protocol once links heal; the no-fencing ablation accumulates them.
    pub fn ghost_replicas(&self) -> usize {
        let total: usize = self.agents.iter().map(|a| a.residents.len()).sum();
        // Each tracked service accounts for at most one physical replica;
        // every resident beyond that — wrong epoch, wrong node, or a
        // same-epoch double-place — is a ghost.
        let matched = self
            .services
            .iter()
            .filter(|t| {
                self.agents[t.handle.node]
                    .residents
                    .iter()
                    .any(|&(id, _, e)| id == t.handle.id && e == t.epoch)
            })
            .count();
        total - matched
    }

    /// Physical replica count of a cluster id across all nodes (exactly
    /// one for a running service under the full protocol).
    pub fn replicas_of(&self, id: u64) -> usize {
        self.agents.iter().flat_map(|a| a.residents.iter()).filter(|r| r.0 == id).count()
    }

    /// Cumulative transport fault counters as `(commands, replies)`.
    pub fn channel_stats(&self) -> (ChannelStats, ChannelStats) {
        (self.cmd_channel.stats(), self.reply_channel.stats())
    }

    /// Cluster ids issued so far (every one has a disposition).
    pub fn submitted(&self) -> u64 {
        self.next_id
    }

    /// Current disposition of a cluster id, if it was ever issued.
    pub fn disposition(&self, id: u64) -> Option<ServiceDisposition> {
        self.dispositions.get(&id).copied()
    }

    /// The full conservation ledger, ordered by id.
    pub fn dispositions(&self) -> Vec<(u64, ServiceDisposition)> {
        self.dispositions.iter().map(|(&id, &d)| (id, d)).collect()
    }

    /// Whether the cluster currently *believes* `node` is up. Under a
    /// lossy channel this is heartbeat-derived suspicion and can be
    /// wrong in both directions for a few seconds.
    pub fn node_is_up(&self, node: usize) -> bool {
        !self.suspected[node]
    }

    /// The cluster tier's own golden-thread log (per-node controller
    /// decisions live in each node's scheduler log).
    pub fn unified_log(&self) -> &UnifiedLog {
        &self.log
    }

    /// Services currently running, with their locations.
    pub fn services(&self) -> Vec<ServiceHandle> {
        self.services.iter().map(|t| t.handle).collect()
    }

    /// Sum of scheduling actions across all node controllers.
    pub fn total_actions(&self) -> usize {
        self.agents.iter().map(|a| a.scheduler.action_count()).sum()
    }

    // ---- control-plane plumbing -------------------------------------

    fn alloc_seq(&mut self, node: usize) -> u64 {
        let seq = self.next_seq[node];
        self.next_seq[node] += 1;
        seq
    }

    fn command_policy(&self) -> RetryPolicy {
        RetryPolicy {
            budget: self.config.actuation_retry_budget,
            backoff_base_ms: self.config.retry_backoff_base_ms,
            max_backoff_ms: self.config.max_backoff_ms,
        }
    }

    /// Sends one command copy and records any transport fault as world
    /// facts (partition drops are covered by the window facts instead).
    fn send_command(&mut self, node: usize, seq: u64, cmd: Command) {
        let report = self.cmd_channel.send(node, seq, self.clock, cmd);
        if report.dropped {
            self.log.push(
                self.tick,
                self.clock,
                None,
                EventBody::World(WorldFact::MessageDropped { node, seq }),
            );
        }
        if report.duplicated {
            self.log.push(
                self.tick,
                self.clock,
                None,
                EventBody::World(WorldFact::MessageDuplicated { node, seq }),
            );
        }
    }

    /// Delivers every due command on `node`'s link to its agent and
    /// queues the agent's replies (or a synchronous `Unreachable` verdict
    /// when a reliable transport hits a dead peer).
    fn pump_node(&mut self, node: usize) {
        let due = self.cmd_channel.deliver(node, self.clock);
        if due.is_empty() {
            return;
        }
        let fencing = self.cluster_cfg.fencing;
        let policy = self.command_policy();
        for env in due {
            let seq = env.seq;
            match self.agents[node].handle(env, self.clock, fencing, &policy) {
                Some(reply) => {
                    let report = self.reply_channel.send(node, seq, self.clock, reply);
                    if report.dropped {
                        self.log.push(
                            self.tick,
                            self.clock,
                            None,
                            EventBody::World(WorldFact::MessageDropped { node, seq }),
                        );
                    }
                    if report.duplicated {
                        self.log.push(
                            self.tick,
                            self.clock,
                            None,
                            EventBody::World(WorldFact::MessageDuplicated { node, seq }),
                        );
                    }
                }
                None => {
                    if self.cmd_channel.detects_dead_peer() {
                        // Connection refused: a reliable transport reports
                        // the dead peer instead of leaving silence.
                        let _ = self.reply_channel.send(
                            node,
                            seq,
                            self.clock,
                            NodeReply::Unreachable { node },
                        );
                    }
                }
            }
        }
    }

    /// Delivers and dispatches every due reply on `node`'s link.
    fn drain_replies(&mut self, node: usize) {
        let due = self.reply_channel.deliver(node, self.clock);
        for env in due {
            self.dispatch_reply(env);
        }
    }

    /// Handles a reply nobody is synchronously waiting for: heartbeat
    /// pongs, transport verdicts, and — the interesting ones — late acks
    /// of commands whose RPC already gave up.
    fn dispatch_reply(&mut self, env: Envelope<NodeReply>) {
        match env.msg {
            NodeReply::Pong { node, at_s, capacity, residents } => {
                self.on_pong(node, at_s, capacity, &residents);
            }
            NodeReply::Unreachable { node } => {
                if !self.suspected[node] {
                    self.suspect(node);
                }
            }
            NodeReply::Launched { id, epoch, .. } => {
                // A launch ack that outlived its RPC: the replica exists
                // but was never committed — a ghost. Fence it by exact
                // epoch (unless it happens to be the authoritative one,
                // e.g. a duplicated ack of a committed launch).
                let current = self.services.iter().find(|t| t.handle.id == id).map(|t| t.epoch);
                if self.cluster_cfg.fencing && current != Some(epoch) {
                    self.schedule_teardown(env.link, id, epoch);
                }
            }
            NodeReply::TornDown { id, epoch, removed } => {
                let before = self.pending_teardowns.len();
                self.pending_teardowns
                    .retain(|p| !(p.node == env.link && p.id == id && p.epoch == epoch));
                if removed && self.pending_teardowns.len() < before {
                    self.fenced_ghosts += 1;
                    self.log.push(
                        self.tick,
                        self.clock,
                        Some(id),
                        EventBody::World(WorldFact::Removed { cause: RemovalCause::Fenced }),
                    );
                }
            }
            NodeReply::LaunchFailed { .. } | NodeReply::Fenced { .. } => {}
        }
    }

    /// One bounded at-least-once RPC: sends `cmd` under a fresh sequence
    /// number, pumps the link, and waits (within the current instant) for
    /// the matching reply, re-sending under the same sequence number with
    /// backoff until the command budget runs out. Non-matching replies
    /// that surface meanwhile are dispatched normally.
    fn rpc(&mut self, node: usize, cmd: Command) -> Option<NodeReply> {
        let seq = self.alloc_seq(node);
        let policy = self.command_policy();
        let max_attempts = policy.budget + 1;
        let mut backoff_ms = 0.0;
        let mut attempts: u32 = 0;
        let mut result: Option<NodeReply> = None;
        while result.is_none() && attempts < max_attempts {
            attempts += 1;
            self.send_command(node, seq, cmd.clone());
            self.pump_node(node);
            for env in self.reply_channel.deliver(node, self.clock) {
                if env.seq == seq {
                    // First match completes the RPC; duplicate copies of
                    // the same ack are swallowed here, not dispatched.
                    if result.is_none() {
                        result = Some(env.msg);
                    }
                } else {
                    self.dispatch_reply(env);
                }
            }
            if result.is_none() && attempts < max_attempts {
                backoff_ms = policy.charge(attempts, backoff_ms);
            }
        }
        if attempts > 1 {
            self.command_backoff_ms += backoff_ms;
            if result.is_some() {
                self.log.push(
                    self.tick,
                    self.clock,
                    None,
                    EventBody::Telemetry(TelemetryNote::MessageRetried { attempts, backoff_ms }),
                );
            }
        }
        result
    }

    /// Registers (and immediately sends) an epoch-exact teardown that
    /// must eventually be acknowledged; deduplicated per
    /// `(node, id, epoch)`, re-sent every step until its ack arrives.
    fn schedule_teardown(&mut self, node: usize, id: u64, epoch: u64) {
        if self.pending_teardowns.iter().any(|p| p.node == node && p.id == id && p.epoch == epoch) {
            return;
        }
        let seq = self.alloc_seq(node);
        self.pending_teardowns.push(PendingTeardown { node, id, epoch, seq });
        self.send_command(node, seq, Command::Teardown { id, epoch });
        self.pump_node(node);
        self.drain_replies(node);
    }

    /// Re-sends every unacknowledged teardown (same sequence numbers, so
    /// node-side dedup absorbs the repeats).
    fn retry_pending(&mut self) {
        if self.pending_teardowns.is_empty() {
            return;
        }
        let pending: Vec<PendingTeardown> = self.pending_teardowns.clone();
        let mut links: Vec<usize> = Vec::new();
        for p in pending {
            self.send_command(p.node, p.seq, Command::Teardown { id: p.id, epoch: p.epoch });
            if !links.contains(&p.node) {
                links.push(p.node);
            }
        }
        for node in links {
            self.pump_node(node);
            self.drain_replies(node);
        }
    }

    fn next_epoch(&mut self, id: u64) -> u64 {
        let e = self.epochs.entry(id).or_insert(0);
        *e += 1;
        *e
    }

    // ---- heartbeats, suspicion, reconciliation ----------------------

    /// Sends the periodic heartbeat probe and processes whatever comes
    /// back within the instant.
    fn heartbeat(&mut self, node: usize) {
        if self.clock - self.last_ping[node] < self.cluster_cfg.heartbeat_interval_s {
            return;
        }
        self.last_ping[node] = self.clock;
        let seq = self.alloc_seq(node);
        self.send_command(node, seq, Command::Ping);
        self.pump_node(node);
        self.drain_replies(node);
    }

    /// Heartbeat-timeout failure detection — only for transports that
    /// cannot prove a dead peer. Silence past the timeout turns into
    /// suspicion, rightly or wrongly.
    fn check_timeout(&mut self, node: usize) {
        if self.cmd_channel.detects_dead_peer() {
            return;
        }
        if !self.suspected[node]
            && self.clock - self.last_heard[node] >= self.cluster_cfg.heartbeat_timeout_s
        {
            self.suspect(node);
        }
    }

    /// A fresh pong: liveness proof, capacity gauge, and — with fencing —
    /// the discovery list reconciliation runs on.
    fn on_pong(&mut self, node: usize, at_s: f64, capacity: f64, residents: &[(u64, AppId, u64)]) {
        if at_s < self.last_heard[node] {
            // A delayed pong superseded by a fresher one: its snapshot
            // must not vote on anything.
            return;
        }
        self.last_heard[node] = self.clock;
        if !self.cmd_channel.detects_dead_peer() {
            self.capacity[node] = capacity;
        }
        if self.suspected[node] {
            self.clear_suspicion(node, residents);
        } else if self.cluster_cfg.fencing {
            self.rehome_missing(node, at_s, residents);
        }
    }

    /// The cluster now believes `node` is dead: every service tracked
    /// there is stranded and failed over (or evicted — parked for
    /// re-adoption, since the belief may be wrong).
    fn suspect(&mut self, node: usize) {
        self.suspected[node] = true;
        self.suspicions += 1;
        if self.agents[node].alive {
            self.false_suspicions += 1;
        }
        if !self.cmd_channel.detects_dead_peer() {
            self.log.push(
                self.tick,
                self.clock,
                None,
                EventBody::World(WorldFact::NodeSuspected { node }),
            );
        }
        let mut stranded: Vec<Tracked> = Vec::new();
        let mut idx = 0;
        while idx < self.services.len() {
            if self.services[idx].handle.node == node {
                stranded.push(self.services.remove(idx));
            } else {
                idx += 1;
            }
        }
        for t in stranded {
            let id = t.handle.id;
            if !self.physically_gone.remove(&id) {
                // The replica's physical death was never ledgered — the
                // node may in fact be alive. Record the *believed* loss so
                // the fold's layouts track the authoritative view.
                self.log.push(
                    self.tick,
                    self.clock,
                    Some(id),
                    EventBody::World(WorldFact::Removed { cause: RemovalCause::NodeFailure }),
                );
            }
            if self.cluster_cfg.failover {
                self.log.push(
                    self.tick,
                    self.clock,
                    Some(id),
                    EventBody::Decision(Decision::MigrationRequested),
                );
                if let Some((_, _, post)) = self.replace(&t, None) {
                    self.failovers += 1;
                    self.emit_launched(id, t.spec, post, LaunchCause::Failover);
                    self.emit_migration_alloc(id, None, post);
                    if !self.cmd_channel.detects_dead_peer() {
                        // The old replica may still be running behind the
                        // partition: fence it by its exact epoch. A
                        // reliable transport proved the peer dead — there
                        // is nothing to tear down.
                        self.schedule_teardown(node, id, t.epoch);
                    }
                    continue;
                }
            }
            self.parked.insert(
                id,
                Parked { spec: t.spec, epoch: t.epoch, migrations_used: t.migrations_used },
            );
            self.evict(id);
        }
    }

    /// A suspected node answered again: lift the suspicion and reconcile
    /// whatever it is still hosting by epoch comparison.
    fn clear_suspicion(&mut self, node: usize, residents: &[(u64, AppId, u64)]) {
        self.suspected[node] = false;
        if !self.cmd_channel.detects_dead_peer() {
            self.log.push(
                self.tick,
                self.clock,
                None,
                EventBody::World(WorldFact::NodeSuspicionCleared { node }),
            );
        }
        if self.cluster_cfg.fencing {
            self.reconcile(node, residents);
        }
    }

    /// Epoch-compares a reconnecting node's residents against the
    /// authoritative state: current-epoch replicas of parked (evicted)
    /// services are re-adopted, everything else is fenced.
    fn reconcile(&mut self, node: usize, residents: &[(u64, AppId, u64)]) {
        for &(id, app, epoch) in residents {
            let authoritative = self
                .services
                .iter()
                .any(|t| t.handle.id == id && t.handle.node == node && t.epoch == epoch);
            if authoritative {
                continue;
            }
            let readoptable = self.parked.get(&id).map(|p| p.epoch == epoch).unwrap_or(false)
                && self.dispositions.get(&id) == Some(&ServiceDisposition::Evicted);
            if readoptable {
                let Some(settled) = self.agents[node].node.allocation(app) else {
                    self.schedule_teardown(node, id, epoch);
                    continue;
                };
                let p = self.parked.remove(&id).expect("checked above");
                self.services.push(Tracked {
                    handle: ServiceHandle { id, node, app },
                    spec: p.spec,
                    epoch,
                    violating_since: None,
                    warm_until: 0.0,
                    migrations_used: p.migrations_used,
                    settled_s: self.clock,
                });
                self.dispositions.insert(id, ServiceDisposition::Running);
                self.readopted += 1;
                self.emit_launched(id, p.spec, settled, LaunchCause::Readopted);
            } else {
                self.schedule_teardown(node, id, epoch);
            }
        }
    }

    /// A fresh pong from an *unsuspected* node is also an existence
    /// proof: any service tracked there but absent from the snapshot
    /// (placed before the snapshot was taken) lost its replica without a
    /// suspicion window — e.g. a crash shorter than the heartbeat
    /// timeout. Re-place it instead of tracking a zombie.
    fn rehome_missing(&mut self, node: usize, at_s: f64, residents: &[(u64, AppId, u64)]) {
        let reported: BTreeSet<u64> = residents.iter().map(|r| r.0).collect();
        let missing: Vec<u64> = self
            .services
            .iter()
            .filter(|t| {
                t.handle.node == node && t.settled_s < at_s && !reported.contains(&t.handle.id)
            })
            .map(|t| t.handle.id)
            .collect();
        for id in missing {
            let Some(pos) = self.services.iter().position(|t| t.handle.id == id) else {
                continue;
            };
            let t = self.services.remove(pos);
            if !self.physically_gone.remove(&id) {
                self.log.push(
                    self.tick,
                    self.clock,
                    Some(id),
                    EventBody::World(WorldFact::Removed { cause: RemovalCause::NodeFailure }),
                );
            }
            if self.cluster_cfg.failover {
                self.log.push(
                    self.tick,
                    self.clock,
                    Some(id),
                    EventBody::Decision(Decision::MigrationRequested),
                );
                if let Some((_, _, post)) = self.replace(&t, None) {
                    self.failovers += 1;
                    self.emit_launched(id, t.spec, post, LaunchCause::Failover);
                    self.emit_migration_alloc(id, None, post);
                    continue;
                }
            }
            self.evict(id);
        }
    }

    // ---- ground-truth node health -----------------------------------

    /// Reconciles one agent's ground-truth health with the fault plan (or
    /// the chaos-hook override under a none plan). Down transitions drain
    /// the node and ledger the losses; what the *cluster* believes is a
    /// separate, later question for the heartbeat path.
    fn refresh_agent(&mut self, node: usize) {
        let target = if !self.cluster_cfg.node_faults.is_none() {
            self.agents[node].forced_down = false;
            self.cluster_cfg.node_faults.health(node, self.clock).is_up()
        } else {
            !self.agents[node].forced_down
        };
        let alive = self.agents[node].alive;
        if alive && !target {
            self.take_node_down(node);
        } else if !alive && target {
            self.agents[node].alive = true;
            self.log.push(
                self.tick,
                self.clock,
                None,
                EventBody::World(WorldFact::NodeRecovered { node }),
            );
        }
        if self.agents[node].alive {
            self.agents[node].capacity =
                self.cluster_cfg.node_faults.health(node, self.clock).capacity();
        }
    }

    /// Ground-truth node death: processes drain with it. Tracked and
    /// parked residents get their removal ledgered now (a world fact,
    /// independent of when the cluster's belief catches up); anonymous
    /// ghosts never had a launch fact, so they die unrecorded.
    fn take_node_down(&mut self, node: usize) {
        self.log.push(
            self.tick,
            self.clock,
            None,
            EventBody::World(WorldFact::NodeFailed { node }),
        );
        let drained = self.agents[node].crash();
        let mut seen_ids: Vec<u64> = Vec::new();
        for (id, _, _) in drained {
            if seen_ids.contains(&id) {
                continue;
            }
            seen_ids.push(id);
            let tracked = self.services.iter().any(|t| t.handle.id == id);
            let parked = self.parked.remove(&id).is_some();
            if tracked {
                self.physically_gone.insert(id);
            }
            if tracked || parked {
                self.log.push(
                    self.tick,
                    self.clock,
                    Some(id),
                    EventBody::World(WorldFact::Removed { cause: RemovalCause::NodeFailure }),
                );
            }
        }
    }

    /// Logs partition-window transitions for `node` as world facts.
    fn note_partition_transitions(&mut self, node: usize) {
        let inside = self.cluster_cfg.channel.partitioned(node, self.clock);
        if inside == self.partitioned[node] {
            return;
        }
        self.partitioned[node] = inside;
        let fact = if inside {
            WorldFact::PartitionStarted { node }
        } else {
            WorldFact::PartitionHealed { node }
        };
        self.log.push(self.tick, self.clock, None, EventBody::World(fact));
    }

    // ---- placement --------------------------------------------------

    /// Candidate nodes for a placement, best first: unsuspected nodes
    /// only (minus `exclude`), ranked by the configured
    /// [`PlacementPolicy`].
    fn candidates(&mut self, exclude: Option<usize>) -> Vec<usize> {
        let mut order: Vec<usize> =
            (0..self.agents.len()).filter(|&i| !self.suspected[i] && Some(i) != exclude).collect();
        match self.cluster_cfg.policy {
            PlacementPolicy::FirstFit => {
                order.sort_by_key(|&i| std::cmp::Reverse(self.agents[i].node.idle_cores().count()));
            }
            PlacementPolicy::InterferenceScore => {
                let mut scored: Vec<(usize, f64)> =
                    order.into_iter().map(|i| (i, self.node_score(i))).collect();
                scored.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
                });
                order = scored.into_iter().map(|(i, _)| i).collect();
            }
            PlacementPolicy::Random => {
                // Null-hypothesis baseline: a seeded shuffle, one fresh
                // draw stream per placement attempt.
                self.placement_draws += 1;
                let draw = self.placement_draws;
                let mut scored: Vec<(usize, f64)> = order
                    .into_iter()
                    .map(|i| (i, hash01(self.seed, (draw << 8) ^ i as u64, PLACEMENT_SALT)))
                    .collect();
                scored.sort_by(|a, b| {
                    a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
                });
                order = scored.into_iter().map(|(i, _)| i).collect();
            }
        }
        order
    }

    /// Interference-aware placement score; higher is a better destination.
    /// Free capacity (idle core and LLC-way fractions) scaled by the last
    /// known node health, minus the QoS pressure of residents: a service
    /// already at 90 % of its latency target contributes its overshoot,
    /// so newcomers avoid nodes whose tenants have no slack left.
    fn node_score(&self, node: usize) -> f64 {
        let server = &self.agents[node].node;
        let topo = server.topology();
        let idle_cores = server.idle_cores().count() as f64 / topo.logical_cores() as f64;
        let idle_ways = server.idle_way_count() as f64 / topo.llc_ways() as f64;
        let mut pressure = 0.0;
        for t in self.services.iter().filter(|t| t.handle.node == node) {
            if let Some(lat) = server.latency(t.handle.app) {
                pressure += (lat.p95_ms / lat.qos_target_ms - 0.9).max(0.0);
            }
        }
        self.capacity[node] * (idle_cores + idle_ways) - pressure
    }

    /// Submits a new service, trying candidate nodes best-first and
    /// falling back through every believed-up node before declaring the
    /// cluster full. Either way the outcome is ledgered: `Running` or
    /// `Rejected`.
    pub fn submit(&mut self, spec: LaunchSpec) -> ClusterPlacement {
        let id = self.next_id;
        self.next_id += 1;
        self.log.push(
            self.tick,
            self.clock,
            Some(id),
            EventBody::World(WorldFact::ArrivalDue {
                workload: id,
                service: spec.service,
                class: SloClass::LatencyCritical,
                threads: spec.threads,
                offered_rps: spec.offered_rps,
            }),
        );
        for node in self.candidates(None) {
            let epoch = self.next_epoch(id);
            match self.rpc(node, Command::Launch { id, epoch, spec, resilient: false }) {
                Some(NodeReply::Launched { app, post, retried, gave_up, .. }) => {
                    self.emit_install_telemetry(id, &retried, gave_up);
                    let handle = ServiceHandle { id, node, app };
                    self.emit_launched(id, spec, post, LaunchCause::Scripted);
                    self.services.push(Tracked {
                        handle,
                        spec,
                        epoch,
                        violating_since: None,
                        warm_until: 0.0,
                        migrations_used: 0,
                        settled_s: self.clock,
                    });
                    self.dispositions.insert(id, ServiceDisposition::Running);
                    return ClusterPlacement::Placed(handle);
                }
                Some(NodeReply::LaunchFailed { retried, gave_up, .. }) => {
                    self.emit_install_telemetry(id, &retried, gave_up);
                }
                _ => {}
            }
        }
        self.dispositions.insert(id, ServiceDisposition::Rejected);
        self.log.push(
            self.tick,
            self.clock,
            Some(id),
            EventBody::Decision(Decision::Rejected { reason: RejectReason::InsufficientResources }),
        );
        ClusterPlacement::ClusterFull
    }

    /// Logs the install-path retry telemetry a launch reply carried.
    fn emit_install_telemetry(&mut self, id: u64, retried: &[(u32, f64)], gave_up: bool) {
        for &(attempts, backoff_ms) in retried {
            self.log.push(
                self.tick,
                self.clock,
                Some(id),
                EventBody::Telemetry(TelemetryNote::Retried { attempts, backoff_ms }),
            );
        }
        if gave_up {
            self.log.push(
                self.tick,
                self.clock,
                Some(id),
                EventBody::Telemetry(TelemetryNote::FaultObserved { transient: true }),
            );
        }
    }

    /// Logs the cluster-level launch fact. The recorded allocation is the
    /// placement-settled one (node-local Model-A/B decisions live in the
    /// per-node scheduler logs), so the cluster fold tracks real layouts.
    fn emit_launched(
        &mut self,
        id: u64,
        spec: LaunchSpec,
        settled: Allocation,
        cause: LaunchCause,
    ) {
        self.log.push(
            self.tick,
            self.clock,
            Some(id),
            EventBody::World(WorldFact::Launched {
                workload: id,
                service: spec.service,
                class: SloClass::LatencyCritical,
                threads: spec.threads,
                offered_rps: spec.offered_rps,
                bootstrap: settled,
                cause,
            }),
        );
    }

    /// Logs the committed-migration decision pair for `id`.
    fn emit_migration_alloc(&mut self, id: u64, pre: Option<Allocation>, post: Allocation) {
        self.log.push(
            self.tick,
            self.clock,
            Some(id),
            EventBody::Decision(Decision::Alloc {
                kind: ActionKind::Migrate,
                provenance: Provenance::Controller,
                pre,
                post,
                counts_as_action: true,
            }),
        );
    }

    /// Transactionally re-places `t` (already out of `services`) on the
    /// best believed-up candidate, through a fenced launch RPC. On
    /// success the new residency is tracked and ledgered and
    /// `(node, app, settled allocation)` returned; the caller owns source
    /// teardown and log emission, so the destination launch always
    /// commits before any source replica is released.
    fn replace(
        &mut self,
        t: &Tracked,
        exclude: Option<usize>,
    ) -> Option<(usize, AppId, Allocation)> {
        let id = t.handle.id;
        for node in self.candidates(exclude) {
            let epoch = self.next_epoch(id);
            match self.rpc(node, Command::Launch { id, epoch, spec: t.spec, resilient: true }) {
                Some(NodeReply::Launched { app, post, retried, gave_up, .. }) => {
                    self.emit_install_telemetry(id, &retried, gave_up);
                    let warm_until = self.agents[node].node.now() + self.cluster_cfg.warmup_cost_s;
                    self.warmup_charged_s += self.cluster_cfg.warmup_cost_s;
                    self.services.push(Tracked {
                        handle: ServiceHandle { id, node, app },
                        spec: t.spec,
                        epoch,
                        violating_since: None,
                        warm_until,
                        migrations_used: t.migrations_used + 1,
                        settled_s: self.clock,
                    });
                    self.dispositions.insert(id, ServiceDisposition::Running);
                    self.physically_gone.remove(&id);
                    return Some((node, app, post));
                }
                Some(NodeReply::LaunchFailed { retried, gave_up, .. }) => {
                    self.emit_install_telemetry(id, &retried, gave_up);
                }
                _ => {}
            }
        }
        None
    }

    /// Ledger a typed eviction: capacity is genuinely (believed) gone.
    fn evict(&mut self, id: u64) {
        self.evictions += 1;
        self.dispositions.insert(id, ServiceDisposition::Evicted);
        self.log.push(
            self.tick,
            self.clock,
            Some(id),
            EventBody::Decision(Decision::Rejected { reason: RejectReason::InsufficientResources }),
        );
    }

    /// Manually kills a node (chaos hook): ground truth and belief move
    /// together, draining and failing over exactly as a plan-scripted
    /// death would. Idempotent — a dead node stays dead. Under a non-none
    /// [`NodeFaultPlan`](osml_platform::NodeFaultPlan) the plan remains
    /// authoritative: the next [`Cluster::run`] step may revive the node
    /// if the plan says it is healthy.
    pub fn kill_node(&mut self, node: usize) {
        if self.suspected[node] {
            if self.agents[node].alive {
                // Already evicted/failed over by suspicion; the kill just
                // makes the belief true.
                self.agents[node].forced_down = true;
                self.take_node_down(node);
            }
            return;
        }
        self.agents[node].forced_down = true;
        if self.agents[node].alive {
            self.take_node_down(node);
        }
        self.suspect(node);
    }

    /// Manually revives a dead (or falsely suspected) node, with
    /// out-of-band operator knowledge standing in for a heartbeat:
    /// suspicion clears immediately and residents are reconciled from
    /// ground truth. Idempotent.
    pub fn restore_node(&mut self, node: usize) {
        self.agents[node].forced_down = false;
        if !self.agents[node].alive {
            self.agents[node].alive = true;
            self.agents[node].capacity =
                self.cluster_cfg.node_faults.health(node, self.clock).capacity();
            self.log.push(
                self.tick,
                self.clock,
                None,
                EventBody::World(WorldFact::NodeRecovered { node }),
            );
        }
        if self.suspected[node] {
            self.last_heard[node] = self.clock;
            let residents = self.agents[node].residents.clone();
            self.clear_suspicion(node, &residents);
        }
    }

    /// Removes a service from the cluster (completion). The handle is
    /// resolved by its cluster [`ServiceHandle::id`] — never by its
    /// possibly stale `(node, app)` pair — so handles issued before a
    /// migration or failover keep working.
    ///
    /// Returns false if the id is not running (already finished, evicted
    /// or rejected).
    pub fn finish(&mut self, handle: ServiceHandle) -> bool {
        self.finish_id(handle.id)
    }

    /// Removes the running service with cluster id `id` (completion).
    /// The physical teardown is an epoch-fenced, at-least-once command;
    /// if the node is unreachable it stays pending until acknowledged.
    pub fn finish_id(&mut self, id: u64) -> bool {
        let Some(pos) = self.services.iter().position(|t| t.handle.id == id) else {
            return false;
        };
        let t = self.services.remove(pos);
        let node = t.handle.node;
        if self.suspected[node] {
            self.schedule_teardown(node, id, t.epoch);
        } else {
            match self.rpc(node, Command::Teardown { id, epoch: t.epoch }) {
                Some(NodeReply::TornDown { .. }) => {}
                _ => self.schedule_teardown(node, id, t.epoch),
            }
        }
        self.dispositions.insert(id, ServiceDisposition::Finished);
        if !self.physically_gone.remove(&id) {
            self.log.push(
                self.tick,
                self.clock,
                Some(id),
                EventBody::World(WorldFact::Removed { cause: RemovalCause::ScriptedDeparture }),
            );
        }
        true
    }

    /// Current location of the service with cluster id `id`.
    pub fn locate(&self, id: u64) -> Option<ServiceHandle> {
        self.services.iter().find(|t| t.handle.id == id).map(|t| t.handle)
    }

    /// Current p95/target ratio of a service, if running. Resolved by
    /// cluster id, so the answer tracks migrations and failover.
    pub fn latency_over_target(&self, id: u64) -> Option<f64> {
        let t = self.services.iter().find(|t| t.handle.id == id)?;
        let lat = self.agents[t.handle.node].node.latency(t.handle.app)?;
        Some(lat.p95_ms / lat.qos_target_ms)
    }

    /// Runs every node forward by `seconds` (1 Hz monitoring). Each step:
    /// per-node ground-truth health and channel pumping (partition facts,
    /// heartbeats, suspicion), then pending teardown re-sends, then the
    /// per-node controllers, then QoS-violation migrations.
    pub fn run(&mut self, seconds: f64) {
        let steps = seconds.max(0.0).round() as usize;
        for _ in 0..steps {
            self.clock += 1.0;
            if self.cmd_channel.detects_dead_peer() {
                // A reliable management network implies ambient capacity
                // gauges; a lossy one only learns capacity from pongs.
                for node in 0..self.agents.len() {
                    self.capacity[node] =
                        self.cluster_cfg.node_faults.health(node, self.clock).capacity();
                }
            }
            for node in 0..self.agents.len() {
                self.note_partition_transitions(node);
                self.refresh_agent(node);
                self.pump_node(node);
                self.drain_replies(node);
                self.heartbeat(node);
                self.check_timeout(node);
            }
            self.retry_pending();
            for node in 0..self.agents.len() {
                self.agents[node].step();
            }
            self.check_migrations();
            self.tick += 1;
            self.log.push(self.tick, self.clock, None, EventBody::World(WorldFact::TickElapsed));
        }
    }

    fn check_migrations(&mut self) {
        let mut to_migrate: Vec<usize> = Vec::new();
        for (idx, tracked) in self.services.iter_mut().enumerate() {
            let node = &self.agents[tracked.handle.node].node;
            let now = node.now();
            if now < tracked.warm_until {
                // Paid warm-up after a migration: early samples are
                // unrepresentative, so the violation clock is suspended.
                tracked.violating_since = None;
                continue;
            }
            let violating =
                node.latency(tracked.handle.app).map(|l| l.violates_qos()).unwrap_or(false);
            if violating {
                let since = *tracked.violating_since.get_or_insert(now);
                if now - since > self.migration_patience_s {
                    to_migrate.push(idx);
                }
            } else {
                tracked.violating_since = None;
            }
        }
        // Migrate in reverse index order so removals stay valid.
        for idx in to_migrate.into_iter().rev() {
            if self.services[idx].migrations_used >= self.cluster_cfg.migration_budget {
                // Budget exhausted: stay put rather than thrash; wait a
                // full patience window before reconsidering.
                self.migrations_suppressed += 1;
                self.services[idx].violating_since = None;
                continue;
            }
            let t = self.services.remove(idx);
            let id = t.handle.id;
            let from = t.handle.node;
            self.log.push(
                self.tick,
                self.clock,
                Some(id),
                EventBody::Decision(Decision::MigrationRequested),
            );
            let pre = self.agents[from].node.allocation(t.handle.app);
            if let Some((_, _, post)) = self.replace(&t, Some(from)) {
                // The destination is committed: only now is the source
                // replica released — an epoch-exact teardown that stays
                // pending (and re-sent) if the ack does not arrive, so a
                // mid-flight partition can never yield zero — or two —
                // authoritative replicas.
                match self.rpc(from, Command::Teardown { id, epoch: t.epoch }) {
                    Some(NodeReply::TornDown { .. }) => {}
                    _ => self.schedule_teardown(from, id, t.epoch),
                }
                self.migrations += 1;
                self.log.push(
                    self.tick,
                    self.clock,
                    Some(id),
                    EventBody::World(WorldFact::Removed { cause: RemovalCause::Migrated }),
                );
                self.emit_launched(id, t.spec, post, LaunchCause::Failover);
                self.emit_migration_alloc(id, pre, post);
            } else {
                // No destination would take it: the service never left
                // its node. The attempt still burns budget (anti-thrash)
                // and the violation clock restarts.
                let mut t = t;
                t.violating_since = None;
                t.migrations_used += 1;
                self.services.insert(idx, t);
            }
        }
    }

    /// Which services run on `node`.
    pub fn services_on(&self, node: usize) -> Vec<Service> {
        self.services.iter().filter(|t| t.handle.node == node).map(|t| t.spec.service).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Models;
    use osml_models::{ModelA, ModelB, ModelBPrime, ModelC};
    use osml_platform::{
        ChannelPlan, FailWindow, FaultProfile, NodeCrash, NodeFaultPlan, PartitionWindow,
    };

    /// A scheduler with untrained models is still structurally valid for
    /// cluster-plumbing tests (predictions are arbitrary but legal).
    fn raw_scheduler() -> OsmlScheduler {
        OsmlScheduler::new(
            Models {
                model_a: ModelA::new(36, 20, 1),
                model_b: ModelB::new(36, 20, 2),
                model_b_prime: ModelBPrime::new(3),
                model_c: ModelC::new(4),
            },
            OsmlConfig::default(),
        )
    }

    /// A plan crashing `node` at `at_s`, optionally recovering.
    fn crash_plan(node: usize, at_s: f64, recover_s: Option<f64>) -> ClusterConfig {
        ClusterConfig {
            node_faults: NodeFaultPlan {
                crashes: vec![NodeCrash { node, at_s, recover_s }],
                ..NodeFaultPlan::none()
            },
            policy: PlacementPolicy::InterferenceScore,
            ..ClusterConfig::default()
        }
    }

    /// A channel plan that only partitions `node` during `[from, until)`.
    fn partition_plan(node: usize, from: f64, until: f64) -> ChannelPlan {
        ChannelPlan {
            partitions: vec![PartitionWindow { node, start_s: from, end_s: until }],
            ..ChannelPlan::none()
        }
    }

    #[test]
    fn services_spread_across_nodes() {
        let mut cluster = Cluster::new(2, raw_scheduler(), OsmlConfig::default(), 5);
        let mut nodes_used = std::collections::HashSet::new();
        for _ in 0..2 {
            match cluster.submit(LaunchSpec::at_percent_load(Service::Moses, 40.0)) {
                ClusterPlacement::Placed(h) => {
                    nodes_used.insert(h.node);
                }
                ClusterPlacement::ClusterFull => panic!("two nodes cannot be full"),
            }
        }
        // First-fit-by-idle sends the second service to the other node.
        assert_eq!(nodes_used.len(), 2);
        assert_eq!(cluster.services().len(), 2);
    }

    #[test]
    fn finish_releases_resources() {
        let mut cluster = Cluster::new(1, raw_scheduler(), OsmlConfig::default(), 6);
        let ClusterPlacement::Placed(h) =
            cluster.submit(LaunchSpec::at_percent_load(Service::Login, 20.0))
        else {
            panic!("placement failed");
        };
        let idle_during = cluster.agents[0].node.idle_cores().count();
        assert!(cluster.finish(h));
        assert!(!cluster.finish(h), "double-finish must be rejected");
        assert!(cluster.agents[0].node.idle_cores().count() > idle_during);
        assert!(cluster.services().is_empty());
        assert_eq!(cluster.disposition(h.id), Some(ServiceDisposition::Finished));
    }

    #[test]
    fn overloaded_service_is_migrated() {
        let mut cluster = Cluster::new(2, raw_scheduler(), OsmlConfig::default(), 7);
        cluster.migration_patience_s = 5.0;
        // Node 0: a service whose (untrained-model) allocation will violate.
        let ClusterPlacement::Placed(h) =
            cluster.submit(LaunchSpec::at_percent_load(Service::Xapian, 80.0))
        else {
            panic!("placement failed");
        };
        // Crowd node h.node so the controller cannot fix the violation...
        // (with untrained models the violation simply persists).
        cluster.run(40.0);
        // Either it was healed in place or migrated; in both cases the
        // service must still be somewhere in the cluster.
        assert!(cluster.locate(h.id).is_some(), "service must not be lost");
    }

    #[test]
    fn run_advances_all_nodes() {
        let mut cluster = Cluster::new(3, raw_scheduler(), OsmlConfig::default(), 8);
        cluster.run(10.0);
        for agent in &cluster.agents {
            assert!((agent.node.now() - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_nodes_is_a_typed_error() {
        let err = Cluster::try_new(
            0,
            raw_scheduler(),
            OsmlConfig::default(),
            ClusterConfig::default(),
            1,
        )
        .unwrap_err();
        assert_eq!(err, ClusterError::NoNodes);
        assert_eq!(err.to_string(), "cluster needs at least one node");
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics_through_the_legacy_constructor() {
        let _ = Cluster::new(0, raw_scheduler(), OsmlConfig::default(), 1);
    }

    #[test]
    fn invalid_configs_are_typed_errors() {
        let bad: Vec<ClusterConfig> = vec![
            ClusterConfig { warmup_cost_s: 0.0, ..ClusterConfig::default() },
            ClusterConfig { warmup_cost_s: -1.0, ..ClusterConfig::default() },
            ClusterConfig { heartbeat_interval_s: 0.0, ..ClusterConfig::default() },
            ClusterConfig {
                heartbeat_interval_s: 5.0,
                heartbeat_timeout_s: 5.0,
                ..ClusterConfig::default()
            },
            ClusterConfig { migration_budget: 0, ..ClusterConfig::default() },
            ClusterConfig {
                channel: ChannelPlan { drop_prob: 1.5, ..ChannelPlan::none() },
                ..ClusterConfig::default()
            },
        ];
        for cfg in bad {
            let err =
                Cluster::try_new(2, raw_scheduler(), OsmlConfig::default(), cfg, 1).unwrap_err();
            assert!(
                matches!(err, ClusterError::InvalidConfig { .. }),
                "expected InvalidConfig, got {err:?}"
            );
            assert!(err.to_string().starts_with("invalid cluster config:"));
        }
        // The default config itself must validate.
        assert!(ClusterConfig::default().validate().is_ok());
    }

    #[test]
    fn node_death_fails_services_over_to_survivors() {
        let cfg = crash_plan(0, 5.0, None);
        let mut cluster =
            Cluster::try_new(2, raw_scheduler(), OsmlConfig::default(), cfg, 11).unwrap();
        let ClusterPlacement::Placed(h) =
            cluster.submit(LaunchSpec::at_percent_load(Service::Moses, 30.0))
        else {
            panic!("placement failed");
        };
        assert_eq!(h.node, 0, "first-fit on an empty fleet starts at node 0");
        cluster.run(10.0);
        assert!(!cluster.node_is_up(0));
        assert_eq!(cluster.failovers(), 1);
        assert_eq!(cluster.evictions(), 0);
        let here = cluster.locate(h.id).expect("failover keeps the service in the cluster");
        assert_eq!(here.node, 1, "re-placed on the survivor");
        assert_eq!(cluster.disposition(h.id), Some(ServiceDisposition::Running));
        assert!(cluster.latency_over_target(h.id).is_some(), "resolvable after failover");
        assert!(cluster.warmup_charged_s() > 0.0, "the destination paid its warm-up");
        let log = cluster.unified_log();
        let facts: Vec<&WorldFact> = log
            .world_facts()
            .filter_map(|e| match &e.body {
                EventBody::World(f) => Some(f),
                _ => None,
            })
            .collect();
        assert!(facts.iter().any(|f| matches!(f, WorldFact::NodeFailed { node: 0 })));
        assert!(facts
            .iter()
            .any(|f| matches!(f, WorldFact::Removed { cause: RemovalCause::NodeFailure })));
        assert!(facts
            .iter()
            .any(|f| matches!(f, WorldFact::Launched { cause: LaunchCause::Failover, .. })));
        let state = log.replay().expect("cluster log must fold");
        assert!(state.layouts.contains_key(&h.id), "the fold tracks the live replica");
    }

    #[test]
    fn stale_handles_resolve_by_id_after_failover() {
        let cfg = crash_plan(0, 5.0, None);
        let mut cluster =
            Cluster::try_new(2, raw_scheduler(), OsmlConfig::default(), cfg, 12).unwrap();
        let ClusterPlacement::Placed(stale) =
            cluster.submit(LaunchSpec::at_percent_load(Service::Login, 20.0))
        else {
            panic!("placement failed");
        };
        cluster.run(10.0);
        assert_ne!(cluster.locate(stale.id).unwrap().node, stale.node, "handle went stale");
        // The pre-failover handle still finishes the service: resolution
        // is by cluster id, never by the stale (node, app) pair.
        assert!(cluster.finish(stale));
        assert_eq!(cluster.disposition(stale.id), Some(ServiceDisposition::Finished));
        assert!(cluster.locate(stale.id).is_none());
    }

    #[test]
    fn sole_node_death_is_a_typed_eviction() {
        let cfg = crash_plan(0, 5.0, None);
        let mut cluster =
            Cluster::try_new(1, raw_scheduler(), OsmlConfig::default(), cfg, 13).unwrap();
        let ClusterPlacement::Placed(h) =
            cluster.submit(LaunchSpec::at_percent_load(Service::Moses, 30.0))
        else {
            panic!("placement failed");
        };
        cluster.run(10.0);
        assert_eq!(cluster.evictions(), 1);
        assert_eq!(cluster.disposition(h.id), Some(ServiceDisposition::Evicted));
        assert!(cluster.locate(h.id).is_none());
        // The eviction is surfaced in the log as a typed rejection, and
        // the log still folds (the resident was removed first).
        assert!(cluster.unified_log().decisions().any(|e| matches!(
            &e.body,
            EventBody::Decision(Decision::Rejected { reason: RejectReason::InsufficientResources })
        ) && e.app == Some(h.id)));
        cluster.unified_log().replay().expect("cluster log must fold");
        // New submissions are rejected while the whole fleet is down.
        assert_eq!(
            cluster.submit(LaunchSpec::at_percent_load(Service::Login, 10.0)),
            ClusterPlacement::ClusterFull
        );
    }

    #[test]
    fn recovered_node_rejoins_empty_and_accepts_work() {
        let cfg = crash_plan(0, 5.0, Some(20.0));
        let mut cluster =
            Cluster::try_new(1, raw_scheduler(), OsmlConfig::default(), cfg, 14).unwrap();
        let ClusterPlacement::Placed(h) =
            cluster.submit(LaunchSpec::at_percent_load(Service::Moses, 30.0))
        else {
            panic!("placement failed");
        };
        cluster.run(30.0);
        assert!(cluster.node_is_up(0), "recovered at t=20");
        assert_eq!(cluster.disposition(h.id), Some(ServiceDisposition::Evicted));
        assert!(cluster
            .unified_log()
            .world_facts()
            .any(|e| matches!(e.body, EventBody::World(WorldFact::NodeRecovered { node: 0 }))));
        // The rejoined (empty) node hosts new work again.
        assert!(matches!(
            cluster.submit(LaunchSpec::at_percent_load(Service::Login, 20.0)),
            ClusterPlacement::Placed(_)
        ));
    }

    #[test]
    fn qos_migration_emits_the_golden_decision_pair() {
        let mut cluster = Cluster::new(2, raw_scheduler(), OsmlConfig::default(), 15);
        cluster.migration_patience_s = 5.0;
        // Offered load beyond nominal capacity: the violation persists on
        // any node, so patience must expire and a migration must commit.
        let ClusterPlacement::Placed(h) =
            cluster.submit(LaunchSpec::at_percent_load(Service::Xapian, 120.0))
        else {
            panic!("placement failed");
        };
        cluster.run(30.0);
        assert!(cluster.migrations() >= 1, "an unfixable violation must migrate");
        let log = cluster.unified_log();
        assert!(
            log.decisions().any(|e| e.app == Some(h.id)
                && matches!(e.body, EventBody::Decision(Decision::MigrationRequested))),
            "the cluster-level migration request must be in the golden log"
        );
        assert!(
            log.decisions().any(|e| e.app == Some(h.id)
                && matches!(
                    &e.body,
                    EventBody::Decision(Decision::Alloc {
                        kind: ActionKind::Migrate,
                        provenance: Provenance::Controller,
                        counts_as_action: true,
                        ..
                    })
                )),
            "a committed migration must record its Alloc decision"
        );
        assert!(log.world_facts().any(|e| matches!(
            e.body,
            EventBody::World(WorldFact::Removed { cause: RemovalCause::Migrated })
        )));
        assert!(cluster.locate(h.id).is_some(), "service must not be lost");
        log.replay().expect("cluster log must fold after a migration");
    }

    #[test]
    fn exhausted_migration_budget_suppresses_thrashing() {
        let cfg = ClusterConfig { migration_budget: 1, ..ClusterConfig::default() };
        let mut cluster =
            Cluster::try_new(2, raw_scheduler(), OsmlConfig::default(), cfg, 16).unwrap();
        cluster.migration_patience_s = 5.0;
        let ClusterPlacement::Placed(h) =
            cluster.submit(LaunchSpec::at_percent_load(Service::Xapian, 120.0))
        else {
            panic!("placement failed");
        };
        cluster.run(60.0);
        assert!(cluster.migrations() <= 1, "budget 1 allows at most one QoS migration");
        assert!(
            cluster.migrations_suppressed() > 0,
            "the persisting violation must hit the exhausted budget"
        );
        assert!(cluster.locate(h.id).is_some(), "the service stayed in the cluster");
    }

    #[test]
    fn persistent_install_faults_roll_back_and_never_lose_the_service() {
        // Every actuation after t=4 fails (the initial placement at t<2
        // stays clean): migration installs exhaust their retry budget,
        // roll the half-launched replica back, and the service stays
        // exactly where it was.
        let cfg = ClusterConfig {
            actuation_faults: FaultPlan::new(
                9,
                FaultProfile {
                    fail_windows: vec![FailWindow::new(4.0, f64::INFINITY)],
                    ..FaultProfile::none()
                },
            ),
            ..ClusterConfig::default()
        };
        let mut cluster =
            Cluster::try_new(2, raw_scheduler(), OsmlConfig::default(), cfg, 17).unwrap();
        cluster.migration_patience_s = 5.0;
        let ClusterPlacement::Placed(h) =
            cluster.submit(LaunchSpec::at_percent_load(Service::Xapian, 120.0))
        else {
            panic!("placement failed");
        };
        let other = 1 - h.node;
        cluster.run(30.0);
        assert_eq!(cluster.migrations(), 0, "no install can commit");
        assert_eq!(cluster.locate(h.id).unwrap().node, h.node, "transaction left it in place");
        assert!(
            cluster.agents[other].node.apps().is_empty(),
            "rolled-back replicas must not linger on the destination"
        );
        assert!(
            cluster.unified_log().events().iter().any(|e| matches!(
                e.body,
                EventBody::Telemetry(TelemetryNote::FaultObserved { transient: true })
            )),
            "exhausted install budgets are surfaced as telemetry"
        );
        cluster.unified_log().replay().expect("cluster log must fold");
    }

    #[test]
    fn transient_install_faults_are_retried_to_success() {
        // Sweep seeds until an install burst succeeds after >= 1 retry;
        // deterministic because every run is fully seeded.
        let mut retried_somewhere = false;
        for seed in 0..30 {
            let cfg = ClusterConfig {
                actuation_faults: FaultPlan::new(
                    seed,
                    FaultProfile { actuation_failure_prob: 0.5, ..FaultProfile::none() },
                ),
                ..ClusterConfig::default()
            };
            let mut cluster =
                Cluster::try_new(2, raw_scheduler(), OsmlConfig::default(), cfg, 18).unwrap();
            cluster.migration_patience_s = 5.0;
            if !matches!(
                cluster.submit(LaunchSpec::at_percent_load(Service::Xapian, 120.0)),
                ClusterPlacement::Placed(_)
            ) {
                continue;
            }
            cluster.run(30.0);
            if cluster.unified_log().events().iter().any(|e| {
                matches!(e.body, EventBody::Telemetry(TelemetryNote::Retried { attempts, .. }) if attempts > 1)
            }) {
                retried_somewhere = true;
                break;
            }
        }
        assert!(
            retried_somewhere,
            "a 50% transient fault rate must produce a retried install within 30 seeds"
        );
    }

    #[test]
    fn faultless_cluster_log_replays_to_the_running_set() {
        let mut cluster = Cluster::new(3, raw_scheduler(), OsmlConfig::default(), 19);
        let mut ids = Vec::new();
        for (service, pct) in
            [(Service::Moses, 30.0), (Service::ImgDnn, 30.0), (Service::Xapian, 30.0)]
        {
            if let ClusterPlacement::Placed(h) =
                cluster.submit(LaunchSpec::at_percent_load(service, pct))
            {
                ids.push(h.id);
            }
        }
        cluster.run(20.0);
        cluster.finish_id(ids[0]);
        cluster.run(5.0);
        let state = cluster.unified_log().replay().expect("cluster log must fold");
        let running: Vec<u64> = cluster.services().iter().map(|h| h.id).collect();
        assert_eq!(
            state.layouts.keys().copied().collect::<Vec<_>>(),
            running,
            "fold layout keys must equal the running set"
        );
        assert_eq!(state.tick, 25);
    }

    #[test]
    fn duplicate_delivery_is_idempotent_under_fencing() {
        // Every message is duplicated, both directions. Node-side
        // sequence dedup plus reply-cache re-acks must keep exactly one
        // replica per service.
        let cfg = ClusterConfig {
            channel: ChannelPlan { seed: 21, duplicate_prob: 1.0, ..ChannelPlan::none() },
            ..ClusterConfig::default()
        };
        let mut cluster =
            Cluster::try_new(2, raw_scheduler(), OsmlConfig::default(), cfg, 21).unwrap();
        let ClusterPlacement::Placed(h) =
            cluster.submit(LaunchSpec::at_percent_load(Service::Moses, 30.0))
        else {
            panic!("placement failed");
        };
        cluster.run(10.0);
        assert_eq!(cluster.replicas_of(h.id), 1, "duplicated launches must not double-place");
        assert_eq!(cluster.ghost_replicas(), 0);
        assert_eq!(cluster.disposition(h.id), Some(ServiceDisposition::Running));
        assert!(
            cluster
                .unified_log()
                .world_facts()
                .any(|e| matches!(e.body, EventBody::World(WorldFact::MessageDuplicated { .. }))),
            "transport duplication must be a world fact"
        );
        cluster.unified_log().replay().expect("log must fold under duplication");
    }

    #[test]
    fn without_fencing_duplicates_double_place() {
        // The ablation arm: same duplicating channel, protocol off. The
        // duplicated launch executes twice and leaves a ghost replica —
        // the failure mode the fencing protocol exists to prevent.
        let cfg = ClusterConfig {
            channel: ChannelPlan { seed: 21, duplicate_prob: 1.0, ..ChannelPlan::none() },
            fencing: false,
            ..ClusterConfig::default()
        };
        let mut cluster =
            Cluster::try_new(2, raw_scheduler(), OsmlConfig::default(), cfg, 21).unwrap();
        let ClusterPlacement::Placed(h) =
            cluster.submit(LaunchSpec::at_percent_load(Service::Moses, 30.0))
        else {
            panic!("placement failed");
        };
        assert!(cluster.replicas_of(h.id) > 1, "without dedup the duplicate must double-place");
        assert!(cluster.ghost_replicas() > 0, "the extra replica is a ghost");
    }

    #[test]
    fn false_suspicion_readopts_after_partition_heals() {
        // A partition, not a crash: the sole node keeps running its
        // replica the whole time. The cluster must (wrongly) suspect it,
        // evict, and then re-adopt the still-live replica at heal.
        let cfg =
            ClusterConfig { channel: partition_plan(0, 5.0, 12.0), ..ClusterConfig::default() };
        let mut cluster =
            Cluster::try_new(1, raw_scheduler(), OsmlConfig::default(), cfg, 22).unwrap();
        let ClusterPlacement::Placed(h) =
            cluster.submit(LaunchSpec::at_percent_load(Service::Moses, 30.0))
        else {
            panic!("placement failed");
        };
        cluster.run(8.0);
        assert!(!cluster.node_is_up(0), "heartbeat timeout must raise suspicion");
        assert_eq!(cluster.false_suspicions(), 1, "the node is in fact alive");
        assert_eq!(cluster.disposition(h.id), Some(ServiceDisposition::Evicted));
        assert_eq!(cluster.replicas_of(h.id), 1, "the replica survived behind the partition");
        cluster.run(12.0);
        assert!(cluster.node_is_up(0), "suspicion clears at heal");
        assert_eq!(cluster.readopted(), 1, "the current-epoch replica is re-adopted");
        assert_eq!(cluster.disposition(h.id), Some(ServiceDisposition::Running));
        assert_eq!(cluster.locate(h.id).map(|h| h.node), Some(0));
        assert_eq!(cluster.ghost_replicas(), 0);
        let log = cluster.unified_log();
        for expect in [
            |f: &WorldFact| matches!(f, WorldFact::PartitionStarted { node: 0 }),
            |f: &WorldFact| matches!(f, WorldFact::PartitionHealed { node: 0 }),
            |f: &WorldFact| matches!(f, WorldFact::NodeSuspected { node: 0 }),
            |f: &WorldFact| matches!(f, WorldFact::NodeSuspicionCleared { node: 0 }),
            |f: &WorldFact| matches!(f, WorldFact::Launched { cause: LaunchCause::Readopted, .. }),
        ] {
            assert!(
                log.world_facts().any(|e| match &e.body {
                    EventBody::World(f) => expect(f),
                    _ => false,
                }),
                "a belief-transition fact is missing from the golden thread"
            );
        }
        let state = log.replay().expect("log must fold across suspicion and re-adoption");
        assert!(state.layouts.contains_key(&h.id));
    }

    #[test]
    fn partition_failover_fences_the_stale_replica_at_heal() {
        // Two nodes; node 0 is partitioned long enough to be suspected
        // and its service failed over to node 1. The old replica keeps
        // running behind the partition — at heal it must be fenced by its
        // exact epoch, leaving one authoritative replica.
        let cfg =
            ClusterConfig { channel: partition_plan(0, 5.0, 25.0), ..ClusterConfig::default() };
        let mut cluster =
            Cluster::try_new(2, raw_scheduler(), OsmlConfig::default(), cfg, 23).unwrap();
        let ClusterPlacement::Placed(h) =
            cluster.submit(LaunchSpec::at_percent_load(Service::Moses, 30.0))
        else {
            panic!("placement failed");
        };
        assert_eq!(h.node, 0);
        cluster.run(15.0);
        assert_eq!(cluster.failovers(), 1, "the suspected node's service fails over");
        assert_eq!(cluster.locate(h.id).map(|h| h.node), Some(1));
        assert_eq!(cluster.replicas_of(h.id), 2, "the ghost still runs behind the partition");
        cluster.run(20.0);
        assert_eq!(cluster.replicas_of(h.id), 1, "the ghost is fenced at heal");
        assert_eq!(cluster.ghost_replicas(), 0);
        assert_eq!(cluster.fenced_ghosts(), 1);
        assert_eq!(cluster.disposition(h.id), Some(ServiceDisposition::Running));
        assert!(cluster.unified_log().world_facts().any(|e| matches!(
            e.body,
            EventBody::World(WorldFact::Removed { cause: RemovalCause::Fenced })
        )));
        cluster.unified_log().replay().expect("log must fold across fencing");
    }

    #[test]
    fn lossy_runs_are_bit_deterministic_for_a_fixed_seed() {
        let build = || {
            let cfg = ClusterConfig {
                channel: ChannelPlan {
                    partitions: vec![PartitionWindow { node: 0, start_s: 10.0, end_s: 18.0 }],
                    ..ChannelPlan::lossy(31, 0.1)
                },
                ..ClusterConfig::default()
            };
            let mut cluster =
                Cluster::try_new(3, raw_scheduler(), OsmlConfig::default(), cfg, 31).unwrap();
            for (service, pct) in
                [(Service::Moses, 30.0), (Service::ImgDnn, 30.0), (Service::Login, 20.0)]
            {
                let _ = cluster.submit(LaunchSpec::at_percent_load(service, pct));
            }
            cluster.run(40.0);
            cluster
        };
        let (a, b) = (build(), build());
        let (a_cmd, a_rep) = a.channel_stats();
        let (b_cmd, b_rep) = b.channel_stats();
        assert_eq!(
            (a_cmd.sent, a_cmd.dropped, a_cmd.duplicated, a_cmd.delayed, a_cmd.partitioned),
            (b_cmd.sent, b_cmd.dropped, b_cmd.duplicated, b_cmd.delayed, b_cmd.partitioned)
        );
        assert_eq!(
            (a_rep.sent, a_rep.dropped, a_rep.duplicated, a_rep.delayed, a_rep.partitioned),
            (b_rep.sent, b_rep.dropped, b_rep.duplicated, b_rep.delayed, b_rep.partitioned)
        );
        assert_eq!(a.services(), b.services());
        assert_eq!(a.dispositions(), b.dispositions());
        assert_eq!(a.suspicions(), b.suspicions());
        assert_eq!(a.fenced_ghosts(), b.fenced_ghosts());
        assert_eq!(a.unified_log().events().len(), b.unified_log().events().len());
    }

    #[test]
    fn random_placement_is_seeded_and_legal() {
        let cfg = ClusterConfig { policy: PlacementPolicy::Random, ..ClusterConfig::default() };
        let mut cluster =
            Cluster::try_new(3, raw_scheduler(), OsmlConfig::default(), cfg.clone(), 33).unwrap();
        let mut nodes = Vec::new();
        for _ in 0..4 {
            if let ClusterPlacement::Placed(h) =
                cluster.submit(LaunchSpec::at_percent_load(Service::Login, 15.0))
            {
                nodes.push(h.node);
            }
        }
        assert_eq!(nodes.len(), 4, "random placement still places on a healthy fleet");
        // Same seed, same draws: the shuffle is reproducible.
        let mut again =
            Cluster::try_new(3, raw_scheduler(), OsmlConfig::default(), cfg, 33).unwrap();
        let mut nodes_again = Vec::new();
        for _ in 0..4 {
            if let ClusterPlacement::Placed(h) =
                again.submit(LaunchSpec::at_percent_load(Service::Login, 15.0))
            {
                nodes_again.push(h.node);
            }
        }
        assert_eq!(nodes, nodes_again);
    }
}

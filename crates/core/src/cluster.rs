//! The upper-level scheduler the paper keeps referring to — now fault
//! tolerant.
//!
//! OSML is a per-node controller: Algorithm 1 "reports to the upper
//! scheduler about the scheduling policies", and Algorithm 4's fallback is
//! "OSML migrates the microservice to another node". This module provides
//! that upper level — a [`Cluster`] of simulated servers, each run by its
//! own OSML instance, with placement across nodes and automatic migration
//! of services a node cannot keep within QoS.
//!
//! Beyond the original first-fit tier, the cluster now survives the
//! failures the single-node stack already models:
//!
//! * **node faults** — a seeded, scriptable
//!   [`NodeFaultPlan`](osml_platform::NodeFaultPlan) (crash, scheduled
//!   outage, degraded capacity, churn) drives per-node health; every node's
//!   substrate is wrapped in a [`FaultySubstrate`] (bit-transparent under a
//!   none plan) so call-level actuation faults compose with whole-node ones,
//! * **failover** — when a node dies, its services are re-placed onto
//!   survivors ranked by an interference-aware score
//!   ([`PlacementPolicy::InterferenceScore`]); services that fit nowhere
//!   become typed [`ServiceDisposition::Evicted`] outcomes, never silent
//!   drops,
//! * **resilient migrations** — the destination launch commits first
//!   (retrying transient install faults through
//!   [`crate::resilience::Retrying`]), only then is the source replica torn
//!   down, so a mid-migration failure leaves the service exactly where it
//!   was; per-service migration budgets stop churn-induced thrashing, and
//!   every migration destination pays an explicit warm-up cost during
//!   which the violation clock is suspended,
//! * **golden thread** — cluster runs append to their own
//!   [`UnifiedLog`]: `NodeFailed`/`NodeRecovered` world facts, per-service
//!   `Removed`/`Launched` transitions and `MigrationRequested`/`Alloc`
//!   decisions, strict enough for [`UnifiedLog::replay`] to fold without
//!   error.
//!
//! With the default [`ClusterConfig`] (no faults, first-fit, no cluster
//! log consumers) the substrate call sequence is bit-identical to the
//! pre-failover cluster.

use crate::resilience::Retrying;
use crate::{
    ClusterConfig, Decision, EventBody, LaunchCause, OsmlConfig, OsmlScheduler, PlacementPolicy,
    RemovalCause, TelemetryNote, UnifiedLog, WorldFact,
};
use osml_platform::{
    Allocation, AppId, FaultPlan, FaultySubstrate, Placement, RejectReason, Scheduler, SloClass,
    Substrate,
};
use osml_telemetry::{ActionKind, Provenance};
use osml_workloads::{LaunchSpec, Service, SimConfig, SimServer};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// One cluster node: the analytic simulator behind the (possibly
/// transparent) call-level fault decorator.
type Node = FaultySubstrate<SimServer>;

/// A service's location in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ServiceHandle {
    /// Cluster-wide identifier (stable across migrations and failover).
    pub id: u64,
    /// Node hosting the service when the handle was issued. Goes stale
    /// across migrations — resolve by [`ServiceHandle::id`] via
    /// [`Cluster::locate`], never by `(node, app)`.
    pub node: usize,
    /// Node-local application id (stale together with `node`).
    pub app: AppId,
}

/// Outcome of a cluster placement request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterPlacement {
    /// The service is running on the given node.
    Placed(ServiceHandle),
    /// No node in the cluster could host the service within QoS.
    ClusterFull,
}

/// Why constructing a [`Cluster`] failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterError {
    /// A cluster needs at least one node.
    NoNodes,
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::NoNodes => write!(f, "cluster needs at least one node"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Where a submitted service ended up — the conservation ledger. Every
/// cluster id ever issued has exactly one current disposition; nothing is
/// ever silently dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceDisposition {
    /// Live on some node (relocatable by migration/failover).
    Running,
    /// Removed by [`Cluster::finish`].
    Finished,
    /// Its node died (or it was stranded) and no surviving node could
    /// host it — a typed loss, surfaced, never silent.
    Evicted,
    /// No node could host it at submit time ([`ClusterPlacement::ClusterFull`]).
    Rejected,
}

#[derive(Debug, Clone)]
struct Tracked {
    handle: ServiceHandle,
    spec: LaunchSpec,
    violating_since: Option<f64>,
    /// Destination-node time until which the violation clock is suspended
    /// (the paid migration warm-up window).
    warm_until: f64,
    /// QoS-violation migration attempts consumed (the anti-thrash budget;
    /// node-death failover is never budget-limited).
    migrations_used: u32,
}

/// A fleet of OSML-managed servers with an upper-level placement,
/// migration and failover policy.
///
/// # Example
///
/// ```no_run
/// use osml_core::{Cluster, OsmlConfig};
/// use osml_workloads::{LaunchSpec, Service};
/// # fn trained() -> osml_core::OsmlScheduler { unimplemented!() }
///
/// let scheduler_template = trained();
/// let mut cluster = Cluster::new(2, scheduler_template, OsmlConfig::default(), 7);
/// let placement = cluster.submit(LaunchSpec::at_percent_load(Service::Moses, 60.0));
/// cluster.run(30.0);
/// println!("{placement:?}, {} migrations so far", cluster.migrations());
/// ```
#[derive(Debug)]
pub struct Cluster {
    nodes: Vec<Node>,
    schedulers: Vec<OsmlScheduler>,
    /// Health as of the last [`Cluster::run`] step (index-parallel to
    /// `nodes`).
    up: Vec<bool>,
    services: Vec<Tracked>,
    /// Conservation ledger: every issued id, exactly one disposition.
    dispositions: BTreeMap<u64, ServiceDisposition>,
    next_id: u64,
    migrations: usize,
    failovers: usize,
    evictions: usize,
    migrations_suppressed: usize,
    warmup_charged_s: f64,
    /// Cluster wall clock (steps of [`Cluster::run`]); node clocks run
    /// slightly ahead because placement profiling advances them.
    clock: f64,
    tick: u64,
    log: UnifiedLog,
    config: OsmlConfig,
    cluster_cfg: ClusterConfig,
    /// Seconds of continuous violation before the upper scheduler migrates
    /// a service away from its node. Mirrors
    /// [`ClusterConfig::migration_patience_s`] at construction; kept
    /// public (and authoritative) for backward compatibility.
    pub migration_patience_s: f64,
}

impl Cluster {
    /// Builds a cluster of `n` identical nodes, each driven by a clone of
    /// the (trained) `scheduler` template, under the default
    /// [`ClusterConfig`] (no faults, legacy first-fit placement).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`; use [`Cluster::try_new`] for a typed error.
    pub fn new(n: usize, scheduler: OsmlScheduler, config: OsmlConfig, seed: u64) -> Self {
        Cluster::try_new(n, scheduler, config, ClusterConfig::default(), seed)
            .expect("cluster needs at least one node")
    }

    /// Builds a cluster of `n` nodes under an explicit [`ClusterConfig`].
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoNodes`] when `n == 0`.
    pub fn try_new(
        n: usize,
        scheduler: OsmlScheduler,
        config: OsmlConfig,
        cluster_cfg: ClusterConfig,
        seed: u64,
    ) -> Result<Self, ClusterError> {
        if n == 0 {
            return Err(ClusterError::NoNodes);
        }
        let nodes = (0..n)
            .map(|i| {
                let server = SimServer::new(SimConfig {
                    seed: seed ^ (i as u64) << 32,
                    ..SimConfig::default()
                });
                // Re-salt the per-node call-level plan so nodes draw
                // independent fault streams from one configured profile.
                let plan = FaultPlan {
                    seed: cluster_cfg.actuation_faults.seed ^ ((i as u64) << 16),
                    profile: cluster_cfg.actuation_faults.profile.clone(),
                };
                FaultySubstrate::new(server, plan)
            })
            .collect();
        let schedulers = (0..n).map(|_| scheduler.clone().with_config(config.clone())).collect();
        let mut log = UnifiedLog::new();
        let mut up = vec![true; n];
        for (i, slot) in up.iter_mut().enumerate() {
            if !cluster_cfg.node_faults.is_none() && !cluster_cfg.node_faults.health(i, 0.0).is_up()
            {
                *slot = false;
                log.push(0, 0.0, None, EventBody::World(WorldFact::NodeFailed { node: i }));
            }
        }
        let migration_patience_s = cluster_cfg.migration_patience_s;
        Ok(Cluster {
            nodes,
            schedulers,
            up,
            services: Vec::new(),
            dispositions: BTreeMap::new(),
            next_id: 0,
            migrations: 0,
            failovers: 0,
            evictions: 0,
            migrations_suppressed: 0,
            warmup_charged_s: 0.0,
            clock: 0.0,
            tick: 0,
            log,
            config,
            cluster_cfg,
            migration_patience_s,
        })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cluster has no nodes (never true; see [`Cluster::try_new`]).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// QoS-violation migrations committed so far.
    pub fn migrations(&self) -> usize {
        self.migrations
    }

    /// Node-death failovers committed so far.
    pub fn failovers(&self) -> usize {
        self.failovers
    }

    /// Services evicted (typed loss: no surviving node could host them).
    pub fn evictions(&self) -> usize {
        self.evictions
    }

    /// QoS migrations suppressed by an exhausted per-service budget.
    pub fn migrations_suppressed(&self) -> usize {
        self.migrations_suppressed
    }

    /// Total warm-up seconds charged to migration destinations.
    pub fn warmup_charged_s(&self) -> f64 {
        self.warmup_charged_s
    }

    /// Cluster ids issued so far (every one has a disposition).
    pub fn submitted(&self) -> u64 {
        self.next_id
    }

    /// Current disposition of a cluster id, if it was ever issued.
    pub fn disposition(&self, id: u64) -> Option<ServiceDisposition> {
        self.dispositions.get(&id).copied()
    }

    /// The full conservation ledger, ordered by id.
    pub fn dispositions(&self) -> Vec<(u64, ServiceDisposition)> {
        self.dispositions.iter().map(|(&id, &d)| (id, d)).collect()
    }

    /// Whether `node` is currently up (always true without a fault plan).
    pub fn node_is_up(&self, node: usize) -> bool {
        self.up[node]
    }

    /// The cluster tier's own golden-thread log (per-node controller
    /// decisions live in each node's scheduler log).
    pub fn unified_log(&self) -> &UnifiedLog {
        &self.log
    }

    /// Services currently running, with their locations.
    pub fn services(&self) -> Vec<ServiceHandle> {
        self.services.iter().map(|t| t.handle).collect()
    }

    /// Sum of scheduling actions across all node controllers.
    pub fn total_actions(&self) -> usize {
        self.schedulers.iter().map(|s| s.action_count()).sum()
    }

    /// Candidate nodes for a placement, best first: up nodes only (minus
    /// `exclude`), ranked by the configured [`PlacementPolicy`].
    fn candidates(&self, exclude: Option<usize>) -> Vec<usize> {
        let mut order: Vec<usize> =
            (0..self.nodes.len()).filter(|&i| self.up[i] && Some(i) != exclude).collect();
        match self.cluster_cfg.policy {
            PlacementPolicy::FirstFit => {
                order.sort_by_key(|&i| std::cmp::Reverse(self.nodes[i].idle_cores().count()));
            }
            PlacementPolicy::InterferenceScore => {
                let mut scored: Vec<(usize, f64)> =
                    order.into_iter().map(|i| (i, self.node_score(i))).collect();
                scored.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
                });
                order = scored.into_iter().map(|(i, _)| i).collect();
            }
        }
        order
    }

    /// Interference-aware placement score; higher is a better destination.
    /// Free capacity (idle core and LLC-way fractions) scaled by node
    /// health, minus the QoS pressure of residents: a service already at
    /// 90 % of its latency target contributes its overshoot, so newcomers
    /// avoid nodes whose tenants have no slack left.
    fn node_score(&self, node: usize) -> f64 {
        let server = &self.nodes[node];
        let topo = server.topology();
        let idle_cores = server.idle_cores().count() as f64 / topo.logical_cores() as f64;
        let idle_ways = server.idle_way_count() as f64 / topo.llc_ways() as f64;
        let mut pressure = 0.0;
        for t in self.services.iter().filter(|t| t.handle.node == node) {
            if let Some(lat) = server.latency(t.handle.app) {
                pressure += (lat.p95_ms / lat.qos_target_ms - 0.9).max(0.0);
            }
        }
        let capacity = self.cluster_cfg.node_faults.health(node, self.clock).capacity();
        capacity * (idle_cores + idle_ways) - pressure
    }

    /// Submits a new service, trying candidate nodes best-first and
    /// falling back through every up node before declaring the cluster
    /// full. Either way the outcome is ledgered: `Running` or `Rejected`.
    pub fn submit(&mut self, spec: LaunchSpec) -> ClusterPlacement {
        let id = self.next_id;
        self.next_id += 1;
        self.log.push(
            self.tick,
            self.clock,
            Some(id),
            EventBody::World(WorldFact::ArrivalDue {
                workload: id,
                service: spec.service,
                class: SloClass::LatencyCritical,
                threads: spec.threads,
                offered_rps: spec.offered_rps,
            }),
        );
        for node in self.candidates(None) {
            if let Some((app, post)) = self.try_place(node, spec, id, false) {
                let handle = ServiceHandle { id, node, app };
                self.emit_launched(id, spec, post, LaunchCause::Scripted);
                self.services.push(Tracked {
                    handle,
                    spec,
                    violating_since: None,
                    warm_until: 0.0,
                    migrations_used: 0,
                });
                self.dispositions.insert(id, ServiceDisposition::Running);
                return ClusterPlacement::Placed(handle);
            }
        }
        self.dispositions.insert(id, ServiceDisposition::Rejected);
        self.log.push(
            self.tick,
            self.clock,
            Some(id),
            EventBody::Decision(Decision::Rejected { reason: RejectReason::InsufficientResources }),
        );
        ClusterPlacement::ClusterFull
    }

    /// Launches `spec` on `node` and runs the node controller's arrival
    /// path. Returns the app id and the placement-settled allocation, or
    /// `None` (with the node cleaned up) if the node cannot host it.
    ///
    /// `resilient` marks migration installs: the bootstrap actuation is
    /// then driven through [`Retrying`] so transient destination faults
    /// are retried with backoff before the candidate is given up on —
    /// and a persistent failure rolls the half-launched replica back.
    /// Skipped entirely under a none actuation plan, where the install
    /// is already committed by `launch` and the extra `reallocate` would
    /// perturb the simulator's contention fixed-point.
    fn try_place(
        &mut self,
        node: usize,
        spec: LaunchSpec,
        id: u64,
        resilient: bool,
    ) -> Option<(AppId, Allocation)> {
        let bootstrap = crate::bootstrap::bootstrap_allocation(&mut self.nodes[node], spec.threads);
        let app = self.nodes[node].inner_mut().launch(spec, bootstrap).ok()?;
        if resilient && !self.cluster_cfg.actuation_faults.profile.is_none() {
            let installed;
            let stats;
            {
                let mut retrying = Retrying::new(
                    &mut self.nodes[node],
                    self.config.actuation_retry_budget,
                    self.config.retry_backoff_base_ms,
                    self.config.max_backoff_ms,
                );
                installed = retrying.reallocate(app, bootstrap);
                stats = retrying.take_stats();
            }
            for (_, attempts, backoff_ms) in stats.retried {
                self.log.push(
                    self.tick,
                    self.clock,
                    Some(id),
                    EventBody::Telemetry(TelemetryNote::Retried { attempts, backoff_ms }),
                );
            }
            if stats.persistent > 0 {
                self.log.push(
                    self.tick,
                    self.clock,
                    Some(id),
                    EventBody::Telemetry(TelemetryNote::FaultObserved { transient: true }),
                );
            }
            if installed.is_err() {
                // Roll the half-launched replica back; teardown goes
                // through the OS, not the faulted actuation path.
                let _ = self.nodes[node].remove(app);
                return None;
            }
        }
        self.nodes[node].advance(1.0);
        match self.schedulers[node].on_arrival(&mut self.nodes[node], app) {
            Placement::Placed => {
                let post = self.nodes[node].allocation(app).unwrap_or(bootstrap);
                Some((app, post))
            }
            Placement::Rejected(_) | Placement::Deferred { .. } => {
                // The cluster tier has no arrival queue of its own: a node
                // that defers is treated as full and the next node is tried.
                let _ = self.nodes[node].remove(app);
                self.schedulers[node].on_departure(app);
                None
            }
        }
    }

    /// Logs the cluster-level launch fact. The recorded allocation is the
    /// placement-settled one (node-local Model-A/B decisions live in the
    /// per-node scheduler logs), so the cluster fold tracks real layouts.
    fn emit_launched(
        &mut self,
        id: u64,
        spec: LaunchSpec,
        settled: Allocation,
        cause: LaunchCause,
    ) {
        self.log.push(
            self.tick,
            self.clock,
            Some(id),
            EventBody::World(WorldFact::Launched {
                workload: id,
                service: spec.service,
                class: SloClass::LatencyCritical,
                threads: spec.threads,
                offered_rps: spec.offered_rps,
                bootstrap: settled,
                cause,
            }),
        );
    }

    /// Logs the committed-migration decision pair for `id`.
    fn emit_migration_alloc(&mut self, id: u64, pre: Option<Allocation>, post: Allocation) {
        self.log.push(
            self.tick,
            self.clock,
            Some(id),
            EventBody::Decision(Decision::Alloc {
                kind: ActionKind::Migrate,
                provenance: Provenance::Controller,
                pre,
                post,
                counts_as_action: true,
            }),
        );
    }

    /// Transactionally re-places `t` (already out of `services`) on the
    /// best surviving candidate. On success the new residency is tracked
    /// and ledgered and `(node, app, settled allocation)` returned; the
    /// caller owns source teardown and log emission, so the destination
    /// launch always commits before any source replica is released.
    fn replace(
        &mut self,
        t: &Tracked,
        exclude: Option<usize>,
    ) -> Option<(usize, AppId, Allocation)> {
        for node in self.candidates(exclude) {
            if let Some((app, post)) = self.try_place(node, t.spec, t.handle.id, true) {
                let id = t.handle.id;
                let warm_until = self.nodes[node].now() + self.cluster_cfg.warmup_cost_s;
                self.warmup_charged_s += self.cluster_cfg.warmup_cost_s;
                self.services.push(Tracked {
                    handle: ServiceHandle { id, node, app },
                    spec: t.spec,
                    violating_since: None,
                    warm_until,
                    migrations_used: t.migrations_used + 1,
                });
                self.dispositions.insert(id, ServiceDisposition::Running);
                return Some((node, app, post));
            }
        }
        None
    }

    /// Ledger a typed eviction: capacity is genuinely gone.
    fn evict(&mut self, id: u64) {
        self.evictions += 1;
        self.dispositions.insert(id, ServiceDisposition::Evicted);
        self.log.push(
            self.tick,
            self.clock,
            Some(id),
            EventBody::Decision(Decision::Rejected { reason: RejectReason::InsufficientResources }),
        );
    }

    /// A node died: drain its residents (their processes die with it),
    /// then fail each one over to a surviving node — or evict, typed.
    fn fail_node(&mut self, node: usize) {
        self.up[node] = false;
        self.log.push(
            self.tick,
            self.clock,
            None,
            EventBody::World(WorldFact::NodeFailed { node }),
        );
        let mut stranded: Vec<Tracked> = Vec::new();
        let mut idx = 0;
        while idx < self.services.len() {
            if self.services[idx].handle.node == node {
                let t = self.services.remove(idx);
                let _ = self.nodes[node].remove(t.handle.app);
                self.schedulers[node].on_departure(t.handle.app);
                self.log.push(
                    self.tick,
                    self.clock,
                    Some(t.handle.id),
                    EventBody::World(WorldFact::Removed { cause: RemovalCause::NodeFailure }),
                );
                stranded.push(t);
            } else {
                idx += 1;
            }
        }
        for t in stranded {
            let id = t.handle.id;
            if self.cluster_cfg.failover {
                self.log.push(
                    self.tick,
                    self.clock,
                    Some(id),
                    EventBody::Decision(Decision::MigrationRequested),
                );
                if let Some((_, _, post)) = self.replace(&t, None) {
                    self.failovers += 1;
                    self.emit_launched(id, t.spec, post, LaunchCause::Failover);
                    self.emit_migration_alloc(id, None, post);
                    continue;
                }
            }
            self.evict(id);
        }
    }

    /// A failed node rejoined, empty: eligible for placements again.
    fn recover_node(&mut self, node: usize) {
        self.up[node] = true;
        self.log.push(
            self.tick,
            self.clock,
            None,
            EventBody::World(WorldFact::NodeRecovered { node }),
        );
    }

    /// Manually kills a node (chaos hook): drains and fails over its
    /// residents exactly as a plan-scripted death would. Idempotent — a
    /// dead node stays dead. Under a non-none [`NodeFaultPlan`] the plan
    /// remains authoritative: the next [`Cluster::run`] step may revive
    /// the node if the plan says it is healthy.
    pub fn kill_node(&mut self, node: usize) {
        if self.up[node] {
            self.fail_node(node);
        }
    }

    /// Manually revives a dead node, empty (chaos hook). Idempotent.
    pub fn restore_node(&mut self, node: usize) {
        if !self.up[node] {
            self.recover_node(node);
        }
    }

    /// Reconciles per-node health with the fault plan at the current
    /// cluster clock, draining/failing-over on down transitions.
    fn apply_node_health(&mut self) {
        if self.cluster_cfg.node_faults.is_none() {
            return;
        }
        for node in 0..self.nodes.len() {
            let healthy = self.cluster_cfg.node_faults.health(node, self.clock).is_up();
            match (self.up[node], healthy) {
                (true, false) => self.fail_node(node),
                (false, true) => self.recover_node(node),
                _ => {}
            }
        }
    }

    /// Removes a service from the cluster (completion). The handle is
    /// resolved by its cluster [`ServiceHandle::id`] — never by its
    /// possibly stale `(node, app)` pair — so handles issued before a
    /// migration or failover keep working.
    ///
    /// Returns false if the id is not running (already finished, evicted
    /// or rejected).
    pub fn finish(&mut self, handle: ServiceHandle) -> bool {
        self.finish_id(handle.id)
    }

    /// Removes the running service with cluster id `id` (completion).
    pub fn finish_id(&mut self, id: u64) -> bool {
        let Some(pos) = self.services.iter().position(|t| t.handle.id == id) else {
            return false;
        };
        let t = self.services.remove(pos);
        let _ = self.nodes[t.handle.node].remove(t.handle.app);
        self.schedulers[t.handle.node].on_departure(t.handle.app);
        self.dispositions.insert(id, ServiceDisposition::Finished);
        self.log.push(
            self.tick,
            self.clock,
            Some(id),
            EventBody::World(WorldFact::Removed { cause: RemovalCause::ScriptedDeparture }),
        );
        true
    }

    /// Current location of the service with cluster id `id`.
    pub fn locate(&self, id: u64) -> Option<ServiceHandle> {
        self.services.iter().find(|t| t.handle.id == id).map(|t| t.handle)
    }

    /// Current p95/target ratio of a service, if running. Resolved by
    /// cluster id, so the answer tracks migrations and failover.
    pub fn latency_over_target(&self, id: u64) -> Option<f64> {
        let t = self.services.iter().find(|t| t.handle.id == id)?;
        let lat = self.nodes[t.handle.node].latency(t.handle.app)?;
        Some(lat.p95_ms / lat.qos_target_ms)
    }

    /// Runs every node forward by `seconds` (1 Hz monitoring): node
    /// health transitions first (failures drain and fail over), then the
    /// per-node controllers, then QoS-violation migrations.
    pub fn run(&mut self, seconds: f64) {
        let steps = seconds.max(0.0).round() as usize;
        for _ in 0..steps {
            self.clock += 1.0;
            self.apply_node_health();
            for node in 0..self.nodes.len() {
                self.nodes[node].advance(1.0);
                if self.up[node] {
                    self.schedulers[node].tick(&mut self.nodes[node]);
                }
            }
            self.check_migrations();
            self.tick += 1;
            self.log.push(self.tick, self.clock, None, EventBody::World(WorldFact::TickElapsed));
        }
    }

    fn check_migrations(&mut self) {
        let mut to_migrate: Vec<usize> = Vec::new();
        for (idx, tracked) in self.services.iter_mut().enumerate() {
            let node = &self.nodes[tracked.handle.node];
            let now = node.now();
            if now < tracked.warm_until {
                // Paid warm-up after a migration: early samples are
                // unrepresentative, so the violation clock is suspended.
                tracked.violating_since = None;
                continue;
            }
            let violating =
                node.latency(tracked.handle.app).map(|l| l.violates_qos()).unwrap_or(false);
            if violating {
                let since = *tracked.violating_since.get_or_insert(now);
                if now - since > self.migration_patience_s {
                    to_migrate.push(idx);
                }
            } else {
                tracked.violating_since = None;
            }
        }
        // Migrate in reverse index order so removals stay valid.
        for idx in to_migrate.into_iter().rev() {
            if self.services[idx].migrations_used >= self.cluster_cfg.migration_budget {
                // Budget exhausted: stay put rather than thrash; wait a
                // full patience window before reconsidering.
                self.migrations_suppressed += 1;
                self.services[idx].violating_since = None;
                continue;
            }
            let t = self.services.remove(idx);
            let id = t.handle.id;
            let from = t.handle.node;
            self.log.push(
                self.tick,
                self.clock,
                Some(id),
                EventBody::Decision(Decision::MigrationRequested),
            );
            let pre = self.nodes[from].allocation(t.handle.app);
            if let Some((_, _, post)) = self.replace(&t, Some(from)) {
                // The destination is committed: only now is the source
                // replica torn down (teardown is an OS path and cannot
                // fail transiently), so a failed migration can never
                // leave zero — or two — live replicas.
                let _ = self.nodes[from].remove(t.handle.app);
                self.schedulers[from].on_departure(t.handle.app);
                self.migrations += 1;
                self.log.push(
                    self.tick,
                    self.clock,
                    Some(id),
                    EventBody::World(WorldFact::Removed { cause: RemovalCause::Migrated }),
                );
                self.emit_launched(id, t.spec, post, LaunchCause::Failover);
                self.emit_migration_alloc(id, pre, post);
            } else {
                // No destination would take it: the service never left
                // its node. The attempt still burns budget (anti-thrash)
                // and the violation clock restarts.
                let mut t = t;
                t.violating_since = None;
                t.migrations_used += 1;
                self.services.insert(idx, t);
            }
        }
    }

    /// Which services run on `node`.
    pub fn services_on(&self, node: usize) -> Vec<Service> {
        self.services.iter().filter(|t| t.handle.node == node).map(|t| t.spec.service).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Models;
    use osml_models::{ModelA, ModelB, ModelBPrime, ModelC};
    use osml_platform::{FailWindow, FaultProfile, NodeCrash, NodeFaultPlan};

    /// A scheduler with untrained models is still structurally valid for
    /// cluster-plumbing tests (predictions are arbitrary but legal).
    fn raw_scheduler() -> OsmlScheduler {
        OsmlScheduler::new(
            Models {
                model_a: ModelA::new(36, 20, 1),
                model_b: ModelB::new(36, 20, 2),
                model_b_prime: ModelBPrime::new(3),
                model_c: ModelC::new(4),
            },
            OsmlConfig::default(),
        )
    }

    /// A plan crashing `node` at `at_s`, optionally recovering.
    fn crash_plan(node: usize, at_s: f64, recover_s: Option<f64>) -> ClusterConfig {
        ClusterConfig {
            node_faults: NodeFaultPlan {
                crashes: vec![NodeCrash { node, at_s, recover_s }],
                ..NodeFaultPlan::none()
            },
            policy: PlacementPolicy::InterferenceScore,
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn services_spread_across_nodes() {
        let mut cluster = Cluster::new(2, raw_scheduler(), OsmlConfig::default(), 5);
        let mut nodes_used = std::collections::HashSet::new();
        for _ in 0..2 {
            match cluster.submit(LaunchSpec::at_percent_load(Service::Moses, 40.0)) {
                ClusterPlacement::Placed(h) => {
                    nodes_used.insert(h.node);
                }
                ClusterPlacement::ClusterFull => panic!("two nodes cannot be full"),
            }
        }
        // First-fit-by-idle sends the second service to the other node.
        assert_eq!(nodes_used.len(), 2);
        assert_eq!(cluster.services().len(), 2);
    }

    #[test]
    fn finish_releases_resources() {
        let mut cluster = Cluster::new(1, raw_scheduler(), OsmlConfig::default(), 6);
        let ClusterPlacement::Placed(h) =
            cluster.submit(LaunchSpec::at_percent_load(Service::Login, 20.0))
        else {
            panic!("placement failed");
        };
        let idle_during = cluster.nodes[0].idle_cores().count();
        assert!(cluster.finish(h));
        assert!(!cluster.finish(h), "double-finish must be rejected");
        assert!(cluster.nodes[0].idle_cores().count() > idle_during);
        assert!(cluster.services().is_empty());
        assert_eq!(cluster.disposition(h.id), Some(ServiceDisposition::Finished));
    }

    #[test]
    fn overloaded_service_is_migrated() {
        let mut cluster = Cluster::new(2, raw_scheduler(), OsmlConfig::default(), 7);
        cluster.migration_patience_s = 5.0;
        // Node 0: a service whose (untrained-model) allocation will violate.
        let ClusterPlacement::Placed(h) =
            cluster.submit(LaunchSpec::at_percent_load(Service::Xapian, 80.0))
        else {
            panic!("placement failed");
        };
        // Crowd node h.node so the controller cannot fix the violation...
        // (with untrained models the violation simply persists).
        cluster.run(40.0);
        // Either it was healed in place or migrated; in both cases the
        // service must still be somewhere in the cluster.
        assert!(cluster.locate(h.id).is_some(), "service must not be lost");
    }

    #[test]
    fn run_advances_all_nodes() {
        let mut cluster = Cluster::new(3, raw_scheduler(), OsmlConfig::default(), 8);
        cluster.run(10.0);
        for node in &cluster.nodes {
            assert!((node.now() - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_nodes_is_a_typed_error() {
        let err = Cluster::try_new(
            0,
            raw_scheduler(),
            OsmlConfig::default(),
            ClusterConfig::default(),
            1,
        )
        .unwrap_err();
        assert_eq!(err, ClusterError::NoNodes);
        assert_eq!(err.to_string(), "cluster needs at least one node");
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics_through_the_legacy_constructor() {
        let _ = Cluster::new(0, raw_scheduler(), OsmlConfig::default(), 1);
    }

    #[test]
    fn node_death_fails_services_over_to_survivors() {
        let cfg = crash_plan(0, 5.0, None);
        let mut cluster =
            Cluster::try_new(2, raw_scheduler(), OsmlConfig::default(), cfg, 11).unwrap();
        let ClusterPlacement::Placed(h) =
            cluster.submit(LaunchSpec::at_percent_load(Service::Moses, 30.0))
        else {
            panic!("placement failed");
        };
        assert_eq!(h.node, 0, "first-fit on an empty fleet starts at node 0");
        cluster.run(10.0);
        assert!(!cluster.node_is_up(0));
        assert_eq!(cluster.failovers(), 1);
        assert_eq!(cluster.evictions(), 0);
        let here = cluster.locate(h.id).expect("failover keeps the service in the cluster");
        assert_eq!(here.node, 1, "re-placed on the survivor");
        assert_eq!(cluster.disposition(h.id), Some(ServiceDisposition::Running));
        assert!(cluster.latency_over_target(h.id).is_some(), "resolvable after failover");
        assert!(cluster.warmup_charged_s() > 0.0, "the destination paid its warm-up");
        let log = cluster.unified_log();
        let facts: Vec<&WorldFact> = log
            .world_facts()
            .filter_map(|e| match &e.body {
                EventBody::World(f) => Some(f),
                _ => None,
            })
            .collect();
        assert!(facts.iter().any(|f| matches!(f, WorldFact::NodeFailed { node: 0 })));
        assert!(facts
            .iter()
            .any(|f| matches!(f, WorldFact::Removed { cause: RemovalCause::NodeFailure })));
        assert!(facts
            .iter()
            .any(|f| matches!(f, WorldFact::Launched { cause: LaunchCause::Failover, .. })));
        let state = log.replay().expect("cluster log must fold");
        assert!(state.layouts.contains_key(&h.id), "the fold tracks the live replica");
    }

    #[test]
    fn stale_handles_resolve_by_id_after_failover() {
        let cfg = crash_plan(0, 5.0, None);
        let mut cluster =
            Cluster::try_new(2, raw_scheduler(), OsmlConfig::default(), cfg, 12).unwrap();
        let ClusterPlacement::Placed(stale) =
            cluster.submit(LaunchSpec::at_percent_load(Service::Login, 20.0))
        else {
            panic!("placement failed");
        };
        cluster.run(10.0);
        assert_ne!(cluster.locate(stale.id).unwrap().node, stale.node, "handle went stale");
        // The pre-failover handle still finishes the service: resolution
        // is by cluster id, never by the stale (node, app) pair.
        assert!(cluster.finish(stale));
        assert_eq!(cluster.disposition(stale.id), Some(ServiceDisposition::Finished));
        assert!(cluster.locate(stale.id).is_none());
    }

    #[test]
    fn sole_node_death_is_a_typed_eviction() {
        let cfg = crash_plan(0, 5.0, None);
        let mut cluster =
            Cluster::try_new(1, raw_scheduler(), OsmlConfig::default(), cfg, 13).unwrap();
        let ClusterPlacement::Placed(h) =
            cluster.submit(LaunchSpec::at_percent_load(Service::Moses, 30.0))
        else {
            panic!("placement failed");
        };
        cluster.run(10.0);
        assert_eq!(cluster.evictions(), 1);
        assert_eq!(cluster.disposition(h.id), Some(ServiceDisposition::Evicted));
        assert!(cluster.locate(h.id).is_none());
        // The eviction is surfaced in the log as a typed rejection, and
        // the log still folds (the resident was removed first).
        assert!(cluster.unified_log().decisions().any(|e| matches!(
            &e.body,
            EventBody::Decision(Decision::Rejected { reason: RejectReason::InsufficientResources })
        ) && e.app == Some(h.id)));
        cluster.unified_log().replay().expect("cluster log must fold");
        // New submissions are rejected while the whole fleet is down.
        assert_eq!(
            cluster.submit(LaunchSpec::at_percent_load(Service::Login, 10.0)),
            ClusterPlacement::ClusterFull
        );
    }

    #[test]
    fn recovered_node_rejoins_empty_and_accepts_work() {
        let cfg = crash_plan(0, 5.0, Some(20.0));
        let mut cluster =
            Cluster::try_new(1, raw_scheduler(), OsmlConfig::default(), cfg, 14).unwrap();
        let ClusterPlacement::Placed(h) =
            cluster.submit(LaunchSpec::at_percent_load(Service::Moses, 30.0))
        else {
            panic!("placement failed");
        };
        cluster.run(30.0);
        assert!(cluster.node_is_up(0), "recovered at t=20");
        assert_eq!(cluster.disposition(h.id), Some(ServiceDisposition::Evicted));
        assert!(cluster
            .unified_log()
            .world_facts()
            .any(|e| matches!(e.body, EventBody::World(WorldFact::NodeRecovered { node: 0 }))));
        // The rejoined (empty) node hosts new work again.
        assert!(matches!(
            cluster.submit(LaunchSpec::at_percent_load(Service::Login, 20.0)),
            ClusterPlacement::Placed(_)
        ));
    }

    #[test]
    fn qos_migration_emits_the_golden_decision_pair() {
        let mut cluster = Cluster::new(2, raw_scheduler(), OsmlConfig::default(), 15);
        cluster.migration_patience_s = 5.0;
        // Offered load beyond nominal capacity: the violation persists on
        // any node, so patience must expire and a migration must commit.
        let ClusterPlacement::Placed(h) =
            cluster.submit(LaunchSpec::at_percent_load(Service::Xapian, 120.0))
        else {
            panic!("placement failed");
        };
        cluster.run(30.0);
        assert!(cluster.migrations() >= 1, "an unfixable violation must migrate");
        let log = cluster.unified_log();
        assert!(
            log.decisions().any(|e| e.app == Some(h.id)
                && matches!(e.body, EventBody::Decision(Decision::MigrationRequested))),
            "the cluster-level migration request must be in the golden log"
        );
        assert!(
            log.decisions().any(|e| e.app == Some(h.id)
                && matches!(
                    &e.body,
                    EventBody::Decision(Decision::Alloc {
                        kind: ActionKind::Migrate,
                        provenance: Provenance::Controller,
                        counts_as_action: true,
                        ..
                    })
                )),
            "a committed migration must record its Alloc decision"
        );
        assert!(log.world_facts().any(|e| matches!(
            e.body,
            EventBody::World(WorldFact::Removed { cause: RemovalCause::Migrated })
        )));
        assert!(cluster.locate(h.id).is_some(), "service must not be lost");
        log.replay().expect("cluster log must fold after a migration");
    }

    #[test]
    fn exhausted_migration_budget_suppresses_thrashing() {
        let cfg = ClusterConfig { migration_budget: 0, ..ClusterConfig::default() };
        let mut cluster =
            Cluster::try_new(2, raw_scheduler(), OsmlConfig::default(), cfg, 16).unwrap();
        cluster.migration_patience_s = 5.0;
        let ClusterPlacement::Placed(h) =
            cluster.submit(LaunchSpec::at_percent_load(Service::Xapian, 120.0))
        else {
            panic!("placement failed");
        };
        cluster.run(30.0);
        assert_eq!(cluster.migrations(), 0, "budget 0 means no QoS migrations");
        assert!(cluster.migrations_suppressed() > 0);
        assert_eq!(cluster.locate(h.id).unwrap().node, h.node, "the service stayed put");
    }

    #[test]
    fn persistent_install_faults_roll_back_and_never_lose_the_service() {
        // Every actuation after t=4 fails (the initial placement at t<2
        // stays clean): migration installs exhaust their retry budget,
        // roll the half-launched replica back, and the service stays
        // exactly where it was.
        let cfg = ClusterConfig {
            actuation_faults: FaultPlan::new(
                9,
                FaultProfile {
                    fail_windows: vec![FailWindow::new(4.0, f64::INFINITY)],
                    ..FaultProfile::none()
                },
            ),
            ..ClusterConfig::default()
        };
        let mut cluster =
            Cluster::try_new(2, raw_scheduler(), OsmlConfig::default(), cfg, 17).unwrap();
        cluster.migration_patience_s = 5.0;
        let ClusterPlacement::Placed(h) =
            cluster.submit(LaunchSpec::at_percent_load(Service::Xapian, 120.0))
        else {
            panic!("placement failed");
        };
        let other = 1 - h.node;
        cluster.run(30.0);
        assert_eq!(cluster.migrations(), 0, "no install can commit");
        assert_eq!(cluster.locate(h.id).unwrap().node, h.node, "transaction left it in place");
        assert!(
            cluster.nodes[other].apps().is_empty(),
            "rolled-back replicas must not linger on the destination"
        );
        assert!(
            cluster.unified_log().events().iter().any(|e| matches!(
                e.body,
                EventBody::Telemetry(TelemetryNote::FaultObserved { transient: true })
            )),
            "exhausted install budgets are surfaced as telemetry"
        );
        cluster.unified_log().replay().expect("cluster log must fold");
    }

    #[test]
    fn transient_install_faults_are_retried_to_success() {
        // Sweep seeds until an install burst succeeds after >= 1 retry;
        // deterministic because every run is fully seeded.
        let mut retried_somewhere = false;
        for seed in 0..30 {
            let cfg = ClusterConfig {
                actuation_faults: FaultPlan::new(
                    seed,
                    FaultProfile { actuation_failure_prob: 0.5, ..FaultProfile::none() },
                ),
                ..ClusterConfig::default()
            };
            let mut cluster =
                Cluster::try_new(2, raw_scheduler(), OsmlConfig::default(), cfg, 18).unwrap();
            cluster.migration_patience_s = 5.0;
            if !matches!(
                cluster.submit(LaunchSpec::at_percent_load(Service::Xapian, 120.0)),
                ClusterPlacement::Placed(_)
            ) {
                continue;
            }
            cluster.run(30.0);
            if cluster.unified_log().events().iter().any(|e| {
                matches!(e.body, EventBody::Telemetry(TelemetryNote::Retried { attempts, .. }) if attempts > 1)
            }) {
                retried_somewhere = true;
                break;
            }
        }
        assert!(
            retried_somewhere,
            "a 50% transient fault rate must produce a retried install within 30 seeds"
        );
    }

    #[test]
    fn faultless_cluster_log_replays_to_the_running_set() {
        let mut cluster = Cluster::new(3, raw_scheduler(), OsmlConfig::default(), 19);
        let mut ids = Vec::new();
        for (service, pct) in
            [(Service::Moses, 30.0), (Service::ImgDnn, 30.0), (Service::Xapian, 30.0)]
        {
            if let ClusterPlacement::Placed(h) =
                cluster.submit(LaunchSpec::at_percent_load(service, pct))
            {
                ids.push(h.id);
            }
        }
        cluster.run(20.0);
        cluster.finish_id(ids[0]);
        cluster.run(5.0);
        let state = cluster.unified_log().replay().expect("cluster log must fold");
        let running: Vec<u64> = cluster.services().iter().map(|h| h.id).collect();
        assert_eq!(
            state.layouts.keys().copied().collect::<Vec<_>>(),
            running,
            "fold layout keys must equal the running set"
        );
        assert_eq!(state.tick, 25);
    }
}

//! Durable scheduler state: versioned, checksummed snapshots plus a
//! write-ahead decision journal.
//!
//! The OSML controller is a long-running user-level daemon; when it crashes,
//! the hardware allocations it programmed (CAT/MBA/taskset) persist on the
//! machine while every piece of controller state — per-app records, watchdog
//! status, Model-C's online learning — evaporates. This module makes that
//! state durable so a restarted controller picks up where the dead one
//! stopped instead of re-profiling the world from scratch:
//!
//! * [`SchedulerSnapshot`] captures the full controller state (app records,
//!   tick/action counters, watchdog health, the event log) at a checkpoint.
//!   On disk it travels inside a versioned envelope whose FNV-1a checksum
//!   covers the serialized payload, so a torn or bit-flipped file is
//!   *detected* — [`RecoveryError::ChecksumMismatch`] — never half-parsed
//!   into plausible-looking garbage.
//! * The **journal** is an append-only JSONL file of
//!   [`osml_telemetry::TraceRecord`]s, one per committed action, written by
//!   [`osml_telemetry::JournalSink`] *before* effects are observable to the
//!   next checkpoint. State is reconstructed as snapshot + replay of the
//!   journal suffix (records with `tick > snapshot.ticks`).
//! * [`RecoveryStore`] owns both files. Snapshot writes are crash-atomic
//!   (temp file + rename); the journal is append-only and flushed per
//!   record, so at most the final line can be torn — the reader tolerates
//!   exactly that.
//!
//! Reconciliation against the live substrate (adopting orphans, dropping
//! departed apps, repairing drifted layouts) lives in
//! `OsmlScheduler::recover`; this module is only the durable format.

use crate::admission::OverloadState;
use crate::golden::{UnifiedEvent, UnifiedLog};
use crate::{EventLog, OsmlConfig};
use osml_models::{Action, OaaPrediction};
use osml_platform::{Allocation, CounterSample, SloClass};
use osml_telemetry::TraceRecord;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};

/// Format version written into every snapshot envelope; bumped on breaking
/// changes to the snapshot schema. A mismatch is surfaced as
/// [`RecoveryError::VersionMismatch`] and the controller cold-starts.
pub const SNAPSHOT_VERSION: u32 = 4;

/// Durable image of one service's controller state — the serializable
/// mirror of the scheduler's private per-app record, minus the in-flight
/// pending action (a pending grant/reclaim cannot be settled across an
/// outage: the "after" sample would include the downtime, poisoning
/// Model-C's reward, so recovery abandons it and counts it in the
/// [`RecoveryReport`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppSnapshot {
    /// Raw service id.
    pub id: u64,
    /// The SLO class the service was admitted under (drives brownout shave
    /// ceilings and shed eligibility after a warm restart).
    pub class: SloClass,
    /// Model-A's OAA/RCliff prediction for the service.
    pub prediction: OaaPrediction,
    /// The allocation the controller believed the service held at snapshot
    /// time (reconciliation diffs this against the substrate to detect
    /// mutation-underneath drift; the substrate remains ground truth).
    pub allocation: Option<Allocation>,
    /// Whether an action was pending settlement when the snapshot was
    /// taken (abandoned on recovery; see the type docs).
    pub had_pending: bool,
    /// Ticks remaining before Algorithm 3 may reclaim again.
    pub reclaim_cooldown: usize,
    /// Withdrawn growth actions and their remaining blocked ticks.
    pub blocked: Vec<(Action, usize)>,
    /// Proven minimal allocation `(cores, ways, cpu_usage at proof time)`.
    pub reclaim_floor: Option<(usize, usize, f64)>,
    /// Whether a migration request is outstanding.
    pub migration_requested: bool,
    /// Consecutive ticks in guarded QoS violation.
    pub violation_ticks: usize,
    /// Last valid counter window (hold-last-good source).
    pub last_good: Option<CounterSample>,
    /// Watchdog strikes accumulated.
    pub failed_ml_actions: u32,
    /// Whether the heuristic fallback is driving the service.
    pub fallback: bool,
    /// Healthy ticks accumulated toward leaving fallback.
    pub fallback_ok_ticks: u32,
}

/// Durable image of the whole controller at one checkpoint.
///
/// Everything needed to resume scheduling is here *except* Model-C's online
/// learning state, which is checkpointed separately through
/// `osml_ml::store::ModelStore::save_agent` (it is orders of magnitude
/// larger and on its own cadence), and the allocations themselves, which
/// live on the machine and survive the crash by construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulerSnapshot {
    /// Ticks executed when the snapshot was taken. Journal records with
    /// `tick > ticks` are the replay suffix.
    pub ticks: u64,
    /// Scheduling actions committed so far (Fig. 15 accounting).
    pub actions: usize,
    /// Simulated time of the most recent observed platform fault.
    pub last_fault_s: Option<f64>,
    /// Cumulative persistent actuation failures.
    pub persistent_failures: u32,
    /// The configuration the controller was running with. Warm restart
    /// resumes under this config, not the binary's default — a restart must
    /// not silently change policy.
    pub config: OsmlConfig,
    /// The decision log (Fig. 13/16 source data survives the restart).
    pub log: EventLog,
    /// Per-service records, sorted by id.
    pub apps: Vec<AppSnapshot>,
    /// Overload-management state (admission queue, shed stack, shave
    /// ledger), so a crash mid-overload warm-restarts mid-overload.
    pub overload: OverloadState,
    /// The unified golden-thread event log (world facts + decisions +
    /// telemetry). Restoring it makes deterministic replay span the crash:
    /// the restored prefix plus post-restart events still folds to the
    /// recovered controller's state.
    pub unified: UnifiedLog,
}

/// The on-disk envelope: `{version, checksum, payload}` where `payload` is
/// the JSON-serialized [`SchedulerSnapshot`] and `checksum` is the FNV-1a-64
/// digest of the payload bytes.
#[derive(Serialize, Deserialize)]
struct SnapshotEnvelope {
    version: u32,
    checksum: u64,
    payload: String,
}

/// FNV-1a 64-bit digest. One substituted byte always changes the digest
/// (XOR keeps the difference, multiplication by the odd FNV prime is
/// invertible mod 2⁶⁴), which is the property the corruption tests pin.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Errors from snapshot persistence and decoding.
#[derive(Debug)]
#[non_exhaustive]
pub enum RecoveryError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file is not a valid envelope or payload (torn write, truncation,
    /// hand-editing).
    Corrupt(String),
    /// The envelope was written by an incompatible snapshot version.
    VersionMismatch {
        /// Version found in the envelope.
        found: u32,
        /// Version this build expects.
        expected: u32,
    },
    /// The payload does not hash to the envelope's checksum (bit rot or a
    /// partial overwrite).
    ChecksumMismatch {
        /// Digest recorded in the envelope.
        expected: u64,
        /// Digest of the payload actually found.
        found: u64,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::Io(e) => write!(f, "recovery store i/o error: {e}"),
            RecoveryError::Corrupt(why) => write!(f, "snapshot corrupt: {why}"),
            RecoveryError::VersionMismatch { found, expected } => {
                write!(f, "snapshot version {found} incompatible with expected {expected}")
            }
            RecoveryError::ChecksumMismatch { expected, found } => {
                write!(f, "snapshot checksum mismatch: envelope says {expected:#x}, payload hashes to {found:#x}")
            }
        }
    }
}

impl Error for RecoveryError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RecoveryError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for RecoveryError {
    fn from(e: std::io::Error) -> Self {
        RecoveryError::Io(e)
    }
}

/// Encodes a snapshot into its checksummed envelope JSON.
pub fn encode_snapshot(snapshot: &SchedulerSnapshot) -> String {
    let payload = serde_json::to_string(snapshot).expect("snapshot serializes");
    let envelope = SnapshotEnvelope {
        version: SNAPSHOT_VERSION,
        checksum: fnv1a64(payload.as_bytes()),
        payload,
    };
    serde_json::to_string(&envelope).expect("envelope serializes")
}

/// Decodes and verifies an envelope produced by [`encode_snapshot`].
///
/// # Errors
///
/// [`RecoveryError::Corrupt`] if the envelope or payload fails to parse,
/// [`RecoveryError::VersionMismatch`] for a foreign schema version, and
/// [`RecoveryError::ChecksumMismatch`] if the payload bytes do not hash to
/// the recorded digest. Corruption is always one of these errors — a
/// damaged snapshot never decodes into a different valid snapshot.
pub fn decode_snapshot(text: &str) -> Result<SchedulerSnapshot, RecoveryError> {
    let envelope: SnapshotEnvelope =
        serde_json::from_str(text).map_err(|e| RecoveryError::Corrupt(format!("envelope: {e}")))?;
    if envelope.version != SNAPSHOT_VERSION {
        return Err(RecoveryError::VersionMismatch {
            found: envelope.version,
            expected: SNAPSHOT_VERSION,
        });
    }
    let found = fnv1a64(envelope.payload.as_bytes());
    if found != envelope.checksum {
        return Err(RecoveryError::ChecksumMismatch { expected: envelope.checksum, found });
    }
    serde_json::from_str(&envelope.payload)
        .map_err(|e| RecoveryError::Corrupt(format!("payload: {e}")))
}

/// A directory holding the controller's durable state: `snapshot.json`
/// (checksummed envelope, atomically replaced at each checkpoint) and
/// `journal.jsonl` (append-only write-ahead decision journal).
#[derive(Debug, Clone)]
pub struct RecoveryStore {
    dir: PathBuf,
}

impl RecoveryStore {
    /// Opens (creating if needed) a store at `dir`.
    ///
    /// # Errors
    ///
    /// [`RecoveryError::Io`] if the directory cannot be created.
    pub fn open<P: AsRef<Path>>(dir: P) -> Result<Self, RecoveryError> {
        std::fs::create_dir_all(dir.as_ref())?;
        Ok(RecoveryStore { dir: dir.as_ref().to_path_buf() })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the snapshot envelope.
    pub fn snapshot_path(&self) -> PathBuf {
        self.dir.join("snapshot.json")
    }

    /// Path of the write-ahead decision journal (feed this to
    /// [`osml_telemetry::JournalSink::append`]).
    pub fn journal_path(&self) -> PathBuf {
        self.dir.join("journal.jsonl")
    }

    /// Path of the durable unified golden-thread event journal (feed this
    /// to `OsmlScheduler::attach_unified_journal`).
    pub fn unified_path(&self) -> PathBuf {
        self.dir.join("unified.jsonl")
    }

    /// Persists a snapshot crash-atomically (temp file + rename): a kill at
    /// any instant leaves the previous snapshot intact.
    ///
    /// # Errors
    ///
    /// [`RecoveryError::Io`] on write failure.
    pub fn save_snapshot(&self, snapshot: &SchedulerSnapshot) -> Result<(), RecoveryError> {
        osml_ml::store::write_atomic(&self.snapshot_path(), &encode_snapshot(snapshot))?;
        Ok(())
    }

    /// Loads the most recent snapshot. `Ok(None)` means no snapshot exists
    /// (first boot); a snapshot that exists but fails verification is an
    /// error — the caller decides to cold-start, this layer never guesses.
    ///
    /// # Errors
    ///
    /// Everything [`decode_snapshot`] reports, plus [`RecoveryError::Io`]
    /// for unreadable files.
    pub fn load_snapshot(&self) -> Result<Option<SchedulerSnapshot>, RecoveryError> {
        let path = self.snapshot_path();
        if !path.exists() {
            return Ok(None);
        }
        let text = std::fs::read_to_string(&path)?;
        decode_snapshot(&text).map(Some)
    }

    /// Reads the write-ahead journal, oldest first. A missing journal is an
    /// empty one. Because each record is flushed before the next is
    /// appended, only the final line can be torn by a crash; reading stops
    /// at the first unparseable line and keeps everything before it.
    pub fn read_journal(&self) -> Vec<TraceRecord> {
        let Ok(text) = std::fs::read_to_string(self.journal_path()) else {
            return Vec::new();
        };
        let mut records = Vec::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str::<TraceRecord>(line) {
                Ok(rec) => records.push(rec),
                Err(_) => break, // torn tail: keep the committed prefix
            }
        }
        records
    }

    /// Reads the durable unified event journal, oldest first. A missing or
    /// unreadable file is an empty log; a torn tail (the crash shape the
    /// per-event flush guarantees) is dropped, keeping the committed
    /// prefix. A journal written by a foreign `UNIFIED_LOG_VERSION` also
    /// reads as empty — recovery then falls back to the legacy journal
    /// rather than replaying events it cannot interpret.
    pub fn read_unified(&self) -> Vec<UnifiedEvent> {
        let Ok(text) = std::fs::read_to_string(self.unified_path()) else {
            return Vec::new();
        };
        match UnifiedLog::from_jsonl_tolerant(&text) {
            Ok((log, _loss)) => log.events().to_vec(),
            Err(_) => Vec::new(),
        }
    }

    /// Removes the snapshot and journals (fresh-start; used by harnesses
    /// between experiments).
    ///
    /// # Errors
    ///
    /// [`RecoveryError::Io`] on a removal failure other than the files not
    /// existing.
    pub fn clear(&self) -> Result<(), RecoveryError> {
        for path in [self.snapshot_path(), self.journal_path(), self.unified_path()] {
            match std::fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }
}

/// How `OsmlScheduler::recover` rebuilt the controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RecoveryMode {
    /// A verified snapshot was restored and the journal suffix replayed.
    Warm,
    /// No usable snapshot — every running service was adopted cold.
    Cold {
        /// Why the snapshot was unusable (`"no snapshot"`, checksum
        /// mismatch, version mismatch, …).
        reason: String,
    },
}

/// What reconciliation found and did during `OsmlScheduler::recover`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Warm (snapshot + journal) or cold (adopt-everything) restart.
    pub mode: RecoveryMode,
    /// Services restored from their snapshot records.
    pub restored: usize,
    /// Orphaned services found on the substrate with no snapshot record
    /// (launched while the controller was down) and adopted.
    pub adopted: usize,
    /// Snapshot records whose service no longer runs (departed while the
    /// controller was down) and were dropped.
    pub dropped: usize,
    /// Restored services whose in-flight pending action was abandoned.
    pub pending_abandoned: usize,
    /// Restored services whose live allocation differed from the snapshot
    /// (mutated underneath the dead controller). The substrate value wins.
    pub alloc_drift: usize,
    /// Services whose live layout was invalid (overlapping cores, malformed
    /// masks) and was repaired during reconciliation.
    pub drift_repaired: usize,
    /// Journal records newer than the snapshot that were replayed into the
    /// action/tick counters.
    pub journal_replayed: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use osml_workloads::oaa::AllocPoint;
    use proptest::prelude::*;

    fn sample(latency_ms: f64) -> CounterSample {
        CounterSample {
            ipc: 1.2,
            llc_misses_per_sec: 3.0e7,
            mbl_gbps: 4.0,
            cpu_usage: 3.5,
            memory_util_gb: 2.0,
            virt_memory_gb: 3.0,
            res_memory_gb: 1.5,
            llc_occupancy_mb: 12.0,
            allocated_cores: 8,
            allocated_ways: 6,
            frequency_ghz: 2.3,
            response_latency_ms: latency_ms,
        }
    }

    /// Deterministic-but-varied app snapshot (drives structural coverage:
    /// options, tuples, enums, nested vecs).
    fn app(id: u64) -> AppSnapshot {
        let k = id as usize;
        AppSnapshot {
            id,
            class: match id % 3 {
                0 => SloClass::LatencyCritical,
                1 => SloClass::Degradable,
                _ => SloClass::BestEffort,
            },
            prediction: OaaPrediction::new(
                AllocPoint::new(1 + k % 16, 1 + k % 11),
                0.1 * k as f64,
                AllocPoint::new(1 + k % 4, 1 + k % 3),
            ),
            allocation: (!k.is_multiple_of(3)).then(|| {
                Allocation::new(
                    osml_platform::CoreSet::first_n(1 + k % 8),
                    osml_platform::WayMask::contiguous(k % 5, 1 + k % 6).unwrap(),
                    osml_platform::MbaThrottle::unthrottled(),
                )
            }),
            had_pending: k.is_multiple_of(2),
            reclaim_cooldown: k % 10,
            blocked: (0..k % 3)
                .map(|i| (Action { dcores: (i as i32) - 1, dways: 1 }, 5 + i))
                .collect(),
            reclaim_floor: (k % 4 == 1).then(|| (1 + k % 6, 1 + k % 6, 0.5 * k as f64)),
            migration_requested: k.is_multiple_of(5),
            violation_ticks: k % 7,
            last_good: (k % 2 == 1).then(|| sample(10.0 + k as f64)),
            failed_ml_actions: (k % 4) as u32,
            fallback: k.is_multiple_of(6),
            fallback_ok_ticks: (k % 3) as u32,
        }
    }

    fn snapshot_from(ticks: u64, napps: usize, faulty: bool) -> SchedulerSnapshot {
        let mut log = EventLog::new();
        log.push(
            1.0,
            Some(osml_platform::AppId(1)),
            crate::EventKind::FaultInjected { transient: true },
        );
        SchedulerSnapshot {
            ticks,
            actions: (ticks as usize) * 2 + napps,
            last_fault_s: faulty.then_some(ticks as f64 * 0.5),
            persistent_failures: (ticks % 5) as u32,
            config: OsmlConfig { sampling_window_s: 1.0 + ticks as f64, ..OsmlConfig::default() },
            log,
            apps: (0..napps as u64).map(app).collect(),
            overload: {
                let mut ov = OverloadState::default();
                if faulty {
                    ov.queue.push(crate::admission::QueuedEntry {
                        ticket: 900 + ticks,
                        class: SloClass::Degradable,
                        enqueued_tick: ticks.saturating_sub(2),
                        seq: 0,
                        need_cores: 4,
                        need_ways: 2,
                    });
                    ov.next_seq = 1;
                    ov.brownout_since = Some(ticks.saturating_sub(1));
                }
                ov
            },
            unified: {
                let mut u = UnifiedLog::new();
                u.push(
                    ticks,
                    ticks as f64,
                    None,
                    crate::golden::EventBody::World(crate::golden::WorldFact::TickElapsed),
                );
                u
            },
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// serialize → checksum → deserialize is the identity.
        #[test]
        fn snapshot_round_trips(ticks in 0u64..100_000, napps in 0usize..9, f in 0u8..2) {
            let snap = snapshot_from(ticks, napps, f == 1);
            let decoded = decode_snapshot(&encode_snapshot(&snap)).expect("round trip");
            prop_assert_eq!(decoded, snap);
        }

        /// A corrupted envelope is always *detected*: decoding either fails
        /// typed, or (vacuously) still equals the original — it never
        /// half-parses into a different valid snapshot.
        #[test]
        fn corruption_is_detected_never_misparsed(
            ticks in 0u64..10_000,
            napps in 1usize..6,
            pos_seed in 0usize..1_000_000,
            byte in 0u8..94,
        ) {
            let snap = snapshot_from(ticks, napps, true);
            let text = encode_snapshot(&snap);
            let bytes = text.as_bytes();
            let pos = pos_seed % bytes.len();
            let replacement = b' ' + byte; // printable ASCII, keeps UTF-8 valid
            prop_assume!(replacement != bytes[pos]);
            let mut corrupted = bytes.to_vec();
            corrupted[pos] = replacement;
            let corrupted = String::from_utf8(corrupted).expect("ascii substitution");
            match decode_snapshot(&corrupted) {
                Err(_) => {}
                Ok(decoded) => prop_assert_eq!(
                    decoded, snap,
                    "a corrupt snapshot decoded into *different* state"
                ),
            }
        }

        /// Truncation (the torn-write shape a crash produces) never parses.
        #[test]
        fn truncation_is_detected(ticks in 0u64..10_000, keep_per_mille in 0usize..1000) {
            let snap = snapshot_from(ticks, 3, false);
            let text = encode_snapshot(&snap);
            let keep = text.len() * keep_per_mille / 1000;
            prop_assume!(keep < text.len());
            let truncated: String = text.chars().take(keep).collect();
            prop_assert!(decode_snapshot(&truncated).is_err());
        }
    }

    #[test]
    fn store_persists_and_reloads() {
        let dir = std::env::temp_dir().join(format!("osml-recovery-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = RecoveryStore::open(&dir).unwrap();
        assert!(store.load_snapshot().unwrap().is_none(), "first boot has no snapshot");
        let snap = snapshot_from(42, 4, true);
        store.save_snapshot(&snap).unwrap();
        assert_eq!(store.load_snapshot().unwrap(), Some(snap.clone()));
        // Overwrite with a newer snapshot; the newest wins.
        let newer = snapshot_from(43, 4, true);
        store.save_snapshot(&newer).unwrap();
        assert_eq!(store.load_snapshot().unwrap(), Some(newer));
        store.clear().unwrap();
        assert!(store.load_snapshot().unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tampered_snapshot_file_is_rejected() {
        let dir = std::env::temp_dir().join(format!("osml-recovery-tamper-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = RecoveryStore::open(&dir).unwrap();
        store.save_snapshot(&snapshot_from(7, 2, false)).unwrap();
        // Inside the envelope the payload is an escaped JSON string, so the
        // field appears as `\"ticks\":7`.
        let text = std::fs::read_to_string(store.snapshot_path()).unwrap();
        assert!(text.contains("\\\"ticks\\\":7"), "tamper target must exist");
        std::fs::write(store.snapshot_path(), text.replace("\\\"ticks\\\":7", "\\\"ticks\\\":9"))
            .unwrap();
        assert!(matches!(store.load_snapshot(), Err(RecoveryError::ChecksumMismatch { .. })));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreign_version_is_rejected() {
        let snap = snapshot_from(1, 1, false);
        let text = encode_snapshot(&snap).replacen("\"version\":4", "\"version\":99", 1);
        assert!(matches!(
            decode_snapshot(&text),
            Err(RecoveryError::VersionMismatch { found: 99, expected: 4 })
        ));
    }

    #[test]
    fn journal_reader_tolerates_a_torn_tail() {
        let dir =
            std::env::temp_dir().join(format!("osml-recovery-journal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = RecoveryStore::open(&dir).unwrap();
        assert!(store.read_journal().is_empty(), "missing journal reads as empty");
        let rec = |tick: u64| osml_telemetry::TraceRecord {
            tick,
            time_s: tick as f64,
            app: Some(1),
            kind: osml_telemetry::ActionKind::Grant,
            provenance: osml_telemetry::Provenance::ModelC,
            pre: None,
            post: None,
            counts_as_action: true,
            detail: None,
        };
        let mut text = String::new();
        for t in 0..3 {
            text.push_str(&serde_json::to_string(&rec(t)).unwrap());
            text.push('\n');
        }
        text.push_str("{\"tick\":3,\"time_s\":3.0,\"app"); // torn mid-write
        std::fs::write(store.journal_path(), &text).unwrap();
        let records = store.read_journal();
        assert_eq!(records.len(), 3, "committed prefix survives, torn tail is dropped");
        assert_eq!(records[2].tick, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

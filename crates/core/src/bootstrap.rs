//! Bootstrap allocation for a service that just arrived: a modest slice of
//! idle resources for the profiling window, before Algorithm 1 decides the
//! real allocation.

use osml_platform::{Allocation, CoreSet, MbaThrottle, Substrate, WayMask};

/// Picks a modest bootstrap allocation from idle resources for a newly
/// launched service (the controller takes over right after the profiling
/// window).
pub fn bootstrap_allocation<S: Substrate>(server: &mut S, threads: usize) -> Allocation {
    let topo = server.topology().clone();
    let idle = server.idle_cores();
    let want = threads.clamp(1, 8);
    let cores = idle
        .pick_spread(&topo, want.min(idle.count().max(1)))
        .filter(|c| !c.is_empty())
        .unwrap_or_else(|| CoreSet::first_n(2));
    let ways = (1..=4usize)
        .rev()
        .find_map(|n| server.find_free_ways(n, None))
        .unwrap_or_else(|| WayMask::all(&topo));
    Allocation::new(cores, ways, MbaThrottle::unthrottled())
}

//! Actuation resilience: a retry-with-backoff borrow-wrapper the controller
//! threads through every substrate interaction.
//!
//! [`Retrying`] implements [`Substrate`] over a `&mut S`, so the layout
//! helpers and the algorithm bodies are oblivious to it — any `reallocate`
//! they issue is transparently retried while the error is classified
//! transient ([`PlatformError::is_transient`]) and the retry budget lasts.
//! Backoff is charged to an accounting meter rather than slept: the
//! simulated clock belongs to the harness, and a zero-fault run must stay
//! bit-identical to the unwrapped controller.
//!
//! Every observation (failed attempt, successful retry burst, exhausted
//! budget) accumulates in [`RetryStats`], which the scheduler drains into
//! its event log at transaction boundaries.

use osml_platform::{
    Allocation, AppId, CounterSample, LatencyStats, PlatformError, Substrate, Topology,
};

/// One actuation that succeeded only after retries:
/// `(app, total attempts, total backoff ms)`.
pub(crate) type RetryBurst = (AppId, u32, f64);

/// Fault observations accumulated by [`Retrying`] and drained by the
/// scheduler into its event log.
#[derive(Debug, Default)]
pub(crate) struct RetryStats {
    /// One entry per transiently failed attempt (including exhausted ones).
    pub faults: Vec<AppId>,
    /// Actuations that succeeded after one or more retries.
    pub retried: Vec<RetryBurst>,
    /// Actuations whose whole retry budget was exhausted (persistent
    /// transient failures — the rollback trigger). Exhaustion is surfaced
    /// here rather than only as the returned error so the scheduler's event
    /// log can distinguish "succeeded after retries" from "gave up"; the
    /// per-burst backoff recorded in [`RetryStats::retried`] is capped at
    /// `OsmlConfig::max_backoff_ms`, so an exhausted budget never charges
    /// unbounded simulated wait.
    pub persistent: u32,
}

impl RetryStats {
    /// Whether anything at all was observed.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty() && self.retried.is_empty() && self.persistent == 0
    }
}

/// The shared at-least-once retry discipline: a budget of re-attempts and
/// the capped exponential-backoff accounting series. [`Retrying`] applies
/// it to substrate actuations; the cluster control plane applies the same
/// policy to command resends over a lossy channel, so both layers charge
/// backoff identically (accounted, never slept).
#[derive(Debug, Clone, Copy)]
pub(crate) struct RetryPolicy {
    /// Re-attempts allowed after the first try.
    pub budget: u32,
    /// Backoff base, ms; retry *n* charges `base · 2ⁿ⁻¹`.
    pub backoff_base_ms: f64,
    /// Ceiling on the total backoff charged to one operation, ms.
    pub max_backoff_ms: f64,
}

impl RetryPolicy {
    /// The running backoff total after charging retry number `attempts`
    /// (1-based count of *completed* attempts): adds `base · 2ⁿ⁻¹` to
    /// `charged_ms` and saturates at the cap. The exponential term is
    /// computed in f64 (no integer shift to overflow).
    pub fn charge(&self, attempts: u32, charged_ms: f64) -> f64 {
        let step = self.backoff_base_ms * 2f64.powi((attempts - 1).min(1023) as i32);
        (charged_ms + step).min(self.max_backoff_ms)
    }
}

/// A [`Substrate`] borrow-wrapper that retries transiently failed
/// actuations with exponential backoff before letting the error surface.
/// All other operations delegate untouched.
#[derive(Debug)]
pub(crate) struct Retrying<'a, S: Substrate> {
    inner: &'a mut S,
    policy: RetryPolicy,
    /// Observations pending a drain by the scheduler.
    pub stats: RetryStats,
}

impl<'a, S: Substrate> Retrying<'a, S> {
    /// Wraps `inner` with a retry budget and a total-backoff cap.
    pub fn new(inner: &'a mut S, budget: u32, backoff_base_ms: f64, max_backoff_ms: f64) -> Self {
        let policy = RetryPolicy { budget, backoff_base_ms, max_backoff_ms };
        Retrying { inner, policy, stats: RetryStats::default() }
    }

    /// Drains the accumulated observations.
    pub fn take_stats(&mut self) -> RetryStats {
        std::mem::take(&mut self.stats)
    }
}

impl<S: Substrate> Substrate for Retrying<'_, S> {
    fn topology(&self) -> &Topology {
        self.inner.topology()
    }

    fn reallocate(&mut self, id: AppId, alloc: Allocation) -> Result<(), PlatformError> {
        let mut attempts: u32 = 0;
        let mut backoff_ms = 0.0;
        loop {
            attempts += 1;
            match self.inner.reallocate(id, alloc) {
                Ok(()) => {
                    if attempts > 1 {
                        self.stats.retried.push((id, attempts, backoff_ms));
                    }
                    return Ok(());
                }
                Err(e) if e.is_transient() => {
                    self.stats.faults.push(id);
                    if attempts > self.policy.budget {
                        self.stats.persistent += 1;
                        return Err(e);
                    }
                    // Accounting only: charge the backoff, don't sleep.
                    backoff_ms = self.policy.charge(attempts, backoff_ms);
                }
                // Permanent errors (malformed request, unknown app) are the
                // caller's bug or a departure race; retrying cannot help.
                Err(e) => return Err(e),
            }
        }
    }

    fn remove(&mut self, id: AppId) -> Result<(), PlatformError> {
        self.inner.remove(id)
    }

    fn advance(&mut self, seconds: f64) {
        self.inner.advance(seconds);
    }

    fn now(&self) -> f64 {
        self.inner.now()
    }

    fn apps(&self) -> Vec<AppId> {
        self.inner.apps()
    }

    fn allocation(&self, id: AppId) -> Option<Allocation> {
        self.inner.allocation(id)
    }

    fn sample(&self, id: AppId) -> Option<CounterSample> {
        self.inner.sample(id)
    }

    fn peek_sample(&self, id: AppId) -> Option<CounterSample> {
        // Must delegate explicitly: the trait default would route through
        // `Retrying::sample`, which is fine, but an inner substrate with its
        // own `peek_sample` override (fault injection) must see the peek.
        self.inner.peek_sample(id)
    }

    fn latency(&self, id: AppId) -> Option<LatencyStats> {
        self.inner.latency(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osml_platform::{CoreSet, MbaThrottle, WayMask};
    use std::collections::BTreeMap;

    /// A substrate whose next `fail_next` reallocations fail transiently.
    #[derive(Debug)]
    struct Flaky {
        topo: Topology,
        apps: BTreeMap<AppId, Allocation>,
        fail_next: usize,
        attempts_seen: usize,
    }

    impl Flaky {
        fn new(fail_next: usize) -> Self {
            let mut apps = BTreeMap::new();
            apps.insert(
                AppId(1),
                Allocation::new(
                    CoreSet::first_n(2),
                    WayMask::contiguous(0, 2).unwrap(),
                    MbaThrottle::unthrottled(),
                ),
            );
            Flaky { topo: Topology::xeon_e5_2697_v4(), apps, fail_next, attempts_seen: 0 }
        }
    }

    impl Substrate for Flaky {
        fn topology(&self) -> &Topology {
            &self.topo
        }
        fn reallocate(&mut self, id: AppId, alloc: Allocation) -> Result<(), PlatformError> {
            self.attempts_seen += 1;
            if !self.apps.contains_key(&id) {
                return Err(PlatformError::UnknownApp { id: id.0 });
            }
            if self.fail_next > 0 {
                self.fail_next -= 1;
                return Err(PlatformError::ActuationFailed { transient: true });
            }
            self.apps.insert(id, alloc);
            Ok(())
        }
        fn remove(&mut self, id: AppId) -> Result<(), PlatformError> {
            self.apps.remove(&id).map(|_| ()).ok_or(PlatformError::UnknownApp { id: id.0 })
        }
        fn advance(&mut self, _seconds: f64) {}
        fn now(&self) -> f64 {
            0.0
        }
        fn apps(&self) -> Vec<AppId> {
            self.apps.keys().copied().collect()
        }
        fn allocation(&self, id: AppId) -> Option<Allocation> {
            self.apps.get(&id).copied()
        }
        fn sample(&self, _id: AppId) -> Option<CounterSample> {
            None
        }
        fn latency(&self, _id: AppId) -> Option<LatencyStats> {
            None
        }
    }

    fn some_alloc() -> Allocation {
        Allocation::new(
            CoreSet::first_n(4),
            WayMask::contiguous(0, 4).unwrap(),
            MbaThrottle::unthrottled(),
        )
    }

    /// The default cap from `OsmlConfig` — high enough that these
    /// small-budget tests keep their historical charged values.
    const CAP_MS: f64 = 1000.0;

    #[test]
    fn retries_within_budget_succeed_and_are_recorded() {
        let mut flaky = Flaky::new(2);
        let mut retrying = Retrying::new(&mut flaky, 3, 1.0, CAP_MS);
        assert!(retrying.reallocate(AppId(1), some_alloc()).is_ok());
        let stats = retrying.take_stats();
        assert_eq!(stats.faults.len(), 2);
        assert_eq!(stats.retried, vec![(AppId(1), 3, 3.0)], "1 ms + 2 ms of backoff");
        assert_eq!(stats.persistent, 0);
        assert_eq!(flaky.attempts_seen, 3);
        assert_eq!(flaky.allocation(AppId(1)), Some(some_alloc()));
    }

    #[test]
    fn exhausted_budget_is_a_persistent_failure() {
        let mut flaky = Flaky::new(100);
        let mut retrying = Retrying::new(&mut flaky, 3, 1.0, CAP_MS);
        let err = retrying.reallocate(AppId(1), some_alloc()).unwrap_err();
        assert!(err.is_transient());
        let stats = retrying.take_stats();
        assert_eq!(stats.faults.len(), 4, "initial attempt + 3 retries");
        assert_eq!(stats.persistent, 1);
        assert!(stats.retried.is_empty());
        assert_eq!(flaky.attempts_seen, 4, "budget bounds the attempts");
    }

    #[test]
    fn permanent_errors_are_never_retried() {
        let mut flaky = Flaky::new(0);
        let mut retrying = Retrying::new(&mut flaky, 3, 1.0, CAP_MS);
        let err = retrying.reallocate(AppId(99), some_alloc()).unwrap_err();
        assert!(!err.is_transient());
        assert!(retrying.take_stats().is_empty());
        assert_eq!(flaky.attempts_seen, 1);
    }

    #[test]
    fn success_without_faults_leaves_no_trace() {
        let mut flaky = Flaky::new(0);
        let mut retrying = Retrying::new(&mut flaky, 3, 1.0, CAP_MS);
        assert!(retrying.reallocate(AppId(1), some_alloc()).is_ok());
        assert!(retrying.take_stats().is_empty());
    }

    /// Pins the charged-backoff series: pure doubling below the cap
    /// (1+2+4+… ms), saturation at `max_backoff_ms` once the cap binds, and
    /// no exponent wrap-around at large budgets (the old `1u32 << n.min(16)`
    /// clamp silently froze the *step* at 2¹⁶ instead of capping the total).
    #[test]
    fn charged_backoff_series_doubles_then_saturates_at_the_cap() {
        // Below the cap: 4 retries then success charges 1+2+4+8 = 15 ms.
        let mut flaky = Flaky::new(4);
        let mut retrying = Retrying::new(&mut flaky, 10, 1.0, CAP_MS);
        assert!(retrying.reallocate(AppId(1), some_alloc()).is_ok());
        assert_eq!(retrying.take_stats().retried, vec![(AppId(1), 5, 15.0)]);

        // Cap binding: the series 1+2+4+8+16+32 = 63 truncates at 50.
        let mut flaky = Flaky::new(6);
        let mut retrying = Retrying::new(&mut flaky, 10, 1.0, 50.0);
        assert!(retrying.reallocate(AppId(1), some_alloc()).is_ok());
        assert_eq!(retrying.take_stats().retried, vec![(AppId(1), 7, 50.0)]);

        // A budget deep past the old 2¹⁶ exponent clamp charges exactly the
        // cap — finite, monotone, no wrap.
        let mut flaky = Flaky::new(80);
        let mut retrying = Retrying::new(&mut flaky, 100, 1.0, CAP_MS);
        assert!(retrying.reallocate(AppId(1), some_alloc()).is_ok());
        assert_eq!(retrying.take_stats().retried, vec![(AppId(1), 81, CAP_MS)]);
    }
}

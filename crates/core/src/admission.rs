//! Admission-control and brownout state for overload management.
//!
//! When co-located demand exceeds the machine, Algorithm 1's "insufficient
//! resources" exit no longer has to be terminal: arrivals wait in a
//! priority-ordered queue bounded by [`crate::config::OverloadConfig`], and
//! sustained pressure moves the controller into a declared brownout where
//! Model-B′-priced shaves (and, as a last resort, LIFO shedding of
//! best-effort services) free capacity for queued latency-critical work.
//!
//! Everything here is plain serializable state — the policy lives in
//! `osml.rs` — so the whole overload picture joins `SchedulerSnapshot` and
//! survives a crash mid-overload.

use osml_platform::{Allocation, SloClass};
use serde::{Deserialize, Serialize};

/// Cap on banked retry credits: each departure / slack signal banks one
/// admission retry, but a quiet stretch must not let a later burst replay
/// dozens of profiling windows in a single tick.
pub(crate) const MAX_RETRY_CREDITS: u32 = 4;

/// One deferred arrival holding a seat in the admission queue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueuedEntry {
    /// Opaque ticket handed back to the harness (the raw id of the arrival
    /// that was deferred).
    pub ticket: u64,
    /// SLO class the arrival was submitted with.
    pub class: SloClass,
    /// Scheduler tick at first deferral — retries keep the original clock,
    /// so the max-wait horizon counts from the first rejection.
    pub enqueued_tick: u64,
    /// Monotonic arrival sequence number: FIFO order within a class.
    pub seq: u64,
    /// Model-A's RCliff core demand at rejection time (the smallest holding
    /// the controller would accept): brownout sheds only when freeing
    /// best-effort capacity can plausibly cover this. `0` = unknown.
    pub need_cores: usize,
    /// RCliff way demand at rejection time. `0` = unknown.
    pub need_ways: usize,
}

/// One shed best-effort service awaiting re-admission (LIFO stack).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShedEntry {
    /// Ticket (raw id at shed time) the harness relaunches against.
    pub ticket: u64,
    /// Class at shed time (always best-effort under the current policy).
    pub class: SloClass,
    /// Scheduler tick the service was shed at.
    pub shed_tick: u64,
}

/// A brownout shave applied to a live service, remembering what to restore.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShaveRecord {
    /// Raw id of the shaved service.
    pub app: u64,
    /// Allocation before the first shave (the restoration target).
    pub original: Allocation,
    /// Cumulative Model-B′-priced slowdown imposed so far, compared against
    /// the class ceiling before every further shave.
    pub priced: f64,
}

/// The complete overload-management state machine. Serialized into
/// [`crate::recovery::SchedulerSnapshot`] so a crash mid-overload
/// warm-restarts with its queue, shed stack and shave ledger intact.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OverloadState {
    /// Deferred arrivals, unordered; the head is selected by
    /// `(class rank, seq)` so latency-critical work always goes first.
    pub queue: Vec<QueuedEntry>,
    /// Best-effort services shed during brownout, restored LIFO.
    pub shed: Vec<ShedEntry>,
    /// Live services currently running below their pre-brownout allocation,
    /// restored in reverse shave order on brownout exit.
    pub shaved: Vec<ShaveRecord>,
    /// Next FIFO sequence number.
    pub next_seq: u64,
    /// Banked admission retries (capped at [`MAX_RETRY_CREDITS`]): one is
    /// earned per departure, per slack-growth observation and per
    /// successful shave; one is spent per `poll_admission`.
    pub retry_credits: u32,
    /// Ticket currently being retried by the harness (between
    /// `poll_admission` and the resulting `on_arrival_classed`).
    pub in_flight: Option<u64>,
    /// Raw id whose next `on_departure` must not bank a retry credit: the
    /// departure of a just-deferred arrival (or failed retry) frees only
    /// its own bootstrap allocation, not new capacity.
    pub suppress_credit_for: Option<u64>,
    /// Services shed by the controller that the harness has not yet
    /// withdrawn from the substrate (drained via `take_shed`).
    pub pending_shed: Vec<u64>,
    /// Tick brownout was entered at, while degraded.
    pub brownout_since: Option<u64>,
    /// Consecutive quiet (empty-queue) ticks counted toward brownout exit.
    pub exit_streak: u32,
    /// `(idle cores, idle ways)` at the last tick, for the reclaim-slack
    /// retry signal.
    pub last_idle: Option<(usize, usize)>,
}

impl OverloadState {
    /// Index of the next entry to retry: lowest class rank first (most
    /// protected), FIFO within a class.
    pub fn head_index(&self) -> Option<usize> {
        (0..self.queue.len()).min_by_key(|&i| (self.queue[i].class.rank(), self.queue[i].seq))
    }

    /// Index of the entry an over-full queue would evict: highest class
    /// rank (least protected), newest within that class.
    pub fn eviction_index(&self) -> Option<usize> {
        (0..self.queue.len()).max_by_key(|&i| (self.queue[i].class.rank(), self.queue[i].seq))
    }

    /// Whether `ticket` is still waiting (queued or shed).
    pub fn is_waiting(&self, ticket: u64) -> bool {
        self.queue.iter().any(|e| e.ticket == ticket)
            || self.shed.iter().any(|e| e.ticket == ticket)
    }

    /// Banks one retry credit, saturating at [`MAX_RETRY_CREDITS`].
    pub(crate) fn bank_credit(&mut self) {
        self.retry_credits = (self.retry_credits + 1).min(MAX_RETRY_CREDITS);
    }

    /// Whether any overload machinery currently holds state the controller
    /// must keep driving (waiters to retry or damage to restore).
    pub fn is_active(&self) -> bool {
        !self.queue.is_empty()
            || !self.shed.is_empty()
            || !self.shaved.is_empty()
            || self.brownout_since.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(ticket: u64, class: SloClass, seq: u64) -> QueuedEntry {
        QueuedEntry { ticket, class, enqueued_tick: 0, seq, need_cores: 0, need_ways: 0 }
    }

    #[test]
    fn head_prefers_protected_classes_then_fifo() {
        let mut st = OverloadState::default();
        st.queue.push(entry(1, SloClass::BestEffort, 0));
        st.queue.push(entry(2, SloClass::LatencyCritical, 1));
        st.queue.push(entry(3, SloClass::LatencyCritical, 2));
        st.queue.push(entry(4, SloClass::Degradable, 3));
        assert_eq!(st.queue[st.head_index().unwrap()].ticket, 2);
        st.queue.remove(st.head_index().unwrap());
        assert_eq!(st.queue[st.head_index().unwrap()].ticket, 3);
        st.queue.remove(st.head_index().unwrap());
        assert_eq!(st.queue[st.head_index().unwrap()].ticket, 4);
    }

    #[test]
    fn eviction_picks_least_protected_newest() {
        let mut st = OverloadState::default();
        st.queue.push(entry(1, SloClass::BestEffort, 0));
        st.queue.push(entry(2, SloClass::BestEffort, 1));
        st.queue.push(entry(3, SloClass::LatencyCritical, 2));
        assert_eq!(st.queue[st.eviction_index().unwrap()].ticket, 2);
    }

    #[test]
    fn credits_saturate() {
        let mut st = OverloadState::default();
        for _ in 0..20 {
            st.bank_credit();
        }
        assert_eq!(st.retry_credits, MAX_RETRY_CREDITS);
    }

    #[test]
    fn state_round_trips_through_serde() {
        let mut st = OverloadState::default();
        st.queue.push(entry(7, SloClass::Degradable, 3));
        st.shed.push(ShedEntry { ticket: 9, class: SloClass::BestEffort, shed_tick: 12 });
        st.brownout_since = Some(10);
        st.last_idle = Some((4, 2));
        let back: OverloadState =
            serde_json::from_str(&serde_json::to_string(&st).unwrap()).unwrap();
        assert_eq!(back, st);
    }
}

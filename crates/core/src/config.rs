use osml_platform::{ChannelPlan, FaultPlan, NodeFaultPlan, SloClass};
use serde::{Deserialize, Serialize};

/// Tunables of the OSML controller. Defaults follow the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OsmlConfig {
    /// Seconds of counter sampling before Model-A is consulted for a new
    /// service (§V-B: 2 s by default; shorter windows pick up cache-warmup
    /// and context-switch noise).
    pub sampling_window_s: f64,
    /// QoS slowdown OSML is willing to impose on a neighbour when depriving
    /// resources through Model-B (Algorithm 1, line 11: "can tolerate a
    /// certain QoS slowdown").
    pub deprive_slowdown_budget: f64,
    /// Maximum neighbours involved in one B-point match (Algorithm 1,
    /// line 17: "at most 3 apps involved; the less the better").
    pub max_deprived_apps: usize,
    /// Neighbour slowdown beyond which Algorithm 4 refuses to share and
    /// requests a migration instead.
    pub sharing_slowdown_budget: f64,
    /// Surplus margin of Algorithm 3: reclamation starts only when a
    /// service holds more than `RCliff + margin` in both dimensions
    /// (line 2: "> its RCliff's + 2").
    pub surplus_margin: usize,
    /// Whether to program MBA throttles from Model-A's OAA bandwidth
    /// (§V-B). Disable on substrates without MBA.
    pub manage_bandwidth: bool,
    /// Whether Model-C keeps training online from observed transitions.
    pub online_learning: bool,
    /// Ablation switch: when false, ineffective growth actions are not
    /// withdrawn and re-blocked (the trial-withdrawal mechanism this
    /// reproduction layers on Model-C; §V-A's "the corresponding actions
    /// will be withdrawn").
    pub withdraw_ineffective_growth: bool,
    /// Ablation switch (§IV-D "Why don't we use Model-C directly?"):
    /// when false, Algorithm 1 skips Model-A/B and leaves the newcomer on
    /// its bootstrap allocation, forcing Model-C to explore from scratch.
    pub placement_via_models: bool,
    /// Retry budget for transiently failed actuations: one actuation is
    /// attempted at most `1 + actuation_retry_budget` times before the
    /// failure is treated as persistent.
    pub actuation_retry_budget: u32,
    /// Base of the exponential backoff charged between actuation retries,
    /// milliseconds (attempt *n* waits `base · 2ⁿ`). Accounting only — the
    /// simulated clock is driven by the harness.
    pub retry_backoff_base_ms: f64,
    /// Ceiling on the total backoff charged to one actuation, milliseconds.
    /// The exponential series is truncated here instead of silently
    /// wrapping: with the default budget the cap never binds, but a
    /// generous budget cannot charge an unbounded (or, previously,
    /// exponent-clamped) amount of simulated wait.
    pub max_backoff_ms: f64,
    /// Consecutive failed/ineffective ML actions on one service before the
    /// QoS watchdog quarantines the model path and engages the heuristic
    /// fallback.
    pub fallback_threshold: u32,
    /// Consecutive healthy ticks (QoS met, no fresh faults) a quarantined
    /// service must accumulate before the ML path is re-engaged.
    pub fallback_recovery_ticks: u32,
    /// Seconds after the last observed platform fault during which the
    /// watchdog also counts *ineffective* (withdrawn) ML actions toward the
    /// fallback threshold. Outside this window a withdrawal is ordinary
    /// Model-C exploration, so a fault-free run never engages fallback and
    /// stays bit-identical to the pre-resilience controller.
    pub fault_attention_s: f64,
    /// Overload management: admission queue + brownout. Disabled by default
    /// (`queue_depth == 0`), in which case every decision and event is
    /// bit-identical to the pre-overload controller. (Snapshots serialized
    /// before this field existed are already rejected by the snapshot
    /// version bump, so no serde default is needed.)
    pub overload: OverloadConfig,
    /// Forces strict overlap hygiene even with overload management off:
    /// whenever a placement path re-derives a core set from a service's
    /// current holding, cores another service also holds are subtracted
    /// first, so a transient bootstrap overlap is never laundered into a
    /// dedicated allocation. Always on while `overload` is enabled (the
    /// admission/shed churn leaves the overlap window wide open); off by
    /// default because the committed figure corpus was generated through
    /// the legacy paths and stays bit-identical that way.
    pub strict_layout: bool,
    /// Selects the event-driven tick engine: cooldown/blocked/queue-wait
    /// deadlines become scheduled expiry events on a timer wheel instead of
    /// per-tick O(services) decrement scans; Model-A refreshes plus the
    /// Model-B/B′ pricing loops and Model-C action selection run as single
    /// batched forward passes (above a small-fleet threshold where batching
    /// pays for itself); and services whose counters, latency and layout
    /// have not moved since their last quiescent probe are skipped via a
    /// dirty-set memo. On by default: the equivalence property suite pins
    /// both engines to identical unified logs and layouts, the batched
    /// gathers read counters through the side-effect-free
    /// [`osml_platform::Substrate::peek_sample`] (so per-*call*
    /// fault-injection streams — and therefore chaos runs and the committed
    /// figure corpus — are bit-identical to the scan engine), and the
    /// replay A/B harness gates the default on zero decision divergence.
    /// Scan mode remains available as the pure reference implementation.
    pub event_driven: bool,
}

/// Overload-management tunables: the admission queue and brownout mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverloadConfig {
    /// Maximum arrivals waiting in the admission queue. `0` disables
    /// overload management entirely: rejections stay terminal and the
    /// controller never defers, shaves or sheds.
    pub queue_depth: usize,
    /// Ticks a deferred arrival may wait before it is dropped with a
    /// [`osml_platform::RejectReason::WaitTimeout`].
    pub max_wait_ticks: u64,
    /// Whether sustained overload may enter brownout (shaving slack from
    /// running services and shedding best-effort work). Without it the
    /// queue still defers and retries, but capacity must appear on its own.
    pub brownout: bool,
    /// Ticks a non-best-effort arrival must have waited before the
    /// controller declares brownout.
    pub brownout_after_ticks: u64,
    /// Consecutive ticks with an empty queue before brownout starts
    /// restoring shaved services and exits.
    pub brownout_exit_hold_ticks: u32,
    /// Maximum Model-B′-priced shave steps applied per tick while in
    /// brownout (each step takes one core or one way from the cheapest
    /// victim).
    pub shave_step_budget: usize,
    /// Cumulative priced slowdown ceiling for latency-critical services.
    pub lc_slowdown_ceiling: f64,
    /// Cumulative priced slowdown ceiling for degradable services.
    pub degradable_slowdown_ceiling: f64,
    /// Cumulative priced slowdown ceiling for best-effort services.
    pub best_effort_slowdown_ceiling: f64,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            queue_depth: 0,
            max_wait_ticks: 45,
            brownout: false,
            brownout_after_ticks: 6,
            brownout_exit_hold_ticks: 4,
            shave_step_budget: 2,
            lc_slowdown_ceiling: 0.05,
            degradable_slowdown_ceiling: 0.25,
            best_effort_slowdown_ceiling: 0.40,
        }
    }
}

impl OverloadConfig {
    /// The preset used by the Fig. 20 overload experiments: queueing and
    /// brownout both active.
    pub fn enabled() -> Self {
        OverloadConfig { queue_depth: 8, brownout: true, ..OverloadConfig::default() }
    }

    /// Whether overload management is active at all.
    pub fn is_enabled(&self) -> bool {
        self.queue_depth > 0
    }

    /// The cumulative priced-slowdown ceiling for a class during brownout.
    pub fn ceiling(&self, class: SloClass) -> f64 {
        match class {
            SloClass::LatencyCritical => self.lc_slowdown_ceiling,
            SloClass::Degradable => self.degradable_slowdown_ceiling,
            SloClass::BestEffort => self.best_effort_slowdown_ceiling,
        }
    }
}

/// How the cluster tier ranks candidate nodes for placement and failover.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Legacy first-fit: nodes tried in order of most idle cores. The
    /// default, bit-identical to the pre-failover cluster.
    FirstFit,
    /// Interference-aware scoring: free capacity (idle cores + idle LLC
    /// ways) scaled by node health, minus the QoS pressure of residents
    /// already close to violation — so a crashed node's services land
    /// where they disturb the least, not merely where cores are idle.
    InterferenceScore,
    /// Seeded random order over the live nodes — the null-hypothesis
    /// baseline the scored policies are measured against (Fig. 22's
    /// `random` arm). Deterministic: the order is drawn from the cluster
    /// seed and a per-placement counter, never from ambient entropy.
    Random,
}

/// Tunables of the cluster tier: placement policy, failover, resilient
/// migration and the fault schedule. The default reproduces the legacy
/// cluster bit-for-bit: first-fit placement, no node faults, no actuation
/// faults — failover machinery is armed but has nothing to react to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Seconds of continuous QoS violation before the upper scheduler
    /// migrates a service away from its node.
    pub migration_patience_s: f64,
    /// Candidate-node ranking for submit, failover and migration.
    pub policy: PlacementPolicy,
    /// Whether a dead node's services are re-placed on survivors. With
    /// failover off they become typed `Evicted` outcomes instead.
    pub failover: bool,
    /// Warm-up cost charged on every migration destination, seconds: the
    /// violation clock is suspended for this window (cache refill and
    /// layout re-derivation make early samples unrepresentative — the
    /// same reasoning as the §V-B 2 s sampling window).
    pub warmup_cost_s: f64,
    /// Migration attempts (QoS-violation path) allowed per service before
    /// the cluster stops moving it — the anti-thrash budget. Failover
    /// after a node death is never budget-limited.
    pub migration_budget: u32,
    /// Whole-node fault schedule (crash / outage / degrade / churn).
    pub node_faults: NodeFaultPlan,
    /// Call-level fault plan installed on every node's substrate (the
    /// plan's seed is re-salted per node). A none plan keeps the wrapper
    /// bit-transparent; a live plan makes migration installs go through
    /// the retry-with-backoff path.
    pub actuation_faults: FaultPlan,
    /// Control-channel fault plan between the cluster and its nodes. The
    /// none plan selects the perfect (reliable, same-instant) channel,
    /// bit-identical to the direct calls it replaced; any other plan
    /// selects the seeded lossy channel and switches failure detection
    /// from connection refusal to heartbeat-timeout suspicion.
    pub channel: ChannelPlan,
    /// Seconds between heartbeat pings to each node. The default (1 s,
    /// every monitoring step) keeps perfect-channel failure detection as
    /// prompt as the omniscient health read it replaced.
    pub heartbeat_interval_s: f64,
    /// Silence (no pong) after which a node is *suspected* dead on a
    /// lossy channel. Must exceed the interval; false suspicions are
    /// possible and are resolved by epoch reconciliation at heal time.
    pub heartbeat_timeout_s: f64,
    /// Epoch fencing and duplicate suppression — the exactly-once
    /// restoration layer over the at-least-once channel. Disabling it is
    /// the Fig. 23 ablation: duplicated launches double-place, delayed
    /// teardowns can kill fresh replicas, and healed partitions leave
    /// ghost replicas eating capacity.
    pub fencing: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            migration_patience_s: 30.0,
            policy: PlacementPolicy::FirstFit,
            failover: true,
            warmup_cost_s: 2.0,
            migration_budget: 3,
            node_faults: NodeFaultPlan::none(),
            actuation_faults: FaultPlan::none(),
            channel: ChannelPlan::none(),
            heartbeat_interval_s: 1.0,
            heartbeat_timeout_s: 3.0,
            fencing: true,
        }
    }
}

impl ClusterConfig {
    /// The preset the Fig. 22 failover arms build on: interference-aware
    /// placement with failover armed.
    pub fn failover_enabled() -> Self {
        ClusterConfig { policy: PlacementPolicy::InterferenceScore, ..ClusterConfig::default() }
    }

    /// Structural validation, run by `Cluster::try_new`. Rejects the
    /// configurations that used to misbehave silently: a non-positive
    /// warm-up (the violation clock would never suspend, or arithmetic
    /// would run backwards), a heartbeat interval at or past the timeout
    /// (every node would be permanently suspected), a zero migration
    /// budget (Algorithm 4's escape hatch silently welded shut), and
    /// channel probabilities outside `[0, 1]`.
    ///
    /// # Errors
    ///
    /// A static reason string naming the offending field.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.warmup_cost_s <= 0.0 || self.warmup_cost_s.is_nan() {
            return Err("warmup_cost_s must be positive");
        }
        if self.heartbeat_interval_s <= 0.0 || self.heartbeat_interval_s.is_nan() {
            return Err("heartbeat_interval_s must be positive");
        }
        if self.heartbeat_interval_s >= self.heartbeat_timeout_s {
            return Err("heartbeat_interval_s must be below heartbeat_timeout_s");
        }
        if self.migration_budget == 0 {
            return Err("migration_budget must be at least 1");
        }
        for (p, name) in [
            (self.channel.drop_prob, "channel.drop_prob must be within [0, 1]"),
            (self.channel.duplicate_prob, "channel.duplicate_prob must be within [0, 1]"),
            (self.channel.delay_prob, "channel.delay_prob must be within [0, 1]"),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(name);
            }
        }
        Ok(())
    }
}

impl Default for OsmlConfig {
    fn default() -> Self {
        OsmlConfig {
            sampling_window_s: 2.0,
            deprive_slowdown_budget: 0.15,
            max_deprived_apps: 3,
            sharing_slowdown_budget: 0.35,
            surplus_margin: 2,
            manage_bandwidth: true,
            online_learning: true,
            withdraw_ineffective_growth: true,
            placement_via_models: true,
            actuation_retry_budget: 3,
            retry_backoff_base_ms: 1.0,
            max_backoff_ms: 1000.0,
            fallback_threshold: 3,
            fallback_recovery_ticks: 8,
            fault_attention_s: 30.0,
            overload: OverloadConfig::default(),
            strict_layout: false,
            event_driven: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_the_paper() {
        let c = OsmlConfig::default();
        assert_eq!(c.sampling_window_s, 2.0);
        assert!(
            c.deprive_slowdown_budget > 0.0
                && c.sharing_slowdown_budget > c.deprive_slowdown_budget
        );
        assert_eq!(c.max_deprived_apps, 3);
        assert_eq!(c.surplus_margin, 2);
        assert!(c.manage_bandwidth);
        assert!(c.online_learning);
    }

    #[test]
    fn event_engine_is_the_default() {
        // The event-driven core is the production path; scan mode is the
        // reference implementation the equivalence suite checks against.
        assert!(OsmlConfig::default().event_driven);
    }

    #[test]
    fn resilience_defaults_are_sane() {
        let c = OsmlConfig::default();
        assert!(c.actuation_retry_budget >= 1, "at least one retry or nothing is transient");
        assert!(c.retry_backoff_base_ms > 0.0);
        assert!(
            c.max_backoff_ms
                >= c.retry_backoff_base_ms * ((1u64 << c.actuation_retry_budget) - 1) as f64,
            "the default cap must not bind under the default budget"
        );
        assert!(c.fallback_threshold >= 2, "a single withdrawal must not quarantine the models");
        assert!(c.fallback_recovery_ticks >= 1);
        assert!(c.fault_attention_s > 0.0);
    }

    #[test]
    fn config_round_trips_through_serde() {
        let c = OsmlConfig { sampling_window_s: 1.0, ..OsmlConfig::default() };
        let back: OsmlConfig = serde_json::from_str(&serde_json::to_string(&c).unwrap()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn cluster_defaults_reproduce_the_legacy_tier_and_round_trip() {
        let c = ClusterConfig::default();
        assert_eq!(c.policy, PlacementPolicy::FirstFit, "legacy placement order by default");
        assert!(c.node_faults.is_none(), "no node faults unless scripted");
        assert!(c.actuation_faults.profile.is_none(), "transparent substrate wrapper");
        assert_eq!(c.migration_patience_s, 30.0, "matches the pre-failover field default");
        assert!(c.failover && c.warmup_cost_s > 0.0 && c.migration_budget >= 1);
        let back: ClusterConfig =
            serde_json::from_str(&serde_json::to_string(&c).unwrap()).unwrap();
        assert_eq!(back, c);
        assert_eq!(ClusterConfig::failover_enabled().policy, PlacementPolicy::InterferenceScore);
    }

    #[test]
    fn overload_is_disabled_by_default_and_enabled_preset_is_coherent() {
        let d = OverloadConfig::default();
        assert!(!d.is_enabled());
        assert!(!d.brownout);
        let e = OverloadConfig::enabled();
        assert!(e.is_enabled() && e.brownout);
        assert!(
            e.ceiling(SloClass::LatencyCritical) < e.ceiling(SloClass::Degradable)
                && e.ceiling(SloClass::Degradable) < e.ceiling(SloClass::BestEffort),
            "more protected classes must tolerate less priced slowdown"
        );
        assert!(e.max_wait_ticks > e.brownout_after_ticks);
    }
}

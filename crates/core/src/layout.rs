//! LLC way-mask layout management.
//!
//! Intel CAT masks must be contiguous, so repeated grow/shrink cycles
//! fragment the way space: shrinking a middle service leaves a hole no
//! contiguous mask can combine with the free tail. The original OSML
//! userspace daemon reprograms all classes of service when it reallocates;
//! we model that as **repacking**: slide every service's mask (preserving
//! deliberate overlaps between sharing services) so the free ways form one
//! contiguous run at the top of the cache.

use osml_platform::{Allocation, AppId, PlatformError, Substrate, WayMask};

/// What a repack did: every mask it reprogrammed (with its pre/post
/// [`Allocation`], so each silent neighbour move can be logged as a
/// decision event), plus the error that stopped it early, if any. Moves
/// already applied before an error stay applied — exactly the substrate
/// state a caller that ignores the error is left with — so the outcome
/// reports them either way.
#[derive(Debug, Clone, Default)]
pub struct RepackOutcome {
    /// `(app, pre, post)` for every mask actually reprogrammed, in
    /// application order.
    pub moves: Vec<(AppId, Allocation, Allocation)>,
    /// The reallocation failure that aborted the repack, if any.
    pub error: Option<PlatformError>,
}

/// Repacks all way masks so free ways form one contiguous run at the high
/// end of the LLC. Overlapping masks (deliberate sharing, Algorithm 4) are
/// moved as one rigid group, preserving their relative overlap. Apps whose
/// mask does not move are not reprogrammed.
///
/// Returns the number of masks actually reprogrammed.
///
/// # Errors
///
/// Propagates reallocation failures from the substrate (should not occur
/// for valid repacks).
pub fn repack_ways<S: Substrate>(server: &mut S) -> Result<usize, PlatformError> {
    let outcome = repack_ways_with_last(server, None);
    match outcome.error {
        Some(e) => Err(e),
        None => Ok(outcome.moves.len()),
    }
}

/// Like [`repack_ways`], but places `last`'s overlap group at the high end
/// of the packed region, adjacent to the free run — so a subsequent
/// `resized(+n)` growth of `last`'s mask lands on free ways. Returns the
/// full [`RepackOutcome`] rather than a bare count, so callers can emit a
/// decision event for every neighbour the repack moved.
pub fn repack_ways_with_last<S: Substrate>(server: &mut S, last: Option<AppId>) -> RepackOutcome {
    let apps = server.apps();
    // Build overlap groups (connected components of mask overlap). Masks
    // are contiguous, so a component occupies a contiguous span.
    let masks: Vec<(AppId, WayMask)> =
        apps.iter().filter_map(|&id| server.allocation(id).map(|a| (id, a.ways))).collect();
    let mut group_of: Vec<usize> = (0..masks.len()).collect();
    // Union-find (tiny n: path compression unnecessary but cheap).
    fn find(g: &mut [usize], i: usize) -> usize {
        let mut r = i;
        while g[r] != r {
            r = g[r];
        }
        let mut i = i;
        while g[i] != r {
            let next = g[i];
            g[i] = r;
            i = next;
        }
        r
    }
    for i in 0..masks.len() {
        for j in (i + 1)..masks.len() {
            if masks[i].1.overlaps(masks[j].1) {
                let (ri, rj) = (find(&mut group_of, i), find(&mut group_of, j));
                group_of[ri] = rj;
            }
        }
    }
    // Collect groups with their span and members, keyed by root.
    let roots: Vec<usize> = (0..masks.len()).map(|i| find(&mut group_of, i)).collect();
    let mut by_root: std::collections::BTreeMap<usize, (usize, usize, Vec<usize>)> =
        std::collections::BTreeMap::new();
    for (i, &root) in roots.iter().enumerate() {
        let entry =
            by_root.entry(root).or_insert((masks[i].1.first(), masks[i].1.end(), Vec::new()));
        entry.0 = entry.0.min(masks[i].1.first());
        entry.1 = entry.1.max(masks[i].1.end());
        entry.2.push(i);
    }
    let mut groups: Vec<(usize, usize, Vec<usize>)> = by_root.into_values().collect();
    // Order groups by current start; move `last`'s group to the end.
    groups.sort_by_key(|&(start, _, _)| start);
    if let Some(last_id) = last {
        if let Some(pos) =
            groups.iter().position(|(_, _, members)| members.iter().any(|&m| masks[m].0 == last_id))
        {
            let g = groups.remove(pos);
            groups.push(g);
        }
    }
    // Assign new starts, packed from way 0, and shift members rigidly.
    let mut outcome = RepackOutcome::default();
    let mut cursor = 0usize;
    for (start, end, members) in groups {
        let shift = cursor as i64 - start as i64;
        for &m in &members {
            let (id, mask) = masks[m];
            if shift != 0 {
                let new_first = (mask.first() as i64 + shift) as usize;
                let new_mask = WayMask::contiguous(new_first, mask.count())
                    .expect("shifted mask stays in range");
                let pre = server.allocation(id).expect("app is placed");
                let mut alloc = pre;
                alloc.ways = new_mask;
                if let Err(e) = server.reallocate(id, alloc) {
                    outcome.error = Some(e);
                    return outcome;
                }
                outcome.moves.push((id, pre, alloc));
            }
        }
        cursor += end - start;
    }
    outcome
}

/// Number of ways that would be free and contiguous after a repack: the
/// machine's ways minus the union footprint of all current masks.
pub fn free_way_run_after_repack<S: Substrate>(server: &mut S, except: Option<AppId>) -> usize {
    let total = server.topology().llc_ways();
    let used = server.occupied_ways(except).count_ones() as usize;
    total.saturating_sub(used)
}

#[cfg(test)]
mod tests {
    use super::*;
    use osml_platform::{Allocation, CoreSet, MbaThrottle, Substrate};
    use osml_workloads::{LaunchSpec, Service, SimServer};

    fn alloc(cores: std::ops::Range<usize>, first_way: usize, ways: usize) -> Allocation {
        Allocation::new(
            CoreSet::from_cores(cores),
            WayMask::contiguous(first_way, ways).unwrap(),
            MbaThrottle::unthrottled(),
        )
    }

    fn ways_of<S: Substrate>(server: &S, id: AppId) -> (usize, usize) {
        let m = server.allocation(id).unwrap().ways;
        (m.first(), m.count())
    }

    #[test]
    fn repack_closes_holes() {
        let mut s = SimServer::deterministic();
        let a = s.launch(LaunchSpec::new(Service::Login, 300.0), alloc(0..2, 0, 4)).unwrap();
        let b = s.launch(LaunchSpec::new(Service::Ads, 100.0), alloc(2..4, 8, 4)).unwrap();
        // Hole at ways 4..8; free tail 12..20 => run of 4 + 8 but fragmented.
        assert!(s.find_free_ways(10, None).is_none());
        let n = repack_ways(&mut s).unwrap();
        assert_eq!(n, 1, "only the second mask needed to move");
        assert_eq!(ways_of(&s, a), (0, 4));
        assert_eq!(ways_of(&s, b), (4, 4));
        // Now 12 contiguous ways are free.
        let free = s.find_free_ways(12, None).unwrap();
        assert_eq!(free.first(), 8);
    }

    #[test]
    fn repack_preserves_sharing_overlap() {
        let mut s = SimServer::deterministic();
        // a and b share ways 6..10 (deliberate Algorithm-4 sharing).
        let a = s.launch(LaunchSpec::new(Service::Login, 300.0), alloc(0..2, 4, 6)).unwrap();
        let b = s.launch(LaunchSpec::new(Service::Ads, 100.0), alloc(2..4, 6, 8)).unwrap();
        repack_ways(&mut s).unwrap();
        let (fa, ca) = ways_of(&s, a);
        let (fb, cb) = ways_of(&s, b);
        assert_eq!((ca, cb), (6, 8), "sizes unchanged");
        // Relative offset preserved: b starts 2 ways after a.
        assert_eq!(fb - fa, 2);
        assert_eq!(fa, 0, "group packed to the left edge");
    }

    #[test]
    fn repack_with_last_puts_target_next_to_free_space() {
        let mut s = SimServer::deterministic();
        let a = s.launch(LaunchSpec::new(Service::Login, 300.0), alloc(0..2, 0, 5)).unwrap();
        let b = s.launch(LaunchSpec::new(Service::Ads, 100.0), alloc(2..4, 10, 5)).unwrap();
        let outcome = repack_ways_with_last(&mut s, Some(a));
        assert!(outcome.error.is_none());
        assert!(!outcome.moves.is_empty(), "repack reports the masks it moved");
        let (fa, _) = ways_of(&s, a);
        let (fb, _) = ways_of(&s, b);
        assert!(fa > fb, "a should now sit after b, adjacent to the free tail");
        // Growing a by 5 ways must not overlap b.
        let grown = s.allocation(a).unwrap().ways.resized(5, 20);
        assert!(!grown.overlaps(s.allocation(b).unwrap().ways));
    }

    #[test]
    fn free_run_counts_union_once() {
        let mut s = SimServer::deterministic();
        let _a = s.launch(LaunchSpec::new(Service::Login, 300.0), alloc(0..2, 0, 6)).unwrap();
        let b = s.launch(LaunchSpec::new(Service::Ads, 100.0), alloc(2..4, 3, 6)).unwrap();
        // Union 0..9 => 11 free.
        assert_eq!(free_way_run_after_repack(&mut s, None), 11);
        assert_eq!(free_way_run_after_repack(&mut s, Some(b)), 14);
    }

    #[test]
    fn repack_on_empty_server_is_a_noop() {
        let mut s = SimServer::deterministic();
        assert_eq!(repack_ways(&mut s).unwrap(), 0);
    }
}

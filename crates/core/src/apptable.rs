//! Arena storage for per-service hot state.
//!
//! The scheduler used to keep its [`AppRecord`]s in a `BTreeMap<AppId, _>`,
//! scattering the per-tick hot state (cooldown deadlines, blocked lists,
//! predictions) across heap-allocated tree nodes. [`AppTable`] keeps the
//! records in one contiguous slot arena with a free list, plus a small
//! id → slot index that preserves the `BTreeMap`'s id-ordered iteration —
//! which the bandwidth repartitioner's float summation and the snapshot
//! writer both rely on for determinism. Lookups stay O(log n) through the
//! index; iteration and the batched-inference gather walk a dense slab.
//!
//! [`AppRecord`]: crate::OsmlScheduler

use osml_platform::AppId;
use std::collections::BTreeMap;

/// A slot arena keyed by [`AppId`] with id-ordered iteration.
#[derive(Debug, Clone, Default)]
pub(crate) struct AppTable<T> {
    slots: Vec<Option<T>>,
    index: BTreeMap<AppId, usize>,
    free: Vec<usize>,
}

impl<T> AppTable<T> {
    /// Creates an empty table.
    pub(crate) fn new() -> Self {
        AppTable { slots: Vec::new(), index: BTreeMap::new(), free: Vec::new() }
    }

    /// Number of live records.
    pub(crate) fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether `id` has a record.
    pub(crate) fn contains_key(&self, id: &AppId) -> bool {
        self.index.contains_key(id)
    }

    /// Borrow of `id`'s record.
    pub(crate) fn get(&self, id: &AppId) -> Option<&T> {
        self.index.get(id).map(|&s| self.slots[s].as_ref().expect("indexed slot is occupied"))
    }

    /// Mutable borrow of `id`'s record.
    pub(crate) fn get_mut(&mut self, id: &AppId) -> Option<&mut T> {
        let slot = *self.index.get(id)?;
        Some(self.slots[slot].as_mut().expect("indexed slot is occupied"))
    }

    /// Inserts (or replaces) `id`'s record, returning the old one if any.
    pub(crate) fn insert(&mut self, id: AppId, value: T) -> Option<T> {
        if let Some(&slot) = self.index.get(&id) {
            return self.slots[slot].replace(value);
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s] = Some(value);
                s
            }
            None => {
                self.slots.push(Some(value));
                self.slots.len() - 1
            }
        };
        self.index.insert(id, slot);
        None
    }

    /// Removes `id`'s record, freeing its slot for reuse.
    pub(crate) fn remove(&mut self, id: &AppId) -> Option<T> {
        let slot = self.index.remove(id)?;
        self.free.push(slot);
        self.slots[slot].take()
    }

    /// Iterates `(id, record)` in ascending id order — the order the
    /// `BTreeMap` this replaced iterated in, which float summations and
    /// snapshots depend on.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (&AppId, &T)> {
        self.index
            .iter()
            .map(|(id, &s)| (id, self.slots[s].as_ref().expect("indexed slot is occupied")))
    }

    /// Iterates records mutably in slot (arena) order. Only for uses where
    /// order is irrelevant, such as the legacy timer-GC walk.
    pub(crate) fn values_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.slots.iter_mut().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut t: AppTable<u32> = AppTable::new();
        assert_eq!(t.insert(AppId(3), 30), None);
        assert_eq!(t.insert(AppId(1), 10), None);
        assert_eq!(t.insert(AppId(3), 31), Some(30));
        assert_eq!(t.get(&AppId(3)), Some(&31));
        assert!(t.contains_key(&AppId(1)));
        assert_eq!(t.len(), 2);
        *t.get_mut(&AppId(1)).unwrap() += 1;
        assert_eq!(t.remove(&AppId(1)), Some(11));
        assert_eq!(t.remove(&AppId(1)), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn iteration_is_id_ordered_and_slots_are_reused() {
        let mut t: AppTable<&str> = AppTable::new();
        t.insert(AppId(5), "e");
        t.insert(AppId(2), "b");
        t.insert(AppId(9), "i");
        t.remove(&AppId(2));
        // The freed slot is reused; order must still follow ids.
        t.insert(AppId(1), "a");
        let ids: Vec<u64> = t.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![1, 5, 9]);
        assert_eq!(t.slots.len(), 3, "arena must reuse freed slots");
        assert_eq!(t.values_mut().count(), 3);
    }
}

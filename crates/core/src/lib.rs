//! The OSML central controller (§V of the paper).
//!
//! OSML sits between the OS and the services as a user-level daemon. Its
//! profiling module samples each co-located service's performance counters
//! once per second; its central controller coordinates the three ML models
//! and executes allocation changes through `taskset`/CAT/MBA — here,
//! through the [`osml_platform::Substrate`] trait.
//!
//! The control logic follows Fig. 9:
//!
//! * **Algorithm 1** (placement): profile the newcomer for 2 s, ask Model-A
//!   for its OAA and RCliff, allocate from idle resources if they suffice;
//!   otherwise ask Model-B for every neighbour's B-points and deprive at
//!   most three neighbours within their slowdown budgets.
//! * **Algorithm 2** (QoS violation): ask Model-C for a growth action,
//!   satisfy it from idle resources, else consider sharing (Algorithm 4).
//! * **Algorithm 3** (surplus): when a service holds more than
//!   `RCliff + margin`, ask Model-C for a reclamation action; roll it back
//!   if QoS breaks on the next sample.
//! * **Algorithm 4** (sharing): price LLC/core sharing with Model-B′ and
//!   either share or report the service for migration.
//!
//! Bandwidth is partitioned `BW_j / Σ BW_i` from Model-A's OAA-bandwidth
//! predictions (§V-B), programmed as MBA throttles.
//!
//! [`Cluster`] adds the upper-level tier the paper defers to: first-fit
//! placement across OSML-managed nodes and migration of services a node
//! reports it cannot keep within QoS (Algorithm 4, line 9).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
mod apptable;
pub mod bootstrap;
mod cluster;
mod config;
mod event_queue;
mod events;
pub mod golden;
mod layout;
mod osml;
pub mod recovery;
mod resilience;

pub use admission::OverloadState;
pub use bootstrap::bootstrap_allocation;
pub use cluster::{Cluster, ClusterError, ClusterPlacement, ServiceDisposition, ServiceHandle};
pub use config::{ClusterConfig, OsmlConfig, OverloadConfig, PlacementPolicy};
pub use events::{EventKind, EventLog, LogEntry};
pub use golden::{
    first_divergence, replay, Decision, Divergence, EventBody, LaunchCause, RemovalCause,
    ReplayError, ReplayState, TelemetryNote, UnifiedEvent, UnifiedLog, WorldFact,
};
pub use layout::{free_way_run_after_repack, repack_ways, RepackOutcome};
pub use osml::{Models, OsmlScheduler};
pub use recovery::{RecoveryError, RecoveryMode, RecoveryReport, RecoveryStore, SchedulerSnapshot};

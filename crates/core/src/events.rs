use osml_platform::{AppId, RejectReason};
use serde::{Deserialize, Serialize};

/// One scheduling decision or observation, for experiment post-processing
/// (the paper's Fig. 13 resource-usage traces and Fig. 16 case study are
/// read straight off this log).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A new service was profiled and Model-A produced a prediction.
    Profiled {
        /// Predicted OAA cores.
        oaa_cores: usize,
        /// Predicted OAA ways.
        oaa_ways: usize,
        /// Predicted RCliff cores.
        rcliff_cores: usize,
        /// Predicted RCliff ways.
        rcliff_ways: usize,
    },
    /// The service received an allocation.
    Placed {
        /// Allocated cores.
        cores: usize,
        /// Allocated ways.
        ways: usize,
    },
    /// A neighbour was deprived of resources through Model-B.
    Deprived {
        /// Cores taken.
        cores: usize,
        /// Ways taken.
        ways: usize,
    },
    /// Model-C grew the service's allocation (Algorithm 2).
    Grew {
        /// Core delta applied.
        dcores: i32,
        /// Way delta applied.
        dways: i32,
    },
    /// Model-C reclaimed surplus resources (Algorithm 3).
    Reclaimed {
        /// Core delta applied (≤ 0).
        dcores: i32,
        /// Way delta applied (≤ 0).
        dways: i32,
    },
    /// A reclamation broke QoS and was withdrawn (Algorithm 3, line 8).
    RolledBack,
    /// The service was granted shared resources with a neighbour
    /// (Algorithm 4).
    SharingEnabled {
        /// The neighbour whose resources are shared.
        neighbor: AppId,
        /// Cores shared.
        cores: usize,
        /// Ways shared.
        ways: usize,
    },
    /// No acceptable allocation exists; the upper scheduler should migrate
    /// the service.
    MigrationRequested,
    /// MBA throttles were re-partitioned (§V-B bandwidth scheduling).
    BandwidthRepartitioned,
    /// The platform injected (or surfaced) a fault the controller observed:
    /// a failed actuation or an invalid/dropped counter window.
    FaultInjected {
        /// Whether the fault was transient (retryable).
        transient: bool,
    },
    /// A transient actuation failure was retried until success.
    ActuationRetried {
        /// Total attempts including the final successful one.
        attempts: u32,
        /// Total backoff charged across the retries, milliseconds.
        backoff_ms: f64,
    },
    /// A compound allocation move failed persistently and every service it
    /// touched was restored to the last-known-good layout.
    TransactionAborted {
        /// Services restored by the rollback.
        services: usize,
    },
    /// The QoS watchdog quarantined the ML path for this service and engaged
    /// the conservative heuristic fallback.
    FallbackEngaged {
        /// Consecutive failed/ineffective ML actions that tripped the
        /// watchdog.
        failures: u32,
    },
    /// The service left fallback: the platform looks healthy again and QoS
    /// has been met long enough to re-trust the ML path.
    Recovered {
        /// Consecutive healthy ticks observed before re-engaging the models.
        healthy_ticks: u32,
    },
    /// An arrival (or queued waiter) was rejected with a typed reason.
    Rejected {
        /// Why the service could not be hosted.
        reason: RejectReason,
    },
    /// An arrival was deferred into the admission queue instead of being
    /// rejected outright.
    QueueDeferred {
        /// Queue depth after the deferral.
        depth: usize,
    },
    /// A queued arrival was admitted on a retry.
    QueueAdmitted {
        /// Ticks spent waiting in the queue.
        waited_ticks: u64,
    },
    /// A queued arrival waited past the max-wait horizon and was dropped.
    QueueTimedOut {
        /// Ticks spent waiting before expiry.
        waited_ticks: u64,
    },
    /// Sustained overload: the controller entered its declared degraded
    /// state and will shave slack (and shed best-effort work) to admit
    /// queued latency-critical arrivals.
    BrownoutEntered {
        /// Arrivals waiting in the queue at entry.
        queued: usize,
    },
    /// Load subsided: every shaved service was restored and the controller
    /// left the degraded state.
    BrownoutExited {
        /// Ticks spent in brownout.
        ticks_degraded: u64,
    },
    /// A best-effort service was shed (LIFO) because Model-B′ pricing could
    /// not cover the overload deficit.
    Shed,
    /// A shaved service got its pre-brownout allocation back (or a shed
    /// service was re-admitted).
    Restored {
        /// Cores after restoration.
        cores: usize,
        /// Ways after restoration.
        ways: usize,
    },
    /// The controller restarted after a crash and reconciled its durable
    /// state against the live substrate.
    Restarted {
        /// Whether the snapshot verified (warm) or the controller had to
        /// adopt every running service cold.
        warm: bool,
        /// Services restored from their snapshot records.
        restored: usize,
        /// Orphaned services found running with no snapshot record and
        /// adopted.
        adopted: usize,
        /// Snapshot records whose service departed during the outage.
        dropped: usize,
    },
}

/// A timestamped log entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogEntry {
    /// Simulated time of the event, seconds.
    pub time_s: f64,
    /// The service the event concerns (`None` for machine-wide events).
    pub app: Option<AppId>,
    /// What happened.
    pub kind: EventKind,
}

/// An append-only event log.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EventLog {
    entries: Vec<LogEntry>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// Appends an entry.
    pub fn push(&mut self, time_s: f64, app: Option<AppId>, kind: EventKind) {
        self.entries.push(LogEntry { time_s, app, kind });
    }

    /// All entries in order.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Entries concerning one service.
    pub fn for_app(&self, id: AppId) -> impl Iterator<Item = &LogEntry> {
        self.entries.iter().filter(move |e| e.app == Some(id))
    }

    /// Number of entries matching a predicate on the kind.
    pub fn count_kind(&self, mut pred: impl FnMut(&EventKind) -> bool) -> usize {
        self.entries.iter().filter(|e| pred(&e.kind)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_preserves_order_and_filters() {
        let mut log = EventLog::new();
        log.push(1.0, Some(AppId(1)), EventKind::Placed { cores: 4, ways: 4 });
        log.push(2.0, Some(AppId(2)), EventKind::MigrationRequested);
        log.push(3.0, Some(AppId(1)), EventKind::RolledBack);
        assert_eq!(log.entries().len(), 3);
        assert_eq!(log.for_app(AppId(1)).count(), 2);
        assert_eq!(log.count_kind(|k| matches!(k, EventKind::MigrationRequested)), 1);
        assert!(log.entries()[0].time_s < log.entries()[2].time_s);
    }

    #[test]
    fn log_serializes() {
        let mut log = EventLog::new();
        log.push(0.5, None, EventKind::BandwidthRepartitioned);
        let back: EventLog = serde_json::from_str(&serde_json::to_string(&log).unwrap()).unwrap();
        assert_eq!(back, log);
    }
}
